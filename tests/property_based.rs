//! Property-based tests (proptest) over the core data structures and
//! numerical kernels.

use proptest::prelude::*;
use rotary::netlist::geom::{BoundingBox, Point, Rect};
use rotary::ring::{Ring, RingDirection, RingParams};
use rotary::solver::greedy_round;
use rotary::solver::lp::{LpProblem, LpStatus, RowKind};
use rotary::solver::DifferenceSystem;

proptest! {
    /// Manhattan distance is a metric: symmetry + triangle inequality.
    #[test]
    fn manhattan_is_a_metric(
        ax in -1e4..1e4f64, ay in -1e4..1e4f64,
        bx in -1e4..1e4f64, by in -1e4..1e4f64,
        cx in -1e4..1e4f64, cy in -1e4..1e4f64,
    ) {
        let (a, b, c) = (Point::new(ax, ay), Point::new(bx, by), Point::new(cx, cy));
        prop_assert!((a.manhattan(b) - b.manhattan(a)).abs() < 1e-9);
        prop_assert!(a.manhattan(c) <= a.manhattan(b) + b.manhattan(c) + 1e-9);
        prop_assert!(a.manhattan(a).abs() < 1e-12);
    }

    /// HPWL of a point set equals the half-perimeter of its extremes and is
    /// invariant under permutation.
    #[test]
    fn bounding_box_permutation_invariant(pts in prop::collection::vec((-1e3..1e3f64, -1e3..1e3f64), 2..20)) {
        let bb: BoundingBox = pts.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let mut rev = pts.clone();
        rev.reverse();
        let bb2: BoundingBox = rev.iter().map(|&(x, y)| Point::new(x, y)).collect();
        prop_assert!((bb.half_perimeter() - bb2.half_perimeter()).abs() < 1e-9);
    }

    /// Rect::clamp always lands inside the rectangle and is idempotent.
    #[test]
    fn rect_clamp_idempotent(px in -500.0..1500.0f64, py in -500.0..1500.0f64,
                             w in 1.0..800.0f64, h in 1.0..800.0f64) {
        let r = Rect::from_size(w, h);
        let q = r.clamp(Point::new(px, py));
        prop_assert!(r.contains(q));
        prop_assert_eq!(r.clamp(q), q);
    }

    /// Every delay target is exactly realizable by the flexible-tapping
    /// solver (mod the period) for any flip-flop position around a ring,
    /// and the wirelength is at least the Manhattan distance to the tap.
    #[test]
    fn tapping_always_meets_target(
        fx in 0.0..1000.0f64, fy in 0.0..1000.0f64,
        target in 0.0..3.0f64,
        cap in 0.004..0.03f64,
    ) {
        let ring = Ring::new(Point::new(500.0, 500.0), 150.0, RingDirection::Ccw,
                             RingParams::default());
        let ff = Point::new(fx, fy);
        let sol = ring.tap_for_target(ff, cap, target);
        let period = ring.params().period;
        let got = ring.delay_through_tap(&sol, cap);
        let tau = target.rem_euclid(period);
        let err = (got - tau).abs().min(period - (got - tau).abs());
        prop_assert!(err < 1e-6, "err {} case {:?}", err, sol.case);
        prop_assert!(sol.wirelength >= sol.point.manhattan(ff) - 1e-6);
    }

    /// The stub-delay inverse is a true inverse over its domain.
    #[test]
    fn stub_delay_roundtrip(l in 0.0..5000.0f64, cap in 0.001..0.05f64) {
        let p = RingParams::default();
        let d = p.stub_delay(l, cap);
        let back = p.stub_length_for_delay(d, cap).expect("nonnegative");
        prop_assert!((back - l).abs() < 1e-6 * l.max(1.0));
    }

    /// Feasible difference systems produce solutions that check out; the
    /// solver never returns an infeasible assignment.
    #[test]
    fn difference_solutions_verify(
        n in 2usize..7,
        edges in prop::collection::vec((0usize..6, 0usize..6, -5.0..5.0f64), 1..15)
    ) {
        let mut sys = DifferenceSystem::new(n);
        for (i, j, b) in edges {
            let (i, j) = (i % n, j % n);
            if i != j {
                sys.add(i, j, b);
            }
        }
        if let Some(y) = sys.solve() {
            prop_assert!(sys.check(&y, 1e-9));
        }
    }

    /// Greedy rounding always returns a candidate of each item.
    #[test]
    fn greedy_round_feasibility(rows in prop::collection::vec(
        prop::collection::vec((0usize..8, 0.0..1.0f64), 1..6), 1..12)) {
        let picked = greedy_round(&rows);
        for (row, &choice) in rows.iter().zip(&picked) {
            prop_assert!(row.iter().any(|&(c, _)| c == choice));
        }
    }

    /// LP optima are feasible: every returned Optimal solution satisfies
    /// its constraints (on random bounded LPs).
    #[test]
    fn lp_solutions_are_feasible(
        n in 1usize..5,
        rows in prop::collection::vec(
            (prop::collection::vec(-3.0..3.0f64, 5), -5.0..5.0f64), 1..6),
    ) {
        let mut lp = LpProblem::minimize(vec![1.0; n]);
        let mut stored = Vec::new();
        for (coef, rhs) in &rows {
            let r: Vec<(usize, f64)> = coef.iter().take(n).enumerate()
                .map(|(j, &a)| (j, a)).collect();
            lp.add_row(RowKind::Le, *rhs, &r);
            stored.push((r, *rhs));
        }
        let sol = lp.solve();
        if sol.status == LpStatus::Optimal {
            for (r, rhs) in stored {
                let lhs: f64 = r.iter().map(|&(j, a)| a * sol.x[j]).sum();
                prop_assert!(lhs <= rhs + 1e-6, "violated: {lhs} > {rhs}");
            }
            for &x in &sol.x {
                prop_assert!(x >= -1e-7);
            }
        }
    }

    /// Zero-skew clock trees stay zero-skew for arbitrary sink sets.
    #[test]
    fn clock_tree_zero_skew_property(sinks in prop::collection::vec(
        ((0.0..2000.0f64, 0.0..2000.0f64), 0.005..0.02f64), 1..40)) {
        use rotary::cts::ClockTree;
        use rotary::timing::Technology;
        let pts: Vec<(Point, f64)> = sinks.iter()
            .map(|&((x, y), c)| (Point::new(x, y), c)).collect();
        let tree = ClockTree::build_over(&pts, &Technology::default());
        prop_assert!(tree.skew() < 1e-6, "skew {}", tree.skew());
        prop_assert_eq!(tree.sink_count(), pts.len());
    }
}
