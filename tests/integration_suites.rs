//! Benchmark-suite integration tests: Table II statistics, clock-tree
//! baseline, and cross-crate consistency on the paper's circuits.

use rotary::prelude::*;

#[test]
fn all_five_suites_match_table2_counts() {
    let expect = [
        (BenchmarkSuite::S9234, 1510, 135, 1471, 16),
        (BenchmarkSuite::S5378, 1112, 164, 1063, 25),
        (BenchmarkSuite::S15850, 3549, 566, 3462, 36),
        (BenchmarkSuite::S38417, 11651, 1463, 11545, 49),
        (BenchmarkSuite::S35932, 17005, 1728, 16685, 49),
    ];
    for (suite, cells, ffs, nets, rings) in expect {
        let c = suite.circuit(1);
        assert_eq!(c.combinational_count(), cells, "{suite} cells");
        assert_eq!(c.flip_flop_count(), ffs, "{suite} ffs");
        assert_eq!(c.net_count(), nets, "{suite} nets");
        assert_eq!(suite.ring_count(), rings, "{suite} rings");
    }
}

#[test]
fn large_suites_validate() {
    for suite in [BenchmarkSuite::S15850, BenchmarkSuite::S38417, BenchmarkSuite::S35932] {
        suite.circuit(0).validate().unwrap_or_else(|e| panic!("{suite}: {e}"));
    }
}

#[test]
fn clock_tree_baseline_is_zero_skew_on_placed_suite() {
    let mut c = BenchmarkSuite::S5378.circuit(2);
    Placer::new(PlacerConfig::default()).place(&mut c);
    let tech = Technology::default();
    let tree = ClockTree::build(&c, &tech);
    assert_eq!(tree.sink_count(), 164);
    assert!(tree.skew() < 1e-6, "skew {}", tree.skew());
    // PL should land in the same order of magnitude as the die scale.
    let pl = tree.average_path_length();
    assert!(pl > 0.5 * c.die.width() && pl < 10.0 * c.die.width(), "PL {pl}");
}

#[test]
fn rotary_afd_beats_conventional_tree_path_length() {
    // The paper's core observation (Table III vs Table II): the average
    // flip-flop distance under rotary clocking is an order of magnitude
    // smaller than conventional source-sink path lengths.
    let suite = BenchmarkSuite::S9234;
    let mut c = suite.circuit(4);
    let out = rotary::core::flow::Flow::new(rotary::core::flow::FlowConfig::default())
        .run(&mut c, suite.ring_grid());
    let tech = Technology::default();
    let tree = ClockTree::build(&c, &tech);
    assert!(
        out.final_snapshot().afd < 0.3 * tree.average_path_length(),
        "AFD {} should be far below PL {}",
        out.final_snapshot().afd,
        tree.average_path_length()
    );
}

#[test]
fn sequential_graphs_nontrivial_on_all_small_suites() {
    let tech = Technology::default();
    for suite in [BenchmarkSuite::S9234, BenchmarkSuite::S5378] {
        let mut c = suite.circuit(1);
        Placer::new(PlacerConfig::default()).place(&mut c);
        let g = SequentialGraph::extract(&c, &tech);
        assert!(
            g.pairs().len() >= c.flip_flop_count(),
            "{suite}: suspiciously few adjacent pairs ({})",
            g.pairs().len()
        );
    }
}

#[test]
fn power_model_produces_sane_magnitudes() {
    // Paper Table III: clock power a few mW to ~70 mW, signal power of the
    // same order. Check we are within those decades, not exact values.
    let suite = BenchmarkSuite::S9234;
    let mut c = suite.circuit(1);
    let out = rotary::core::flow::Flow::new(rotary::core::flow::FlowConfig::default())
        .run(&mut c, suite.ring_grid());
    let model = PowerModel::new(Technology::default());
    let clock = model.rotary_clock_power(&c, &out.taps.wirelengths());
    let signal = model.signal_power(&c);
    assert!(clock.total_mw > 0.01 && clock.total_mw < 1000.0);
    assert!(signal.total_mw > 0.1 && signal.total_mw < 10000.0);
    // Clock wire power scales with tapping WL: optimized < 2x the raw pin power floor.
    assert!(clock.wire_mw < signal.total_mw);
}
