//! End-to-end integration tests of the Fig. 3 flow across crates.

use rotary::core::flow::{AssignmentObjective, Flow, FlowConfig, SkewVariant};
use rotary::prelude::*;

fn small_suite_flow(objective: AssignmentObjective, variant: SkewVariant) -> FlowOutcome {
    let mut circuit = BenchmarkSuite::S9234.circuit(11);
    let cfg = FlowConfig { objective, skew_variant: variant, ..FlowConfig::default() };
    Flow::new(cfg).run(&mut circuit, BenchmarkSuite::S9234.ring_grid())
}

#[test]
fn full_flow_on_s9234_reduces_tapping_cost_in_paper_band() {
    let out = small_suite_flow(AssignmentObjective::TappingCost, SkewVariant::WeightedSum);
    let imp = out.tapping_improvement();
    assert!(imp > 0.20, "tapping improvement {:.1}% below the expected band", imp * 100.0);
    // Signal wirelength may degrade slightly but not collapse (paper: ≤ ~4%).
    assert!(out.signal_wl_improvement() > -0.15);
}

/// The delta-rebound warm path must (a) actually fire on a real suite —
/// nonzero stage-2 `reused_work` in the telemetry, which the seed
/// revision never achieved outside toy fixtures — and (b) change
/// nothing: schedules, assignments, taps, and final placements of the
/// warm and cold runs are bit-identical.
///
/// The same byte-identity assertion covers stage 4's relaxation kernel:
/// the warm run's circulation re-solves route only residual imbalances,
/// its Dijkstra rounds stop as soon as the reachable deficits cover the
/// round's excess (unsettled vertices drop out of the label pass), and
/// the blocking flow walks only shortest-path-tree roots — so nonzero
/// stage-4 `reused_work`/`delta_arcs` here certifies those early exits
/// fire on a real suite without perturbing a single schedule bit.
#[test]
fn s15850_warm_flow_matches_cold_and_reuses_stage2_work() {
    use rotary::core::telemetry::Stage;
    let suite = BenchmarkSuite::S15850;
    let run = |warm_start: bool| {
        let mut circuit = suite.circuit(7);
        let cfg = FlowConfig { warm_start, ..FlowConfig::default() };
        (Flow::new(cfg).run(&mut circuit, suite.ring_grid()), circuit)
    };
    let (warm, c_warm) = run(true);
    let (cold, c_cold) = run(false);

    assert_eq!(warm.schedule, cold.schedule);
    assert_eq!(warm.assignment, cold.assignment);
    assert_eq!(warm.base, cold.base);
    assert_eq!(warm.taps.solutions, cold.taps.solutions);
    for (&fa, &fb) in c_warm.flip_flops().iter().zip(&c_cold.flip_flops()) {
        assert_eq!(c_warm.position(fa), c_cold.position(fb));
    }

    // Warm starts fire: after the first iteration, the stage-2 engine is
    // re-targeted via delta rebind instead of being rebuilt.
    let reuse = warm.telemetry.reuse_by_stage();
    let stage2 = reuse.iter().find(|r| r.0 == Stage::SkewOptimization).unwrap();
    assert!(stage2.1 > 0, "stage-2 reused_work must be nonzero on a warm s15850 run");
    assert!(stage2.2 > 0, "stage-2 delta_arcs must be nonzero (bounds drift every iteration)");
    let cold_reuse = cold.telemetry.reuse_by_stage();
    let cold_stage2 = cold_reuse.iter().find(|r| r.0 == Stage::SkewOptimization).unwrap();
    assert_eq!(cold_stage2.1, 0, "cold runs must not report reuse");

    // Stage 4: the warm circulation path (delta rebind + early-exit
    // Dijkstra rounds) must fire and report its rebind footprint.
    let stage4 = reuse.iter().find(|r| r.0 == Stage::CostDrivenSkew).unwrap();
    assert!(stage4.1 > 0, "stage-4 reused_work must be nonzero on a warm s15850 run");
    assert!(stage4.2 > 0, "stage-4 delta_arcs must be nonzero (ideals drift every re-wrap)");

    // Stage 3: on the network-flow route the candidate cache carries
    // geometry across Fig. 3 iterations; drift-bounded regeneration must
    // report the retained entries as reused work.
    let stage3 = reuse.iter().find(|r| r.0 == Stage::Assignment).unwrap();
    assert!(stage3.1 > 0, "stage-3 reused_work must be nonzero on a warm s15850 run");
    let cold_stage3 = cold_reuse.iter().find(|r| r.0 == Stage::Assignment).unwrap();
    assert_eq!(cold_stage3.1, 0, "cold runs must not report assignment reuse");
}

/// On the eq. 3 (`MaxLoadCap`) route, stage 3 is a simplex solve and the
/// warm path is the dual-simplex basis repair: surviving columns are
/// mapped by stable key, the basis is refactorized, and the solver pivots
/// from the prior vertex. The telemetry must show the repaired-basis
/// backend and a nonzero column-reuse footprint — and the result must
/// still be bit-identical to a cold run (same polish-terminated vertex).
#[test]
fn s15850_ilp_route_warm_assignment_repairs_lp_basis() {
    use rotary::core::telemetry::Stage;
    let suite = BenchmarkSuite::S15850;
    let run = |warm_start: bool| {
        let mut circuit = suite.circuit(7);
        let cfg = FlowConfig {
            warm_start,
            objective: AssignmentObjective::MaxLoadCap,
            ..FlowConfig::default()
        };
        Flow::new(cfg).run(&mut circuit, suite.ring_grid())
    };
    let warm = run(true);
    let cold = run(false);
    assert_eq!(warm.schedule, cold.schedule);
    assert_eq!(warm.assignment, cold.assignment);
    assert_eq!(warm.taps.solutions, cold.taps.solutions);

    let reuse = warm.telemetry.reuse_by_stage();
    let stage3 = reuse.iter().find(|r| r.0 == Stage::Assignment).unwrap();
    assert!(stage3.1 > 0, "LP warm start must report reused columns on s15850");
    assert!(stage3.3 > 0, "warm pivot count (affected_vertices) must be nonzero");
    let warm_backends: Vec<&str> = warm
        .telemetry
        .records()
        .iter()
        .filter(|r| r.stage == Stage::Assignment)
        .map(|r| r.backend)
        .collect();
    assert!(
        warm_backends.iter().any(|b| *b == "lp-warm" || *b == "lp-dual-repair"),
        "warm run must serve at least one pass from a carried basis, got {warm_backends:?}"
    );
    assert!(
        cold.telemetry
            .records()
            .iter()
            .filter(|r| r.stage == Stage::Assignment)
            .all(|r| r.backend == "lp-cold"),
        "cold run must stay on the cold simplex path"
    );
}

#[test]
fn flow_keeps_placement_legal_and_circuit_valid() {
    let mut circuit = BenchmarkSuite::S9234.circuit(3);
    Flow::new(FlowConfig::default()).run(&mut circuit, 4);
    circuit.validate().expect("circuit valid after flow");
    assert_eq!(rotary::place::overlap_count(&circuit), 0, "placement must stay legal");
}

#[test]
fn every_flip_flop_is_assigned_and_tapped() {
    let mut circuit = BenchmarkSuite::S9234.circuit(5);
    let out = Flow::new(FlowConfig::default()).run(&mut circuit, 4);
    assert_eq!(out.assignment.rings.len(), circuit.flip_flop_count());
    assert_eq!(out.taps.solutions.len(), circuit.flip_flop_count());
    for sol in &out.taps.solutions {
        assert!(sol.wirelength.is_finite() && sol.wirelength >= 0.0);
    }
}

#[test]
fn tap_solutions_satisfy_delay_targets_modulo_period() {
    let mut circuit = BenchmarkSuite::S9234.circuit(7);
    let cfg = FlowConfig::default();
    let out = Flow::new(cfg).run(&mut circuit, 4);
    let array = RingArray::generate(
        circuit.die,
        4,
        RingParams { period: out.schedule.period, ..cfg.ring_params },
    );
    let period = out.schedule.period;
    for ((&ff, &ring), (sol, &target)) in out
        .taps
        .flip_flops
        .iter()
        .zip(&out.taps.rings)
        .zip(out.taps.solutions.iter().zip(&out.schedule.targets))
    {
        let got = array.ring(ring).delay_through_tap(sol, circuit.cell(ff).input_cap);
        let tau = target.rem_euclid(period);
        let err = (got - tau).abs().min(period - (got - tau).abs());
        assert!(err < 1e-5, "ff {ff}: wanted {tau:.6}, got {got:.6}");
    }
}

#[test]
fn ring_capacities_respected_by_network_flow_assignment() {
    let mut circuit = BenchmarkSuite::S9234.circuit(9);
    let cfg = FlowConfig::default();
    let out = Flow::new(cfg).run(&mut circuit, 4);
    let array = RingArray::generate(
        circuit.die,
        4,
        RingParams { period: out.schedule.period, ..cfg.ring_params },
    );
    let caps = array.capacities();
    let occ = rotary::core::assign::ring_occupancy(&out.assignment, caps.len());
    for (j, (&o, &u)) in occ.iter().zip(&caps).enumerate() {
        assert!(o <= u, "ring {j} over capacity: {o} > {u}");
    }
}

#[test]
fn max_load_cap_objective_yields_lower_max_cap_than_network_flow() {
    let nf = small_suite_flow(AssignmentObjective::TappingCost, SkewVariant::WeightedSum);
    let ilp = small_suite_flow(AssignmentObjective::MaxLoadCap, SkewVariant::WeightedSum);
    let (c_nf, c_ilp) = (nf.final_snapshot().max_ring_cap, ilp.final_snapshot().max_ring_cap);
    assert!(c_ilp < c_nf, "ILP formulation should reduce max cap: {c_ilp} !< {c_nf}");
    // And it should cost some wirelength (the Table V trade-off).
    assert!(ilp.final_snapshot().tapping_wl >= nf.final_snapshot().tapping_wl * 0.8);
}

#[test]
fn minimax_variant_runs_end_to_end() {
    let out = small_suite_flow(AssignmentObjective::TappingCost, SkewVariant::Minimax);
    assert!(!out.iterations.is_empty());
    assert!(out.final_snapshot().tapping_wl.is_finite());
}

#[test]
fn flow_is_deterministic() {
    let a = small_suite_flow(AssignmentObjective::TappingCost, SkewVariant::WeightedSum);
    let b = small_suite_flow(AssignmentObjective::TappingCost, SkewVariant::WeightedSum);
    assert_eq!(a.final_snapshot().tapping_wl, b.final_snapshot().tapping_wl);
    assert_eq!(a.assignment.rings, b.assignment.rings);
}
