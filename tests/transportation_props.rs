//! Property-based tests for the incremental transportation engine behind
//! the stage-3 network-flow assignment (`solver::mcmf::Transportation`).
//!
//! Two families:
//!
//! * the engine's cold solve is checked against the one-shot float
//!   `FlowNetwork` reference on random bipartite instances — *exact*
//!   objective equality (2^40-quantized costs are exactly representable
//!   in `f64`, so the float reference is exact too) and agreement on
//!   infeasibility;
//! * a warm engine carried across a sequence of combined cost drifts,
//!   candidate add/drop, and capacity changes must extract bit-identical
//!   assignments to a cold solve of every step — including both sides
//!   reporting `TransportationInfeasible` on infeasible steps, after
//!   which the warm chain must recover on its own.

use proptest::prelude::*;
use rotary::solver::mcmf::{FlowNetwork, Transportation};

/// Fixed-point scale matching the engine integration in `core::assign`.
const COST_SCALE: f64 = 1_099_511_627_776.0; // 2^40

/// Builds per-flip-flop candidate lists from raw proptest draws: each
/// flip-flop gets up to three distinct rings with 2^40-quantized costs.
fn build_cands(f: usize, r: usize, picks: &[(usize, f64)]) -> Vec<Vec<(u32, i64)>> {
    (0..f)
        .map(|i| {
            let mut list: Vec<(u32, i64)> = Vec::new();
            for &(ring, cost) in &picks[3 * i..3 * i + 3] {
                let j = (ring % r) as u32;
                if !list.iter().any(|&(jj, _)| jj == j) {
                    list.push((j, (cost * COST_SCALE).round() as i64));
                }
            }
            list
        })
        .collect()
}

/// One-shot float reference over the same Fig.-4 network: `None` when the
/// instance is infeasible, else the exact optimal cost.
fn oracle(cands: &[Vec<(u32, i64)>], caps: &[i64]) -> Option<i128> {
    let f = cands.len();
    let r = caps.len();
    let mut net = FlowNetwork::new(2 + f + r);
    let s = net.node(0);
    let t = net.node(1);
    for (i, list) in cands.iter().enumerate() {
        net.add_arc(s, net.node(2 + i), 1, 0.0);
        for &(j, c) in list {
            net.add_arc(net.node(2 + i), net.node(2 + f + j as usize), 1, c as f64);
        }
    }
    for (j, &cap) in caps.iter().enumerate() {
        net.add_arc(net.node(2 + f + j), t, cap, 0.0);
    }
    let (flow, cost) = net.min_cost_flow(s, t, f as i64)?;
    (flow == f as i64).then_some(cost.round() as i128)
}

/// Validity of an extracted assignment: every flip-flop on one of its own
/// candidates, no ring over capacity, reported cost consistent.
fn assert_valid(
    tp: &Transportation,
    cands: &[Vec<(u32, i64)>],
    caps: &[i64],
) -> Result<(), String> {
    let mut loads = vec![0i64; caps.len()];
    let mut total = 0i128;
    for (i, &ring) in tp.assignment().iter().enumerate() {
        let c = cands[i].iter().find(|&&(j, _)| j == ring);
        prop_assert!(c.is_some(), "flip-flop {} assigned to non-candidate ring {}", i, ring);
        total += c.unwrap().1 as i128;
        loads[ring as usize] += 1;
    }
    for (j, (&l, &cap)) in loads.iter().zip(caps).enumerate() {
        prop_assert!(l <= cap, "ring {} over capacity: {} > {}", j, l, cap);
    }
    prop_assert_eq!(total, tp.total_cost());
    Ok(())
}

proptest! {
    /// Cold solve ≡ the float reference: same feasibility verdict, exact
    /// same optimum, and a valid assignment achieving it.
    #[test]
    fn cold_solve_matches_float_reference(
        f in 4usize..10,
        r in 2usize..5,
        picks in prop::collection::vec((0usize..64, 0.0..2.0f64), 30),
        caps_raw in prop::collection::vec(0i64..8, 5),
    ) {
        let cands = build_cands(f, r, &picks);
        let caps: Vec<i64> = caps_raw[..r].to_vec();
        let mut tp = Transportation::new(f, r);
        match (tp.solve(&cands, &caps, false), oracle(&cands, &caps)) {
            (Ok(stats), Some(cost)) => {
                prop_assert_eq!(tp.backend_label(), "tp-cold");
                prop_assert_eq!(stats.reused_arcs, 0);
                prop_assert_eq!(tp.total_cost(), cost);
                assert_valid(&tp, &cands, &caps)?;
            }
            (Err(_), None) => {}
            (got, want) => prop_assert!(
                false, "engine {:?} disagrees with reference {:?}", got, want
            ),
        }
    }

    /// One warm engine carried across combined drift + add/drop + cap
    /// changes extracts bit-identical assignments to a cold solve of
    /// every step; infeasible steps err on both sides and the warm chain
    /// recovers by itself.
    #[test]
    fn warm_chain_is_bit_identical_to_cold(
        f in 4usize..10,
        r in 2usize..5,
        picks in prop::collection::vec((0usize..64, 0.0..2.0f64), 30),
        caps_raw in prop::collection::vec(1i64..8, 5),
        steps in prop::collection::vec(
            (
                // Per-flip-flop cost drift (index chooses the flip-flop).
                prop::collection::vec((0usize..64, -0.3..0.3f64), 0..8),
                // Candidate toggles: drop the ring if present, add it if not.
                prop::collection::vec((0usize..64, 0.0..2.0f64), 0..4),
                // One capacity rewrite.
                (0usize..5, 0i64..8),
            ),
            1..5,
        ),
    ) {
        let mut cands = build_cands(f, r, &picks);
        let mut caps: Vec<i64> = caps_raw[..r].to_vec();
        let mut warm = Transportation::new(f, r);
        // After an infeasible solve the engine resets itself, so the next
        // solve runs (and labels itself) cold even when asked to warm.
        let mut carried = warm.solve(&cands, &caps, false).is_ok();
        for (drifts, toggles, (cap_ix, cap_val)) in &steps {
            for &(ix, delta) in drifts {
                let i = ix % f;
                let dq = (delta * COST_SCALE).round() as i64;
                for c in cands[i].iter_mut() {
                    c.1 = (c.1 + dq).max(0);
                }
            }
            for &(ix, cost) in toggles {
                let i = ix % f;
                let j = ((ix / f) % r) as u32;
                if let Some(at) = cands[i].iter().position(|&(jj, _)| jj == j) {
                    if cands[i].len() > 1 {
                        cands[i].remove(at);
                    }
                } else {
                    cands[i].push((j, (cost * COST_SCALE).round() as i64));
                }
            }
            caps[cap_ix % r] = *cap_val;

            let warm_res = warm.solve(&cands, &caps, true);
            let mut cold = Transportation::new(f, r);
            let cold_res = cold.solve(&cands, &caps, false);
            let expect_label = if carried { "tp-warm" } else { "tp-cold" };
            carried = warm_res.is_ok();
            match (warm_res, cold_res, oracle(&cands, &caps)) {
                (Ok(_), Ok(_), Some(cost)) => {
                    prop_assert_eq!(warm.backend_label(), expect_label);
                    prop_assert_eq!(warm.assignment(), cold.assignment());
                    prop_assert_eq!(warm.total_cost(), cold.total_cost());
                    prop_assert_eq!(warm.total_cost(), cost);
                    assert_valid(&warm, &cands, &caps)?;
                }
                (Err(we), Err(ce), None) => prop_assert_eq!(we, ce),
                (w, c, o) => prop_assert!(
                    false,
                    "warm {:?} / cold {:?} disagree with reference {:?}", w, c, o
                ),
            }
        }
    }
}
