//! Property-based tests for the min-cost-circulation engines behind the
//! weighted-sum skew dual (stage 4).
//!
//! Two families:
//!
//! * the one-shot `f64` reference (`FlowNetwork::min_cost_circulation`)
//!   and the incremental integer-cost engine (`Circulation`) are checked
//!   against an explicit dense LP on random *feasible* difference systems
//!   — objective equality to 1e-6 and a dual recovery that satisfies
//!   every generated constraint;
//! * `weighted_schedule_ctx` must return bit-identical schedules whether
//!   the context (and therefore the circulation warm start) is carried
//!   across a sequence of perturbed ideal vectors or reset before every
//!   solve — warm starts are pure accelerators.

use proptest::prelude::*;
use rotary::core::skew::{weighted_schedule_ctx, SkewContext};
use rotary::netlist::geom::{Point, Rect};
use rotary::netlist::{Cell, CellKind, Circuit, Net};
use rotary::solver::lp::{LpProblem, LpStatus, RowKind};
use rotary::solver::mcmf::{Circulation, CirculationBackend, DijkstraStrategy, FlowNetwork};
use rotary::timing::{SequentialGraph, Technology};

/// Fixed-point scale matching the engine integration in `core::skew`.
const COST_SCALE: f64 = 1_099_511_627_776.0; // 2^40

/// A random feasible difference system with per-node weights and ideals.
struct Instance {
    n: usize,
    /// `(i, j, bound)`: constraint `y_i − y_j ≤ bound`.
    constraints: Vec<(usize, usize, f64)>,
    weight: Vec<i64>,
    ideal: Vec<f64>,
}

impl Instance {
    /// Feasibility by construction: every bound is `y*_i − y*_j + slack`
    /// with `slack ≥ 0`, so `y*` witnesses the whole system.
    fn build(
        n: usize,
        witness: &[f64],
        raw_edges: &[(usize, usize, f64)],
        weight: &[i64],
        ideal: &[f64],
    ) -> Self {
        let mut constraints = Vec::new();
        for &(a, b, slack) in raw_edges {
            let (i, j) = (a % n, b % n);
            if i == j {
                continue;
            }
            constraints.push((i, j, witness[i] - witness[j] + slack));
        }
        Instance { n, constraints, weight: weight[..n].to_vec(), ideal: ideal[..n].to_vec() }
    }

    /// `min Σ w_i·|y_i − t_i|` subject to the difference constraints,
    /// solved as an explicit dense LP (free `y`, nonnegative deviation
    /// variables `e`).
    fn lp_optimum(&self) -> f64 {
        let n = self.n;
        let mut obj = vec![0.0; n];
        obj.extend(self.weight.iter().map(|&w| w as f64));
        let mut lp = LpProblem::minimize(obj);
        for j in 0..n {
            lp.set_free(j);
        }
        for &(i, j, b) in &self.constraints {
            lp.add_row(RowKind::Le, b, &[(i, 1.0), (j, -1.0)]);
        }
        for (i, &t) in self.ideal.iter().enumerate() {
            lp.add_row(RowKind::Le, t, &[(i, 1.0), (n + i, -1.0)]);
            lp.add_row(RowKind::Le, -t, &[(i, -1.0), (n + i, -1.0)]);
        }
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal, "feasible by construction");
        sol.objective
    }

    /// The circulation dual's arc list: constraint arcs plus an R-arc
    /// pair per node (capacity = weight), exactly as `core::skew` builds
    /// it.
    fn dual_arcs(&self) -> (Vec<(u32, u32)>, Vec<i64>, Vec<f64>) {
        let n = self.n;
        let total_w: i64 = self.weight.iter().sum::<i64>().max(1);
        let mut pairs = Vec::new();
        let mut caps = Vec::new();
        let mut costs = Vec::new();
        for &(i, j, b) in &self.constraints {
            pairs.push((i as u32, j as u32));
            caps.push(total_w);
            costs.push(b);
        }
        for (i, (&w, &t)) in self.weight.iter().zip(&self.ideal).enumerate() {
            pairs.push((i as u32, n as u32));
            caps.push(w);
            costs.push(t);
            pairs.push((n as u32, i as u32));
            caps.push(w);
            costs.push(-t);
        }
        (pairs, caps, costs)
    }
}

proptest! {
    /// Both circulation engines reproduce the dense-LP optimum of the
    /// weighted deviation problem (`min-cost circulation = −LP optimum`),
    /// and the integer engine's canonical duals recover a schedule that
    /// satisfies every constraint of the system at the LP's objective.
    #[test]
    fn circulation_engines_match_dense_lp(
        n in 3usize..7,
        witness in prop::collection::vec(0.0..2.0f64, 7),
        raw_edges in prop::collection::vec((0usize..49, 0usize..49, 0.0..1.0f64), 4..16),
        weight in prop::collection::vec(0i64..8, 7),
        ideal in prop::collection::vec(0.0..2.0f64, 7),
    ) {
        let inst = Instance::build(n, &witness, &raw_edges, &weight, &ideal);
        let opt = inst.lp_optimum();
        let (pairs, caps, costs) = inst.dual_arcs();

        // f64 reference engine.
        let mut net = FlowNetwork::new(n + 1);
        for ((&(i, j), &cap), &cost) in pairs.iter().zip(&caps).zip(&costs) {
            net.add_arc(net.node(i as usize), net.node(j as usize), cap, cost);
        }
        let ref_cost = net.min_cost_circulation();
        prop_assert!(
            (-ref_cost - opt).abs() < 1e-6,
            "reference circulation {} vs LP {}", -ref_cost, opt
        );

        // Incremental integer engine at the 2^40 fixed-point scale.
        let qcosts: Vec<i64> = costs.iter().map(|c| (c * COST_SCALE).round() as i64).collect();
        let mut engine = Circulation::new(n + 1, &pairs);
        engine.solve(&caps, &qcosts, false);
        let engine_obj = -(engine.total_cost() as f64) / COST_SCALE;
        prop_assert!(
            (engine_obj - opt).abs() < 1e-6,
            "integer circulation {} vs LP {}", engine_obj, opt
        );

        // Dual recovery: feasible for the difference system and optimal.
        let d = engine.canonical_distances();
        let y: Vec<f64> = (0..n).map(|i| (d[n] - d[i]) as f64 / COST_SCALE).collect();
        for &(i, j, b) in &inst.constraints {
            prop_assert!(y[i] - y[j] <= b + 1e-6, "constraint {i}->{j} violated");
        }
        let recovered: f64 = inst
            .weight
            .iter()
            .zip(&inst.ideal)
            .enumerate()
            .map(|(i, (&w, &t))| w as f64 * (y[i] - t).abs())
            .sum();
        prop_assert!(
            recovered <= opt + 1e-6,
            "recovered schedule objective {} exceeds LP optimum {}", recovered, opt
        );
    }

    /// The sequential heap and the parallel bucketed radix queue are the
    /// same algorithm under the shared relaxation kernel: solving the same
    /// instance — cold, then warm across a perturbed re-solve — must leave
    /// bit-identical flows, potentials, total cost, and canonical
    /// distances regardless of strategy. (`Bucketed` is forced explicitly;
    /// `Auto` would fall back to the heap on a single-core machine.)
    #[test]
    fn bucketed_dijkstra_is_bit_identical_to_sequential(
        n in 3usize..7,
        witness in prop::collection::vec(0.0..2.0f64, 7),
        raw_edges in prop::collection::vec((0usize..49, 0usize..49, 0.0..1.0f64), 4..16),
        weight in prop::collection::vec(0i64..8, 7),
        ideal in prop::collection::vec(0.0..2.0f64, 7),
        perturb in prop::collection::vec(-0.4..0.4f64, 7),
    ) {
        let inst = Instance::build(n, &witness, &raw_edges, &weight, &ideal);
        let (pairs, caps, costs) = inst.dual_arcs();
        let qcosts: Vec<i64> = costs.iter().map(|c| (c * COST_SCALE).round() as i64).collect();
        // A perturbed cost vector for the warm re-solve: nudge each R-arc
        // pair's ideal, keeping the antisymmetric ±t structure.
        let mut qcosts2 = qcosts.clone();
        for (k, &dt) in perturb[..n].iter().enumerate() {
            let dq = (dt * COST_SCALE).round() as i64;
            qcosts2[inst.constraints.len() + 2 * k] += dq;
            qcosts2[inst.constraints.len() + 2 * k + 1] -= dq;
        }

        let mut seq = Circulation::new(n + 1, &pairs);
        seq.set_strategy(DijkstraStrategy::Sequential);
        let mut par = Circulation::new(n + 1, &pairs);
        par.set_strategy(DijkstraStrategy::Bucketed);

        for (costs, warm) in [(&qcosts, false), (&qcosts2, true)] {
            seq.solve(&caps, costs, warm);
            par.solve(&caps, costs, warm);
            prop_assert_eq!(seq.total_cost(), par.total_cost());
            prop_assert_eq!(seq.potentials(), par.potentials());
            for k in 0..pairs.len() {
                prop_assert_eq!(seq.flow(k), par.flow(k));
            }
            prop_assert_eq!(seq.canonical_distances(), par.canonical_distances());
        }
    }

    /// The cost-scaling push-relabel backend and the successive-shortest-
    /// paths backend solve the same quantized problem to the same exact
    /// optimum: equal total cost and bit-identical canonical distances —
    /// cold, and warm across an antisymmetric R-arc cost perturbation (the
    /// shape a phase re-wrap round produces). Flows and internal
    /// potentials are *not* compared: alternate optimal flows are allowed,
    /// the canonical-distance recovery is what schedules are built from.
    #[test]
    fn cost_scaling_is_bit_identical_to_ssp(
        n in 3usize..7,
        witness in prop::collection::vec(0.0..2.0f64, 7),
        raw_edges in prop::collection::vec((0usize..49, 0usize..49, 0.0..1.0f64), 4..16),
        weight in prop::collection::vec(0i64..8, 7),
        ideal in prop::collection::vec(0.0..2.0f64, 7),
        perturb in prop::collection::vec(-0.4..0.4f64, 7),
    ) {
        let inst = Instance::build(n, &witness, &raw_edges, &weight, &ideal);
        let (pairs, caps, costs) = inst.dual_arcs();
        let qcosts: Vec<i64> = costs.iter().map(|c| (c * COST_SCALE).round() as i64).collect();
        let mut qcosts2 = qcosts.clone();
        for (k, &dt) in perturb[..n].iter().enumerate() {
            let dq = (dt * COST_SCALE).round() as i64;
            qcosts2[inst.constraints.len() + 2 * k] += dq;
            qcosts2[inst.constraints.len() + 2 * k + 1] -= dq;
        }

        let mut ssp = Circulation::new(n + 1, &pairs);
        ssp.set_backend(CirculationBackend::SuccessiveShortestPaths);
        let mut cs = Circulation::new(n + 1, &pairs);
        cs.set_backend(CirculationBackend::CostScaling);

        for (costs, warm) in [(&qcosts, false), (&qcosts2, true)] {
            ssp.solve(&caps, costs, warm);
            cs.solve(&caps, costs, warm);
            prop_assert_eq!(cs.backend_label(), "cost-scaling");
            prop_assert_eq!(ssp.total_cost(), cs.total_cost());
            prop_assert_eq!(ssp.canonical_distances(), cs.canonical_distances());
        }
    }

    /// The quantization-ladder backend and the direct 2^40 SSP solve land
    /// on the same exact optimum: equal total cost and bit-identical
    /// canonical distances — cold (full ladder), and warm across an
    /// antisymmetric R-arc cost perturbation (the shape a phase re-wrap
    /// round produces; sparse deltas take the ladder's finest-level
    /// bypass, so both regimes are exercised). Flows and internal
    /// potentials are *not* compared — zero-cost R-arc 2-cycles make the
    /// optimal flow non-unique, so alternate optima are legal for every
    /// backend; the canonical-distance recovery is what schedules are
    /// built from, and it is a constant of the quantized problem.
    #[test]
    fn quant_ladder_is_bit_identical_to_ssp(
        n in 3usize..7,
        witness in prop::collection::vec(0.0..2.0f64, 7),
        raw_edges in prop::collection::vec((0usize..49, 0usize..49, 0.0..1.0f64), 4..16),
        weight in prop::collection::vec(0i64..8, 7),
        ideal in prop::collection::vec(0.0..2.0f64, 7),
        perturb in prop::collection::vec(-0.4..0.4f64, 7),
    ) {
        let inst = Instance::build(n, &witness, &raw_edges, &weight, &ideal);
        let (pairs, caps, costs) = inst.dual_arcs();
        let qcosts: Vec<i64> = costs.iter().map(|c| (c * COST_SCALE).round() as i64).collect();
        let mut qcosts2 = qcosts.clone();
        for (k, &dt) in perturb[..n].iter().enumerate() {
            let dq = (dt * COST_SCALE).round() as i64;
            qcosts2[inst.constraints.len() + 2 * k] += dq;
            qcosts2[inst.constraints.len() + 2 * k + 1] -= dq;
        }

        let mut ssp = Circulation::new(n + 1, &pairs);
        ssp.set_backend(CirculationBackend::SuccessiveShortestPaths);
        let mut ql = Circulation::new(n + 1, &pairs);
        ql.set_backend(CirculationBackend::QuantLadder);

        for (costs, warm) in [(&qcosts, false), (&qcosts2, true)] {
            ssp.solve(&caps, costs, warm);
            ql.solve(&caps, costs, warm);
            prop_assert_eq!(ql.backend_label(), "quant-ladder");
            prop_assert_eq!(ssp.total_cost(), ql.total_cost());
            prop_assert_eq!(ssp.canonical_distances(), ql.canonical_distances());
        }
    }

    /// `weighted_schedule_ctx` under a quantization-ladder context returns
    /// bit-identical schedules to a cold SSP context, across a warm
    /// sequence of perturbed ideal vectors — the ladder, the dropout
    /// hint's frozen region, and the memo ring are all invisible in every
    /// quality column.
    #[test]
    fn quant_ladder_schedules_match_ssp(
        n in 4usize..8,
        cross in prop::collection::vec((0usize..49, 0usize..49), 2..5),
        base_ideal in prop::collection::vec(0.0..0.9f64, 8),
        perturb in prop::collection::vec((0usize..49, -0.4..0.4f64), 3..6),
    ) {
        let cell = |kind: CellKind| Cell {
            kind,
            width: 2.0,
            height: 8.0,
            input_cap: 0.004,
            drive_resistance: 0.4,
            intrinsic_delay: 0.02,
        };
        let mut c = Circuit::new("ladderprop", Rect::from_size(2000.0, 2000.0));
        let ffs: Vec<_> = (0..n)
            .map(|k| {
                c.add_cell(
                    cell(CellKind::FlipFlop),
                    Point::new(100.0 + 70.0 * k as f64, 100.0 + 40.0 * (k % 3) as f64),
                )
            })
            .collect();
        let mut edges: Vec<(usize, usize)> = (0..n).map(|k| (k, (k + 1) % n)).collect();
        edges.extend(cross.iter().map(|&(a, b)| (a % n, b % n)).filter(|(a, b)| a != b));
        for &(a, b) in &edges {
            let g = c.add_cell(
                cell(CellKind::Combinational),
                Point::new(150.0 + 50.0 * a as f64, 150.0 + 50.0 * b as f64),
            );
            c.add_net(Net { driver: ffs[a], sinks: vec![g] });
            c.add_net(Net { driver: g, sinks: vec![ffs[b]] });
        }
        let tech = Technology::default();
        let graph = SequentialGraph::extract(&c, &tech);
        if graph.pairs().is_empty() {
            return Ok(());
        }

        let mut ideals = vec![base_ideal[..n].to_vec()];
        for &(at, delta) in &perturb {
            let mut next = ideals.last().unwrap().clone();
            next[at % n] += delta;
            ideals.push(next);
        }
        let weight: Vec<f64> = (0..n).map(|i| 0.5 + i as f64).collect();

        let mut ql_ctx = SkewContext::new();
        ql_ctx.set_circulation_backend(CirculationBackend::QuantLadder);
        for ideal in &ideals {
            let (ql, ql_stats) =
                weighted_schedule_ctx(&graph, &tech, ideal, &weight, 0.0, &mut ql_ctx);
            prop_assert_eq!(ql_stats.backend, Some("quant-ladder"));
            let mut ssp_ctx = SkewContext::new();
            ssp_ctx.set_circulation_backend(CirculationBackend::SuccessiveShortestPaths);
            let (ssp, _) =
                weighted_schedule_ctx(&graph, &tech, ideal, &weight, 0.0, &mut ssp_ctx);
            prop_assert_eq!(ql.targets.len(), ssp.targets.len());
            for (a, b) in ql.targets.iter().zip(&ssp.targets) {
                prop_assert!(a.to_bits() == b.to_bits(), "quant-ladder {} vs ssp {}", a, b);
            }
        }
    }

    /// `weighted_schedule_ctx` under a cost-scaling context returns
    /// bit-identical schedules to a cold SSP context, across a warm
    /// sequence of perturbed ideal vectors — the backend choice is
    /// invisible in every quality column.
    #[test]
    fn cost_scaling_schedules_match_ssp(
        n in 4usize..8,
        cross in prop::collection::vec((0usize..49, 0usize..49), 2..5),
        base_ideal in prop::collection::vec(0.0..0.9f64, 8),
        perturb in prop::collection::vec((0usize..49, -0.4..0.4f64), 3..6),
    ) {
        let cell = |kind: CellKind| Cell {
            kind,
            width: 2.0,
            height: 8.0,
            input_cap: 0.004,
            drive_resistance: 0.4,
            intrinsic_delay: 0.02,
        };
        let mut c = Circuit::new("backendprop", Rect::from_size(2000.0, 2000.0));
        let ffs: Vec<_> = (0..n)
            .map(|k| {
                c.add_cell(
                    cell(CellKind::FlipFlop),
                    Point::new(100.0 + 70.0 * k as f64, 100.0 + 40.0 * (k % 3) as f64),
                )
            })
            .collect();
        let mut edges: Vec<(usize, usize)> = (0..n).map(|k| (k, (k + 1) % n)).collect();
        edges.extend(cross.iter().map(|&(a, b)| (a % n, b % n)).filter(|(a, b)| a != b));
        for &(a, b) in &edges {
            let g = c.add_cell(
                cell(CellKind::Combinational),
                Point::new(150.0 + 50.0 * a as f64, 150.0 + 50.0 * b as f64),
            );
            c.add_net(Net { driver: ffs[a], sinks: vec![g] });
            c.add_net(Net { driver: g, sinks: vec![ffs[b]] });
        }
        let tech = Technology::default();
        let graph = SequentialGraph::extract(&c, &tech);
        if graph.pairs().is_empty() {
            return Ok(());
        }

        let mut ideals = vec![base_ideal[..n].to_vec()];
        for &(at, delta) in &perturb {
            let mut next = ideals.last().unwrap().clone();
            next[at % n] += delta;
            ideals.push(next);
        }
        let weight: Vec<f64> = (0..n).map(|i| 0.5 + i as f64).collect();

        let mut cs_ctx = SkewContext::new();
        cs_ctx.set_circulation_backend(CirculationBackend::CostScaling);
        for ideal in &ideals {
            let (cs, cs_stats) =
                weighted_schedule_ctx(&graph, &tech, ideal, &weight, 0.0, &mut cs_ctx);
            prop_assert_eq!(cs_stats.backend, Some("cost-scaling"));
            let mut ssp_ctx = SkewContext::new();
            ssp_ctx.set_circulation_backend(CirculationBackend::SuccessiveShortestPaths);
            let (ssp, _) =
                weighted_schedule_ctx(&graph, &tech, ideal, &weight, 0.0, &mut ssp_ctx);
            prop_assert_eq!(cs.targets.len(), ssp.targets.len());
            for (a, b) in cs.targets.iter().zip(&ssp.targets) {
                prop_assert!(a.to_bits() == b.to_bits(), "cost-scaling {} vs ssp {}", a, b);
            }
        }
    }

    /// Carrying the `SkewContext` (and its circulation engine) across a
    /// sequence of perturbed ideal vectors gives bit-identical schedules
    /// to resetting the context before every solve.
    #[test]
    fn warm_weighted_schedule_is_bit_identical_to_cold(
        n in 4usize..8,
        cross in prop::collection::vec((0usize..49, 0usize..49), 2..5),
        base_ideal in prop::collection::vec(0.0..0.9f64, 8),
        perturb in prop::collection::vec((0usize..49, -0.4..0.4f64), 3..6),
    ) {
        let cell = |kind: CellKind| Cell {
            kind,
            width: 2.0,
            height: 8.0,
            input_cap: 0.004,
            drive_resistance: 0.4,
            intrinsic_delay: 0.02,
        };
        let mut c = Circuit::new("warmprop", Rect::from_size(2000.0, 2000.0));
        let ffs: Vec<_> = (0..n)
            .map(|k| {
                c.add_cell(
                    cell(CellKind::FlipFlop),
                    Point::new(100.0 + 70.0 * k as f64, 100.0 + 40.0 * (k % 3) as f64),
                )
            })
            .collect();
        // Pipeline ring plus a few random cross edges, each through a gate.
        let mut edges: Vec<(usize, usize)> = (0..n).map(|k| (k, (k + 1) % n)).collect();
        edges.extend(cross.iter().map(|&(a, b)| (a % n, b % n)).filter(|(a, b)| a != b));
        for &(a, b) in &edges {
            let g = c.add_cell(
                cell(CellKind::Combinational),
                Point::new(150.0 + 50.0 * a as f64, 150.0 + 50.0 * b as f64),
            );
            c.add_net(Net { driver: ffs[a], sinks: vec![g] });
            c.add_net(Net { driver: g, sinks: vec![ffs[b]] });
        }
        let tech = Technology::default();
        let graph = SequentialGraph::extract(&c, &tech);
        if graph.pairs().is_empty() {
            return Ok(());
        }

        // Sequence of ideal vectors: the base, then cumulative point
        // perturbations (the shape a phase re-wrap round produces).
        let mut ideals = vec![base_ideal[..n].to_vec()];
        for &(at, delta) in &perturb {
            let mut next = ideals.last().unwrap().clone();
            next[at % n] += delta;
            ideals.push(next);
        }
        let weight: Vec<f64> = (0..n).map(|i| 0.5 + i as f64).collect();

        let mut warm_ctx = SkewContext::new();
        for ideal in &ideals {
            let (warm, wstats) =
                weighted_schedule_ctx(&graph, &tech, ideal, &weight, 0.0, &mut warm_ctx);
            let mut cold_ctx = SkewContext::new();
            let (cold, cstats) =
                weighted_schedule_ctx(&graph, &tech, ideal, &weight, 0.0, &mut cold_ctx);
            prop_assert!(cstats.reused_work == 0, "cold solve must not report reuse");
            prop_assert_eq!(warm.targets.len(), cold.targets.len());
            for (a, b) in warm.targets.iter().zip(&cold.targets) {
                prop_assert!(a.to_bits() == b.to_bits(), "warm {} vs cold {}", a, b);
            }
            let _ = wstats;
        }
    }
}
