//! Cross-solver integration tests: the independent optimization kernels
//! must agree with each other on problems where both apply.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rotary::solver::lp::{LpProblem, LpStatus, RowKind};
use rotary::solver::mcmf::FlowNetwork;
use rotary::solver::DifferenceSystem;

/// Random assignment instances: min-cost flow must match the LP optimum of
/// the transportation relaxation (which is integral for assignment
/// polytopes).
#[test]
fn mcmf_matches_lp_on_random_assignment_instances() {
    let mut rng = StdRng::seed_from_u64(99);
    for round in 0..8 {
        let f = rng.gen_range(3..7);
        let r = rng.gen_range(2..5);
        let caps: Vec<i64> = (0..r).map(|_| rng.gen_range(1..4)).collect();
        if caps.iter().sum::<i64>() < f as i64 {
            continue;
        }
        let costs: Vec<Vec<f64>> =
            (0..f).map(|_| (0..r).map(|_| rng.gen_range(1.0..50.0f64).round()).collect()).collect();

        // Min-cost flow.
        let mut net = FlowNetwork::new(2 + f + r);
        let (s, t) = (net.node(0), net.node(1));
        for (i, row) in costs.iter().enumerate() {
            net.add_arc(s, net.node(2 + i), 1, 0.0);
            for (j, &cost) in row.iter().enumerate() {
                net.add_arc(net.node(2 + i), net.node(2 + f + j), 1, cost);
            }
        }
        for (j, &cap) in caps.iter().enumerate() {
            net.add_arc(net.node(2 + f + j), t, cap, 0.0);
        }
        let (flow, flow_cost) = net.min_cost_flow(s, t, f as i64).expect("feasible");
        assert_eq!(flow, f as i64, "round {round}");

        // LP.
        let mut obj = Vec::new();
        for row in &costs {
            obj.extend(row.iter().copied());
        }
        let mut lp = LpProblem::minimize(obj);
        for i in 0..f {
            let row: Vec<_> = (0..r).map(|j| (i * r + j, 1.0)).collect();
            lp.add_row(RowKind::Eq, 1.0, &row);
        }
        for (j, &cap) in caps.iter().enumerate() {
            let row: Vec<_> = (0..f).map(|i| (i * r + j, 1.0)).collect();
            lp.add_row(RowKind::Le, cap as f64, &row);
        }
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal, "round {round}");
        assert!(
            (sol.objective - flow_cost).abs() < 1e-6,
            "round {round}: LP {} vs flow {}",
            sol.objective,
            flow_cost
        );
    }
}

/// Difference-constraint feasibility must agree with the LP's verdict.
#[test]
fn difference_system_agrees_with_lp_feasibility() {
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..10 {
        let n = rng.gen_range(3..6);
        let m = rng.gen_range(3..9);
        let mut sys = DifferenceSystem::new(n);
        let mut lp = LpProblem::minimize(vec![0.0; n]);
        for j in 0..n {
            lp.set_free(j);
        }
        for _ in 0..m {
            let i = rng.gen_range(0..n);
            let j = (i + rng.gen_range(1..n)) % n;
            let b: f64 = rng.gen_range(-3.0..3.0);
            sys.add(i, j, b);
            lp.add_row(RowKind::Le, b, &[(i, 1.0), (j, -1.0)]);
        }
        let lp_feasible = lp.solve().status == LpStatus::Optimal;
        assert_eq!(sys.is_feasible(), lp_feasible);
    }
}

/// Greedy rounding must preserve assignment feasibility and stay within a
/// factor-#items bound of the LP optimum for min-max instances.
#[test]
fn rounding_quality_bound_on_min_max_instances() {
    use rotary::core::tapping::CandidateCosts;
    use rotary::netlist::CellId;
    use rotary::ring::RingId;

    let mut rng = StdRng::seed_from_u64(21);
    for _ in 0..6 {
        let f = rng.gen_range(4..9);
        let r = rng.gen_range(2..4);
        let candidates: Vec<Vec<(RingId, f64, f64)>> = (0..f)
            .map(|_| (0..r).map(|j| (RingId(j as u32), 1.0, rng.gen_range(0.05..0.5))).collect())
            .collect();
        let costs = CandidateCosts { flip_flops: (0..f as u32).map(CellId).collect(), candidates };
        let out = rotary::core::assign::assign_min_max_cap(&costs, r).expect("solved");
        assert_eq!(out.assignment.rings.len(), f);
        assert!(out.integrality_gap >= 1.0 - 1e-9);
        // Crude upper bound: rounding can exceed OPT(LP) by at most the
        // largest single load (each item adds ≤ max load to one ring).
        let max_single: f64 =
            costs.candidates.iter().flat_map(|c| c.iter().map(|&(_, _, l)| l)).fold(0.0, f64::max);
        assert!(out.achieved <= out.lp_optimum + f as f64 * max_single + 1e-9);
    }
}

/// The weighted skew dual must match the explicit LP on random constraint
/// systems (not just pipelines).
#[test]
fn weighted_skew_dual_matches_lp_on_random_systems() {
    use rotary::core::skew::weighted_schedule;
    use rotary::netlist::geom::{Point, Rect};
    use rotary::netlist::{Cell, CellKind, Circuit, Net};
    use rotary::timing::{SequentialGraph, Technology};

    let cell = |kind: CellKind| Cell {
        kind,
        width: 2.0,
        height: 8.0,
        input_cap: 0.004,
        drive_resistance: 0.4,
        intrinsic_delay: 0.02,
    };
    let mut rng = StdRng::seed_from_u64(5);
    for round in 0..4 {
        // Random sparse FF network with gates between random FF pairs.
        let n = rng.gen_range(4..8);
        let mut c = Circuit::new("rand", Rect::from_size(2000.0, 2000.0));
        let ffs: Vec<_> = (0..n)
            .map(|k| {
                c.add_cell(
                    cell(CellKind::FlipFlop),
                    Point::new(100.0 + 70.0 * k as f64, 100.0 + 40.0 * (k % 3) as f64),
                )
            })
            .collect();
        for _ in 0..n + 2 {
            let a = rng.gen_range(0..n);
            let b = (a + rng.gen_range(1..n)) % n;
            let g = c.add_cell(
                cell(CellKind::Combinational),
                Point::new(rng.gen_range(100.0..600.0), rng.gen_range(100.0..600.0)),
            );
            c.add_net(Net { driver: ffs[a], sinks: vec![g] });
            c.add_net(Net { driver: g, sinks: vec![ffs[b]] });
        }
        let tech = Technology::default();
        let graph = SequentialGraph::extract(&c, &tech);
        if graph.pairs().is_empty() {
            continue;
        }
        let ideal: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..0.9)).collect();
        let weight: Vec<f64> = (0..n).map(|_| rng.gen_range(0.5..4.0f64)).collect();
        let sched = weighted_schedule(&graph, &tech, &ideal, &weight, 0.0);
        let dual_obj: f64 = sched
            .targets
            .iter()
            .zip(&ideal)
            .zip(&weight)
            .map(|((t, i), w)| w * (t - i).abs())
            .sum();

        // Explicit LP.
        let mut obj = vec![0.0; n];
        obj.extend(weight.iter().cloned());
        let mut lp = LpProblem::minimize(obj);
        for j in 0..n {
            lp.set_free(j);
        }
        let idx = |id| graph.flip_flops().binary_search(&id).unwrap();
        for p in graph.pairs() {
            let (i, j) = (idx(p.from), idx(p.to));
            lp.add_row(RowKind::Le, p.skew_upper(&tech), &[(i, 1.0), (j, -1.0)]);
            lp.add_row(RowKind::Le, -p.skew_lower(&tech), &[(i, -1.0), (j, 1.0)]);
        }
        for (i, &t_ideal) in ideal.iter().enumerate() {
            lp.add_row(RowKind::Le, t_ideal, &[(i, 1.0), (n + i, -1.0)]);
            lp.add_row(RowKind::Le, -t_ideal, &[(i, -1.0), (n + i, -1.0)]);
        }
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal, "round {round}");
        assert!(
            dual_obj <= sol.objective + 0.05 * sol.objective.abs().max(0.05),
            "round {round}: dual {} vs LP {}",
            dual_obj,
            sol.objective
        );
    }
}
