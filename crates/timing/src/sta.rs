//! Forward topological static timing analysis over the combinational DAG.
//!
//! Edge delays (driver output → sink input) are computed once from the
//! current placement with the Elmore model; longest/shortest path sweeps
//! then run in `O(V + E)` per source.

use crate::elmore::sink_edge_delay;
use crate::tech::Technology;
use rotary_netlist::{CellId, CellKind, Circuit, NetId};

/// Pre-computed timing view of a placed circuit.
///
/// # Examples
///
/// ```
/// use rotary_netlist::BenchmarkSuite;
/// use rotary_timing::{Sta, Technology};
///
/// let c = BenchmarkSuite::S9234.circuit(1);
/// let sta = Sta::build(&c, &Technology::default());
/// let report = sta.critical_paths();
/// assert!(report.max_delay > 0.0);
/// assert!(report.min_delay <= report.max_delay);
/// ```
#[derive(Debug, Clone)]
pub struct Sta {
    /// Topological order (flip-flops and primary inputs first).
    order: Vec<CellId>,
    /// For each cell: outgoing edges `(sink, delay)`.
    edges: Vec<Vec<(CellId, f64)>>,
    /// Kind of every cell (copied for cheap access).
    kinds: Vec<CellKind>,
}

/// Whole-circuit critical-path summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StaReport {
    /// Longest register-to-register combinational delay, ns.
    pub max_delay: f64,
    /// Shortest register-to-register combinational delay, ns.
    pub min_delay: f64,
    /// Number of flip-flop→flip-flop paths summarized.
    pub path_endpoints: usize,
}

impl Sta {
    /// Builds the timing view for the circuit's current placement.
    ///
    /// # Panics
    ///
    /// Panics if the combinational subgraph has a cycle (call
    /// [`Circuit::validate`] first to obtain a proper error).
    pub fn build(circuit: &Circuit, tech: &Technology) -> Self {
        let order =
            circuit.topological_order().expect("combinational cycle: validate() the circuit first");
        let mut edges = vec![Vec::new(); circuit.cell_count()];
        for i in 0..circuit.net_count() {
            let net = NetId(i as u32);
            let n = circuit.net(net);
            for &s in &n.sinks {
                let d = sink_edge_delay(circuit, net, s, tech);
                edges[n.driver.index()].push((s, d));
            }
        }
        let kinds = circuit.cells.iter().map(|c| c.kind).collect();
        Self { order, edges, kinds }
    }

    /// Number of cells in the analyzed circuit.
    pub fn cell_count(&self) -> usize {
        self.kinds.len()
    }

    /// Propagates max (`longest = true`) or min arrival times from a single
    /// source flip-flop, returning for every *flip-flop* data endpoint `j`
    /// reached from `src` the path delay. The source's clk→q delay is
    /// included.
    ///
    /// Arrival vectors are dense scratch space reused across calls via
    /// `scratch` to avoid re-allocation in the per-source adjacency sweep.
    pub fn propagate_from(
        &self,
        src: CellId,
        clk_to_q: f64,
        longest: bool,
        scratch: &mut Vec<f64>,
    ) -> Vec<(CellId, f64)> {
        let n = self.kinds.len();
        let unset = if longest { f64::NEG_INFINITY } else { f64::INFINITY };
        scratch.clear();
        scratch.resize(n, unset);
        scratch[src.index()] = clk_to_q;
        let mut endpoints = Vec::new();
        for &u in &self.order {
            let au = scratch[u.index()];
            if au == unset {
                continue;
            }
            if self.kinds[u.index()] == CellKind::FlipFlop && u != src {
                // Arrival at an FF data pin terminates the path; collected
                // below, do not propagate through.
                continue;
            }
            for &(v, d) in &self.edges[u.index()] {
                let cand = au + d;
                let slot = &mut scratch[v.index()];
                if (longest && cand > *slot) || (!longest && cand < *slot) {
                    *slot = cand;
                }
            }
        }
        for (i, &a) in scratch.iter().enumerate() {
            if a != unset && self.kinds[i] == CellKind::FlipFlop && CellId(i as u32) != src {
                endpoints.push((CellId(i as u32), a));
            }
        }
        endpoints
    }

    /// Longest and shortest register-to-register delays over the whole
    /// circuit (summary used to sanity-check the clock period).
    pub fn critical_paths(&self) -> StaReport {
        let mut max_delay = f64::NEG_INFINITY;
        let mut min_delay = f64::INFINITY;
        let mut endpoints = 0;
        let mut scratch = Vec::new();
        for i in 0..self.kinds.len() {
            if self.kinds[i] != CellKind::FlipFlop {
                continue;
            }
            let src = CellId(i as u32);
            for (_, d) in self.propagate_from(src, 0.0, true, &mut scratch) {
                max_delay = max_delay.max(d);
                endpoints += 1;
            }
            for (_, d) in self.propagate_from(src, 0.0, false, &mut scratch) {
                min_delay = min_delay.min(d);
            }
        }
        if endpoints == 0 {
            StaReport { max_delay: 0.0, min_delay: 0.0, path_endpoints: 0 }
        } else {
            StaReport { max_delay, min_delay, path_endpoints: endpoints }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotary_netlist::geom::{Point, Rect};
    use rotary_netlist::{Cell, Net};

    fn cell(kind: CellKind) -> Cell {
        Cell {
            kind,
            width: 2.0,
            height: 8.0,
            input_cap: 0.004,
            drive_resistance: 2.0,
            intrinsic_delay: 0.05,
        }
    }

    /// ff0 → g1 → ff3 and ff0 → g1 → g2 → ff3: a long and a short path.
    fn diamond() -> Circuit {
        let mut c = Circuit::new("d", Rect::from_size(1000.0, 1000.0));
        let ff0 = c.add_cell(cell(CellKind::FlipFlop), Point::new(0.0, 0.0));
        let g1 = c.add_cell(cell(CellKind::Combinational), Point::new(100.0, 0.0));
        let g2 = c.add_cell(cell(CellKind::Combinational), Point::new(200.0, 0.0));
        let ff3 = c.add_cell(cell(CellKind::FlipFlop), Point::new(300.0, 0.0));
        c.add_net(Net { driver: ff0, sinks: vec![g1] });
        c.add_net(Net { driver: g1, sinks: vec![g2, ff3] });
        c.add_net(Net { driver: g2, sinks: vec![ff3] });
        c
    }

    #[test]
    fn longest_path_exceeds_shortest() {
        let c = diamond();
        let sta = Sta::build(&c, &Technology::default());
        let mut scratch = Vec::new();
        let max = sta.propagate_from(CellId(0), 0.0, true, &mut scratch);
        let min = sta.propagate_from(CellId(0), 0.0, false, &mut scratch);
        assert_eq!(max.len(), 1);
        assert_eq!(max[0].0, CellId(3));
        assert!(max[0].1 > min[0].1, "3-hop path should beat 2-hop path");
    }

    #[test]
    fn clk_to_q_shifts_arrivals() {
        let c = diamond();
        let sta = Sta::build(&c, &Technology::default());
        let mut scratch = Vec::new();
        let a = sta.propagate_from(CellId(0), 0.0, true, &mut scratch)[0].1;
        let b = sta.propagate_from(CellId(0), 0.25, true, &mut scratch)[0].1;
        assert!((b - a - 0.25).abs() < 1e-12);
    }

    #[test]
    fn paths_do_not_cross_flip_flops() {
        // ff0 → g1 → ff2 → g3 → ff4: from ff0 only ff2 is reachable.
        let mut c = Circuit::new("chain", Rect::from_size(1000.0, 1000.0));
        let ff0 = c.add_cell(cell(CellKind::FlipFlop), Point::new(0.0, 0.0));
        let g1 = c.add_cell(cell(CellKind::Combinational), Point::new(50.0, 0.0));
        let ff2 = c.add_cell(cell(CellKind::FlipFlop), Point::new(100.0, 0.0));
        let g3 = c.add_cell(cell(CellKind::Combinational), Point::new(150.0, 0.0));
        let ff4 = c.add_cell(cell(CellKind::FlipFlop), Point::new(200.0, 0.0));
        c.add_net(Net { driver: ff0, sinks: vec![g1] });
        c.add_net(Net { driver: g1, sinks: vec![ff2] });
        c.add_net(Net { driver: ff2, sinks: vec![g3] });
        c.add_net(Net { driver: g3, sinks: vec![ff4] });
        let sta = Sta::build(&c, &Technology::default());
        let mut scratch = Vec::new();
        let ends = sta.propagate_from(ff0, 0.0, true, &mut scratch);
        assert_eq!(ends.len(), 1);
        assert_eq!(ends[0].0, ff2);
    }

    #[test]
    fn critical_path_report() {
        let c = diamond();
        let sta = Sta::build(&c, &Technology::default());
        let r = sta.critical_paths();
        assert_eq!(r.path_endpoints, 1);
        assert!(r.max_delay > r.min_delay);
        assert!(r.min_delay > 0.0);
    }

    #[test]
    fn empty_reachability_yields_zero_report() {
        let mut c = Circuit::new("iso", Rect::from_size(10.0, 10.0));
        c.add_cell(cell(CellKind::FlipFlop), Point::new(1.0, 1.0));
        let sta = Sta::build(&c, &Technology::default());
        let r = sta.critical_paths();
        assert_eq!(r.path_endpoints, 0);
        assert_eq!(r.max_delay, 0.0);
    }
}
