//! Elmore delay model \[21\] for placed nets.
//!
//! Nets are modeled as a star of direct driver→sink wires (a standard
//! pre-route approximation): the driver sees the total net capacitance
//! through its drive resistance, and each sink additionally sees the
//! distributed RC of its own branch.

use crate::tech::Technology;
use rotary_netlist::{CellId, Circuit, NetId};

/// Total capacitive load on a net: wire capacitance of all branches plus
/// the input capacitance of every sink pin.
///
/// # Examples
///
/// ```
/// use rotary_netlist::BenchmarkSuite;
/// use rotary_timing::{net_load_cap, Technology};
/// use rotary_netlist::NetId;
///
/// let c = BenchmarkSuite::S9234.circuit(1);
/// let load = net_load_cap(&c, NetId(0), &Technology::default());
/// assert!(load > 0.0);
/// ```
pub fn net_load_cap(circuit: &Circuit, net: NetId, tech: &Technology) -> f64 {
    let n = circuit.net(net);
    let dp = circuit.position(n.driver);
    let mut cap = 0.0;
    for &s in &n.sinks {
        let l = dp.manhattan(circuit.position(s));
        cap += tech.wire_cap * l + circuit.cell(s).input_cap;
    }
    cap
}

/// Delay from the output of `net`'s driver to the input pin of `sink`:
/// gate delay (intrinsic + drive resistance × total net load) plus the
/// Elmore delay of the sink's branch
/// (`r·l·(c·l/2 + C_sink)` for branch length `l`).
///
/// # Panics
///
/// Panics if `sink` is not a sink of `net`.
pub fn sink_edge_delay(circuit: &Circuit, net: NetId, sink: CellId, tech: &Technology) -> f64 {
    let n = circuit.net(net);
    debug_assert!(n.sinks.contains(&sink), "cell {sink} is not a sink of {net}");
    let driver = circuit.cell(n.driver);
    let load = net_load_cap(circuit, net, tech);
    let gate = driver.intrinsic_delay + driver.drive_resistance * load;
    let l = circuit.position(n.driver).manhattan(circuit.position(sink));
    let branch = tech.wire_res * l * (0.5 * tech.wire_cap * l + circuit.cell(sink).input_cap);
    gate + branch
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotary_netlist::geom::{Point, Rect};
    use rotary_netlist::{Cell, CellKind, Net};

    fn cell(kind: CellKind, cap: f64) -> Cell {
        Cell {
            kind,
            width: 2.0,
            height: 8.0,
            input_cap: cap,
            drive_resistance: 2.0,
            intrinsic_delay: 0.05,
        }
    }

    fn two_sink_net() -> Circuit {
        let mut c = Circuit::new("t", Rect::from_size(1000.0, 1000.0));
        let d = c.add_cell(cell(CellKind::Combinational, 0.004), Point::new(0.0, 0.0));
        let s1 = c.add_cell(cell(CellKind::Combinational, 0.004), Point::new(100.0, 0.0));
        let s2 = c.add_cell(cell(CellKind::Combinational, 0.006), Point::new(0.0, 300.0));
        c.add_net(Net { driver: d, sinks: vec![s1, s2] });
        c
    }

    #[test]
    fn load_cap_sums_wire_and_pins() {
        let c = two_sink_net();
        let t = Technology::default();
        let expect = t.wire_cap * (100.0 + 300.0) + 0.004 + 0.006;
        assert!((net_load_cap(&c, NetId(0), &t) - expect).abs() < 1e-12);
    }

    #[test]
    fn farther_sink_has_larger_delay() {
        let c = two_sink_net();
        let t = Technology::default();
        let d1 = sink_edge_delay(&c, NetId(0), CellId(1), &t);
        let d2 = sink_edge_delay(&c, NetId(0), CellId(2), &t);
        assert!(d2 > d1);
    }

    #[test]
    fn delay_grows_with_distance() {
        let mut c = two_sink_net();
        let t = Technology::default();
        let before = sink_edge_delay(&c, NetId(0), CellId(1), &t);
        c.set_position(CellId(1), Point::new(900.0, 0.0));
        let after = sink_edge_delay(&c, NetId(0), CellId(1), &t);
        assert!(after > before);
    }

    #[test]
    fn zero_length_branch_is_pure_gate_delay() {
        let mut c = two_sink_net();
        c.set_position(CellId(1), Point::new(0.0, 0.0));
        let t = Technology::default();
        let load = net_load_cap(&c, NetId(0), &t);
        let d = sink_edge_delay(&c, NetId(0), CellId(1), &t);
        let gate = 0.05 + 2.0 * load;
        assert!((d - gate).abs() < 1e-12);
    }
}
