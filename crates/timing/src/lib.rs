//! Static timing analysis substrate for the rotary-clocking flow.
//!
//! The paper's skew optimization (Section VII) needs, for every pair of
//! **sequentially adjacent** flip-flops `i ↦ j` (flip-flops with only
//! combinational logic between them), the maximum and minimum combinational
//! delays `D_max^ij` / `D_min^ij`. Together with the clock period, setup and
//! hold times these define the *permissible range* of the skew
//! `t̂_i − t̂_j` (Fishburn \[4\]):
//!
//! ```text
//! t̂_i − t̂_j ≤ T − D_max^ij − t_setup      (long-path / setup)
//! t̂_i − t̂_j ≥ t_hold − D_min^ij           (short-path / hold)
//! ```
//!
//! This crate implements the Elmore-delay timing model the paper states it
//! used (\[21\]), a forward topological STA over the combinational DAG, and
//! the extraction of the sequential-adjacency graph.
//!
//! # Examples
//!
//! ```
//! use rotary_netlist::BenchmarkSuite;
//! use rotary_timing::{SequentialGraph, Technology};
//!
//! let circuit = BenchmarkSuite::S9234.circuit(1);
//! let tech = Technology::default();
//! let graph = SequentialGraph::extract(&circuit, &tech);
//! assert!(!graph.pairs().is_empty());
//! for p in graph.pairs() {
//!     assert!(p.d_max >= p.d_min);
//! }
//! ```

pub mod adjacency;
pub mod elmore;
pub mod sta;
pub mod tech;

pub use adjacency::{AdjacentPair, SequentialGraph};
pub use elmore::{net_load_cap, sink_edge_delay};
pub use sta::{Sta, StaReport};
pub use tech::Technology;
