//! Technology constants (bptm-style 180 nm-class defaults).
//!
//! The paper obtained interconnect parameters from bptm (Berkeley Predictive
//! Technology Model) and ran all circuits at 1 GHz. bptm is not available
//! offline, so we provide documented constants of the same order of
//! magnitude; every experiment only depends on *ratios* of these values.

use serde::{Deserialize, Serialize};

/// Process/technology constants shared by timing, power, and clock-network
/// construction.
///
/// Units: ns, µm, kΩ, pF, V, mW (so `kΩ·pF = ns` and `pF·V²·GHz = mW`).
///
/// # Examples
///
/// ```
/// use rotary_timing::Technology;
///
/// let t = Technology::default();
/// assert_eq!(t.clock_period, 1.0);
/// assert!(t.wire_res > 0.0 && t.wire_cap > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Technology {
    /// Clock period `T` in ns. 1.0 ns ⇒ the paper's 1 GHz operating point.
    pub clock_period: f64,
    /// Wire resistance per unit length, kΩ/µm.
    pub wire_res: f64,
    /// Wire capacitance per unit length, pF/µm.
    pub wire_cap: f64,
    /// Flip-flop setup time, ns.
    pub setup: f64,
    /// Flip-flop hold time, ns.
    pub hold: f64,
    /// Supply voltage, V.
    pub vdd: f64,
    /// Switching activity of clock nets (`α = 1`, Section VIII).
    pub clock_activity: f64,
    /// Switching activity of signal nets (`α = 0.15`, Section VIII, \[30\]).
    pub signal_activity: f64,
    /// Input capacitance of a repeater/buffer, pF.
    pub buffer_cap: f64,
    /// Critical wirelength beyond which a buffer is inserted every
    /// `buffer_interval` µm (floorplan-level estimate per \[31\]).
    pub buffer_interval: f64,
    /// Unit leakage current per µm of gate width, mA (eq. 9).
    pub leak_current: f64,
}

impl Default for Technology {
    fn default() -> Self {
        Self {
            clock_period: 1.0,
            wire_res: 0.0008, // 0.8 Ω/µm global-layer wire
            wire_cap: 0.0002, // 0.2 fF/µm
            setup: 0.05,
            hold: 0.03,
            vdd: 1.8,
            clock_activity: 1.0,
            signal_activity: 0.15,
            buffer_cap: 0.010,
            buffer_interval: 1500.0,
            leak_current: 1e-6,
        }
    }
}

impl Technology {
    /// Clock frequency in GHz.
    pub fn clock_freq(&self) -> f64 {
        1.0 / self.clock_period
    }

    /// Dynamic power of a capacitive load, per eq. (8) of the paper:
    /// `P = ½·α·V_dd²·f_clk·C_load`, in mW for `C_load` in pF and `f` GHz.
    pub fn dynamic_power(&self, activity: f64, load_cap: f64) -> f64 {
        0.5 * activity * self.vdd * self.vdd * self.clock_freq() * load_cap
    }

    /// Number of buffers the floorplan-level estimator of \[31\] predicts for
    /// a wire of length `l` µm: one every `buffer_interval`.
    pub fn buffer_count(&self, l: f64) -> usize {
        if l <= self.buffer_interval {
            0
        } else {
            (l / self.buffer_interval).floor() as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynamic_power_linear_in_cap_and_activity() {
        let t = Technology::default();
        let p1 = t.dynamic_power(1.0, 2.0);
        assert!((t.dynamic_power(1.0, 4.0) - 2.0 * p1).abs() < 1e-12);
        assert!((t.dynamic_power(0.5, 2.0) - 0.5 * p1).abs() < 1e-12);
    }

    #[test]
    fn dynamic_power_magnitude_sane() {
        // 1 pF at 1 GHz, 1.8 V, α=1 → ½·3.24·1·1 = 1.62 mW.
        let t = Technology::default();
        assert!((t.dynamic_power(1.0, 1.0) - 1.62).abs() < 1e-12);
    }

    #[test]
    fn buffer_count_thresholds() {
        let t = Technology::default();
        assert_eq!(t.buffer_count(100.0), 0);
        assert_eq!(t.buffer_count(1500.0), 0);
        assert_eq!(t.buffer_count(1501.0), 1);
        assert_eq!(t.buffer_count(4600.0), 3);
    }
}
