//! Sequential-adjacency extraction: the constraint graph of skew
//! optimization.
//!
//! Two flip-flops `i`, `j` are *sequentially adjacent* (`i ↦ j`) when only
//! combinational logic lies between them. Every such pair contributes a
//! long-path (setup) and a short-path (hold) constraint to the skew
//! scheduling LP of Section VII.

use crate::sta::Sta;
use crate::tech::Technology;
use rotary_netlist::{CellId, Circuit};
use serde::{Deserialize, Serialize};

/// One sequentially adjacent flip-flop pair `from ↦ to` with its extreme
/// combinational path delays.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdjacentPair {
    /// Launching flip-flop `i`.
    pub from: CellId,
    /// Capturing flip-flop `j`.
    pub to: CellId,
    /// Maximum combinational delay `D_max^ij`, ns (includes clk→q).
    pub d_max: f64,
    /// Minimum combinational delay `D_min^ij`, ns (includes clk→q).
    pub d_min: f64,
}

impl AdjacentPair {
    /// Upper bound of the permissible skew range,
    /// `t̂_i − t̂_j ≤ T − D_max − t_setup`.
    pub fn skew_upper(&self, tech: &Technology) -> f64 {
        tech.clock_period - self.d_max - tech.setup
    }

    /// Lower bound of the permissible skew range,
    /// `t̂_i − t̂_j ≥ t_hold − D_min`.
    pub fn skew_lower(&self, tech: &Technology) -> f64 {
        tech.hold - self.d_min
    }
}

/// The sequential-adjacency graph of a placed circuit.
///
/// # Examples
///
/// ```
/// use rotary_netlist::BenchmarkSuite;
/// use rotary_timing::{SequentialGraph, Technology};
///
/// let c = BenchmarkSuite::S5378.circuit(3);
/// let g = SequentialGraph::extract(&c, &Technology::default());
/// // Permissible ranges are non-empty at the paper's 1 GHz operating point.
/// let tech = Technology::default();
/// let feasible = g.pairs().iter().filter(|p| p.skew_lower(&tech) <= p.skew_upper(&tech)).count();
/// assert!(feasible > 0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SequentialGraph {
    flip_flops: Vec<CellId>,
    pairs: Vec<AdjacentPair>,
}

impl SequentialGraph {
    /// Extracts all sequentially adjacent pairs of `circuit` with their
    /// `D_max`/`D_min` under the Elmore model, at the current placement.
    ///
    /// Runs one longest- and one shortest-path sweep per flip-flop
    /// (`O(F·(V+E))`).
    pub fn extract(circuit: &Circuit, tech: &Technology) -> Self {
        let sta = Sta::build(circuit, tech);
        Self::extract_with_sta(circuit, &sta)
    }

    /// As [`Self::extract`] but reusing a prebuilt [`Sta`] view.
    pub fn extract_with_sta(circuit: &Circuit, sta: &Sta) -> Self {
        let flip_flops = circuit.flip_flops();
        let mut pairs = Vec::new();
        let mut scratch = Vec::new();
        for &src in &flip_flops {
            let clk_to_q = circuit.cell(src).intrinsic_delay;
            let maxs = sta.propagate_from(src, clk_to_q, true, &mut scratch);
            let mins = sta.propagate_from(src, clk_to_q, false, &mut scratch);
            debug_assert_eq!(maxs.len(), mins.len());
            for ((to_a, d_max), (to_b, d_min)) in maxs.into_iter().zip(mins) {
                debug_assert_eq!(to_a, to_b);
                pairs.push(AdjacentPair { from: src, to: to_a, d_max, d_min });
            }
        }
        Self { flip_flops, pairs }
    }

    /// All flip-flops of the circuit (constraint-graph vertices).
    pub fn flip_flops(&self) -> &[CellId] {
        &self.flip_flops
    }

    /// All sequentially adjacent pairs (constraint-graph edges).
    pub fn pairs(&self) -> &[AdjacentPair] {
        &self.pairs
    }

    /// Checks a candidate skew schedule (clock-delay target per flip-flop,
    /// indexed like [`Self::flip_flops`]) against all constraints with
    /// slack `m`; returns the first violated pair, if any.
    pub fn check_schedule(
        &self,
        targets: &[f64],
        tech: &Technology,
        m: f64,
        tol: f64,
    ) -> Option<AdjacentPair> {
        let index_of =
            |id: CellId| self.flip_flops.binary_search(&id).expect("flip-flop present in graph");
        for p in &self.pairs {
            let skew = targets[index_of(p.from)] - targets[index_of(p.to)];
            if skew + m > p.skew_upper(tech) + tol || skew < p.skew_lower(tech) + m - tol {
                return Some(*p);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotary_netlist::geom::{Point, Rect};
    use rotary_netlist::{Cell, CellKind, Net};

    fn cell(kind: CellKind) -> Cell {
        Cell {
            kind,
            width: 2.0,
            height: 8.0,
            input_cap: 0.004,
            drive_resistance: 2.0,
            intrinsic_delay: 0.05,
        }
    }

    /// ff0 → g → ff1, ff1 → g → ff2.
    fn pipeline() -> Circuit {
        let mut c = Circuit::new("p", Rect::from_size(1000.0, 1000.0));
        let ff0 = c.add_cell(cell(CellKind::FlipFlop), Point::new(0.0, 0.0));
        let ff1 = c.add_cell(cell(CellKind::FlipFlop), Point::new(200.0, 0.0));
        let ff2 = c.add_cell(cell(CellKind::FlipFlop), Point::new(400.0, 0.0));
        let g1 = c.add_cell(cell(CellKind::Combinational), Point::new(100.0, 0.0));
        let g2 = c.add_cell(cell(CellKind::Combinational), Point::new(300.0, 0.0));
        c.add_net(Net { driver: ff0, sinks: vec![g1] });
        c.add_net(Net { driver: g1, sinks: vec![ff1] });
        c.add_net(Net { driver: ff1, sinks: vec![g2] });
        c.add_net(Net { driver: g2, sinks: vec![ff2] });
        c
    }

    #[test]
    fn extracts_exactly_the_adjacent_pairs() {
        let c = pipeline();
        let g = SequentialGraph::extract(&c, &Technology::default());
        assert_eq!(g.pairs().len(), 2);
        let ends: Vec<_> = g.pairs().iter().map(|p| (p.from, p.to)).collect();
        assert!(ends.contains(&(CellId(0), CellId(1))));
        assert!(ends.contains(&(CellId(1), CellId(2))));
        // ff0 ↦ ff2 is NOT adjacent (a flip-flop lies between).
        assert!(!ends.contains(&(CellId(0), CellId(2))));
    }

    #[test]
    fn dmax_at_least_dmin() {
        let c = pipeline();
        let g = SequentialGraph::extract(&c, &Technology::default());
        for p in g.pairs() {
            assert!(p.d_max >= p.d_min);
            assert!(p.d_min > 0.0);
        }
    }

    #[test]
    fn permissible_range_nonempty_at_1ghz() {
        let c = pipeline();
        let tech = Technology::default();
        let g = SequentialGraph::extract(&c, &tech);
        for p in g.pairs() {
            assert!(p.skew_lower(&tech) < p.skew_upper(&tech));
        }
    }

    #[test]
    fn reconvergent_paths_split_dmax_dmin() {
        // ff0 fans out to a short gate chain and a long one, both capturing
        // at ff1: D_max must reflect the long path, D_min the short one.
        let mut c = Circuit::new("reconv", Rect::from_size(4000.0, 4000.0));
        let ff0 = c.add_cell(cell(CellKind::FlipFlop), Point::new(0.0, 0.0));
        let ff1 = c.add_cell(cell(CellKind::FlipFlop), Point::new(100.0, 0.0));
        let fast = c.add_cell(cell(CellKind::Combinational), Point::new(50.0, 0.0));
        let slow1 = c.add_cell(cell(CellKind::Combinational), Point::new(0.0, 2000.0));
        let slow2 = c.add_cell(cell(CellKind::Combinational), Point::new(100.0, 2000.0));
        c.add_net(Net { driver: ff0, sinks: vec![fast, slow1] });
        c.add_net(Net { driver: fast, sinks: vec![ff1] });
        c.add_net(Net { driver: slow1, sinks: vec![slow2] });
        c.add_net(Net { driver: slow2, sinks: vec![ff1] });
        let g = SequentialGraph::extract(&c, &Technology::default());
        assert_eq!(g.pairs().len(), 1);
        let p = g.pairs()[0];
        assert!(
            p.d_max > 2.0 * p.d_min,
            "long detour path should dominate: {} vs {}",
            p.d_max,
            p.d_min
        );
    }

    #[test]
    fn moving_cells_changes_extracted_delays() {
        let mut c = pipeline();
        let tech = Technology::default();
        let before = SequentialGraph::extract(&c, &tech).pairs()[0].d_max;
        // Stretch the first gate far away: D_max of the first pair grows.
        c.set_position(CellId(3), Point::new(900.0, 900.0));
        let after = SequentialGraph::extract(&c, &tech).pairs()[0].d_max;
        assert!(after > before);
    }

    #[test]
    fn zero_schedule_valid_for_relaxed_pipeline() {
        let c = pipeline();
        let tech = Technology::default();
        let g = SequentialGraph::extract(&c, &tech);
        let targets = vec![0.0; g.flip_flops().len()];
        assert!(g.check_schedule(&targets, &tech, 0.0, 1e-9).is_none());
    }

    #[test]
    fn violated_schedule_detected() {
        let c = pipeline();
        let tech = Technology::default();
        let g = SequentialGraph::extract(&c, &tech);
        // Huge positive skew on ff0 blows the setup constraint of ff0↦ff1.
        let targets = vec![10.0, 0.0, 0.0];
        let bad = g.check_schedule(&targets, &tech, 0.0, 1e-9);
        assert!(bad.is_some());
        assert_eq!(bad.expect("violation").from, CellId(0));
    }
}
