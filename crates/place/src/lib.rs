//! Analytical standard-cell placement.
//!
//! The paper's flow (Fig. 3) needs two placement services from the academic
//! placer it wraps (mPL \[20\]):
//!
//! 1. an **initial placement** minimizing signal wirelength, and
//! 2. a **stable incremental placement** that accepts *pseudo-nets* —
//!    artificial two-pin nets pulling each flip-flop toward its assigned
//!    rotary ring — and re-optimizes without dramatically changing the
//!    solution ("small changes on the netlist should not cause dramatic
//!    change on the placement result", Section IV).
//!
//! mPL is not available as a Rust library, so this crate implements an
//! analytical placer with the same contract: a quadratic (star-model)
//! wirelength objective relaxed by Gauss–Seidel sweeps, rank-based
//! spreading to control density, and an Abacus-style row legalizer. The
//! incremental mode warm-starts from the current placement and skips global
//! spreading, which makes it stable by construction.
//!
//! # Examples
//!
//! ```
//! use rotary_netlist::BenchmarkSuite;
//! use rotary_place::{Placer, PlacerConfig};
//!
//! let mut circuit = BenchmarkSuite::S9234.circuit(7);
//! let before = circuit.total_hpwl();
//! let report = Placer::new(PlacerConfig::default()).place(&mut circuit);
//! assert!(report.hpwl_after < before, "placement must improve HPWL");
//! ```

pub mod global;
pub mod legalize;
pub mod pseudo;

pub use global::{PlaceReport, Placer, PlacerConfig};
pub use legalize::{legalize, overlap_count, LegalizeReport};
pub use pseudo::PseudoNet;
