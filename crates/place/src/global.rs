//! Quadratic global placement with rank-based spreading.
//!
//! The wirelength objective is the classic star model: every net pulls its
//! pins toward the net centroid with weight `1/(p−1)` for a `p`-pin net.
//! Minimizing the resulting quadratic form is done by Gauss–Seidel sweeps
//! (the system matrix is a weighted Laplacian plus anchor terms, strictly
//! diagonally dominant whenever a cell sees a fixed pad or pseudo-anchor
//! through some path, so the sweeps converge).
//!
//! Quadratic optima collapse cells toward the centroid of the fixed pads;
//! interleaved **rank-based spreading** (inspired by cell shifting /
//! SimPL-style look-ahead legalization) redistributes positions toward a
//! uniform profile, blended by a configurable factor.

use crate::legalize::{legalize, LegalizeReport};
use crate::pseudo::PseudoNet;
use rotary_netlist::geom::Point;
use rotary_netlist::Circuit;
use serde::{Deserialize, Serialize};

/// Tuning knobs for [`Placer`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlacerConfig {
    /// Gauss–Seidel sweeps per quadratic solve.
    pub sweeps: usize,
    /// Alternations of quadratic solve + spreading in the initial placement.
    pub spread_iterations: usize,
    /// Blend factor toward the uniform rank profile in `[0, 1]`.
    pub spread_blend: f64,
    /// Gauss–Seidel sweeps per *incremental* call (kept small for
    /// stability).
    pub incremental_sweeps: usize,
    /// Weight of the retention anchor tying every movable cell to its
    /// pre-call position during incremental placement — the mechanism that
    /// makes the incremental mode *stable* (Section IV's requirement).
    pub retention_weight: f64,
    /// Whether to run the row legalizer at the end of each placement call.
    pub legalize: bool,
}

impl Default for PlacerConfig {
    fn default() -> Self {
        Self {
            sweeps: 30,
            spread_iterations: 4,
            spread_blend: 0.55,
            incremental_sweeps: 12,
            retention_weight: 4.0,
            legalize: true,
        }
    }
}

/// Outcome metrics of one placement call.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlaceReport {
    /// Total signal HPWL before the call, µm.
    pub hpwl_before: f64,
    /// Total signal HPWL after the call, µm.
    pub hpwl_after: f64,
    /// Mean displacement of movable cells during the call, µm.
    pub mean_displacement: f64,
    /// Legalization summary (zeros when legalization is disabled).
    pub legalize: LegalizeReport,
}

/// The analytical placer. See the [module docs](self).
#[derive(Debug, Clone, Default)]
pub struct Placer {
    config: PlacerConfig,
}

impl Placer {
    /// Creates a placer with the given configuration.
    pub fn new(config: PlacerConfig) -> Self {
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &PlacerConfig {
        &self.config
    }

    /// Initial (from-scratch) placement: alternating quadratic relaxation
    /// and spreading, then legalization. Signal HPWL is the objective.
    pub fn place(&self, circuit: &mut Circuit) -> PlaceReport {
        let before = circuit.total_hpwl();
        let orig = circuit.positions.clone();
        for _ in 0..self.config.spread_iterations {
            self.gauss_seidel(circuit, &[], self.config.sweeps);
            self.rank_spread(circuit, self.config.spread_blend);
        }
        // Final refinement pass at reduced blend to polish wirelength.
        self.gauss_seidel(circuit, &[], self.config.sweeps);
        self.rank_spread(circuit, 0.5 * self.config.spread_blend);
        let leg = if self.config.legalize { legalize(circuit) } else { LegalizeReport::default() };
        self.report(circuit, before, &orig, leg)
    }

    /// Stable incremental placement: warm-starts from the current
    /// positions, adds the given pseudo-nets to the objective, runs a small
    /// number of sweeps and re-legalizes. No global spreading is performed,
    /// so unrelated cells barely move.
    pub fn place_incremental(
        &self,
        circuit: &mut Circuit,
        pseudo_nets: &[PseudoNet],
    ) -> PlaceReport {
        let before = circuit.total_hpwl();
        let orig = circuit.positions.clone();
        // Retention anchors give the warm start its stability: every
        // movable cell is softly tied to where it already is.
        let mut pulls: Vec<PseudoNet> = pseudo_nets.to_vec();
        if self.config.retention_weight > 0.0 {
            for (i, cell) in circuit.cells.iter().enumerate() {
                if cell.kind.is_movable() {
                    pulls.push(PseudoNet::new(
                        rotary_netlist::CellId(i as u32),
                        circuit.positions[i],
                        self.config.retention_weight,
                    ));
                }
            }
        }
        self.gauss_seidel(circuit, &pulls, self.config.incremental_sweeps);
        let leg = if self.config.legalize { legalize(circuit) } else { LegalizeReport::default() };
        self.report(circuit, before, &orig, leg)
    }

    fn report(
        &self,
        circuit: &Circuit,
        before: f64,
        orig: &[Point],
        leg: LegalizeReport,
    ) -> PlaceReport {
        let mut moved = 0.0;
        let mut movables = 0usize;
        for (i, cell) in circuit.cells.iter().enumerate() {
            if cell.kind.is_movable() {
                moved += orig[i].manhattan(circuit.positions[i]);
                movables += 1;
            }
        }
        PlaceReport {
            hpwl_before: before,
            hpwl_after: circuit.total_hpwl(),
            mean_displacement: if movables == 0 { 0.0 } else { moved / movables as f64 },
            legalize: leg,
        }
    }

    /// Gauss–Seidel relaxation of the star-model quadratic objective.
    ///
    /// Each sweep recomputes net centroids, then moves every movable cell
    /// to the weighted average of (a) the centroids of its incident nets
    /// and (b) its pseudo-net anchors.
    fn gauss_seidel(&self, circuit: &mut Circuit, pseudo_nets: &[PseudoNet], sweeps: usize) {
        let n_cells = circuit.cell_count();
        let cell_nets = circuit.build_cell_nets();
        // Net weights: star model 1/(p−1).
        let net_weight: Vec<f64> = circuit
            .nets
            .iter()
            .map(|net| {
                let p = net.pin_count();
                if p >= 2 {
                    1.0 / (p - 1) as f64
                } else {
                    0.0
                }
            })
            .collect();
        let mut anchors: Vec<Vec<(Point, f64)>> = vec![Vec::new(); n_cells];
        for p in pseudo_nets {
            anchors[p.cell.index()].push((p.anchor, p.weight));
        }

        let mut centroids: Vec<Point> = vec![Point::default(); circuit.net_count()];
        for _ in 0..sweeps {
            // Recompute star centroids.
            for (ni, net) in circuit.nets.iter().enumerate() {
                let mut sx = circuit.positions[net.driver.index()].x;
                let mut sy = circuit.positions[net.driver.index()].y;
                for &s in &net.sinks {
                    sx += circuit.positions[s.index()].x;
                    sy += circuit.positions[s.index()].y;
                }
                let k = net.pin_count() as f64;
                centroids[ni] = Point::new(sx / k, sy / k);
            }
            // Move movable cells toward weighted centroid of pulls.
            for i in 0..n_cells {
                if !circuit.cells[i].kind.is_movable() {
                    continue;
                }
                let mut wx = 0.0;
                let mut wy = 0.0;
                let mut wsum = 0.0;
                for &net in &cell_nets[i] {
                    let w = net_weight[net.index()];
                    if w > 0.0 {
                        let c = centroids[net.index()];
                        wx += w * c.x;
                        wy += w * c.y;
                        wsum += w;
                    }
                }
                for &(a, w) in &anchors[i] {
                    wx += w * a.x;
                    wy += w * a.y;
                    wsum += w;
                }
                if wsum > 0.0 {
                    let target = circuit.die.clamp(Point::new(wx / wsum, wy / wsum));
                    circuit.positions[i] = target;
                }
            }
        }
    }

    /// Rank-based spreading: independently in x and y, blend each movable
    /// cell's coordinate toward the position its *rank* would occupy in a
    /// uniform distribution over the die span.
    fn rank_spread(&self, circuit: &mut Circuit, blend: f64) {
        if blend <= 0.0 {
            return;
        }
        let movable: Vec<usize> =
            (0..circuit.cell_count()).filter(|&i| circuit.cells[i].kind.is_movable()).collect();
        let n = movable.len();
        if n < 2 {
            return;
        }
        for axis in 0..2 {
            let coord = |p: Point| if axis == 0 { p.x } else { p.y };
            let (lo, hi) = if axis == 0 {
                (circuit.die.lo.x, circuit.die.hi.x)
            } else {
                (circuit.die.lo.y, circuit.die.hi.y)
            };
            let mut order: Vec<usize> = movable.clone();
            order.sort_by(|&a, &b| {
                coord(circuit.positions[a]).partial_cmp(&coord(circuit.positions[b])).unwrap()
            });
            let span = hi - lo;
            for (rank, &i) in order.iter().enumerate() {
                let uniform = lo + span * (rank as f64 + 0.5) / n as f64;
                let old = coord(circuit.positions[i]);
                let blended = (1.0 - blend) * old + blend * uniform;
                if axis == 0 {
                    circuit.positions[i].x = blended;
                } else {
                    circuit.positions[i].y = blended;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotary_netlist::{BenchmarkSuite, Generator, GeneratorConfig};

    fn toy() -> rotary_netlist::Circuit {
        Generator::new(GeneratorConfig {
            name: "toy".into(),
            combinational: 150,
            flip_flops: 30,
            nets: 160,
            primary_inputs: 10,
            primary_outputs: 10,
            die_side: 500.0,
            ..GeneratorConfig::default()
        })
        .generate(11)
    }

    #[test]
    fn placement_improves_hpwl_substantially() {
        let mut c = toy();
        let r = Placer::new(PlacerConfig::default()).place(&mut c);
        assert!(
            r.hpwl_after < 0.8 * r.hpwl_before,
            "expected ≥20% HPWL gain, got {} → {}",
            r.hpwl_before,
            r.hpwl_after
        );
    }

    #[test]
    fn placed_cells_stay_on_die() {
        let mut c = toy();
        Placer::new(PlacerConfig::default()).place(&mut c);
        c.validate().expect("placement keeps circuit valid");
    }

    #[test]
    fn placement_is_deterministic() {
        let mut a = toy();
        let mut b = toy();
        let p = Placer::new(PlacerConfig::default());
        p.place(&mut a);
        p.place(&mut b);
        assert_eq!(a.positions, b.positions);
    }

    #[test]
    fn incremental_with_pseudo_net_pulls_cell() {
        let mut c = toy();
        let p = Placer::new(PlacerConfig::default());
        p.place(&mut c);
        let ff = c.flip_flops()[0];
        let anchor = Point::new(20.0, 20.0);
        let before_d = c.position(ff).manhattan(anchor);
        let pulls = vec![PseudoNet::new(ff, anchor, 25.0)];
        p.place_incremental(&mut c, &pulls);
        let after_d = c.position(ff).manhattan(anchor);
        assert!(after_d < before_d, "pseudo-net should pull the flip-flop: {before_d} → {after_d}");
    }

    #[test]
    fn incremental_is_stable_without_pseudo_nets() {
        let mut c = toy();
        let p = Placer::new(PlacerConfig::default());
        p.place(&mut c);
        let snapshot = c.positions.clone();
        let r = p.place_incremental(&mut c, &[]);
        // Cells may settle slightly, but the mean displacement must be tiny
        // compared to the die (stability contract of Section IV).
        assert!(
            r.mean_displacement < 0.05 * c.die.width(),
            "mean displacement {} too large",
            r.mean_displacement
        );
        let max_move =
            snapshot.iter().zip(&c.positions).map(|(a, b)| a.manhattan(*b)).fold(0.0f64, f64::max);
        assert!(max_move < 0.5 * c.die.width());
    }

    #[test]
    fn incremental_faster_than_initial_on_suite() {
        // Contract from the paper: "incremental placement normally runs
        // considerably faster than the initial placement".
        let p = Placer::new(PlacerConfig::default());
        // Best-of-three on both sides to shield against scheduler noise.
        let mut c = BenchmarkSuite::S9234.circuit(3);
        let mut initial = std::time::Duration::MAX;
        for _ in 0..3 {
            let mut fresh = BenchmarkSuite::S9234.circuit(3);
            let t0 = std::time::Instant::now();
            p.place(&mut fresh);
            initial = initial.min(t0.elapsed());
            c = fresh;
        }
        let mut incremental = std::time::Duration::MAX;
        for _ in 0..3 {
            let mut warm = c.clone();
            let t1 = std::time::Instant::now();
            p.place_incremental(&mut warm, &[]);
            incremental = incremental.min(t1.elapsed());
        }
        assert!(incremental < initial, "{incremental:?} !< {initial:?}");
    }

    #[test]
    fn spread_blend_zero_is_identity() {
        let mut c = toy();
        let placer = Placer::new(PlacerConfig { spread_blend: 0.0, ..Default::default() });
        let before = c.positions.clone();
        placer.rank_spread(&mut c, 0.0);
        assert_eq!(before, c.positions);
    }
}
