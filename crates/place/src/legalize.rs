//! Abacus-style row legalization.
//!
//! Movable cells are snapped to standard-cell rows and packed within each
//! row without overlap, minimizing displacement greedily: rows are filled
//! bottom-to-top in y-order with a per-row width budget, then each row is
//! packed left-to-right at the cells' desired x, pushing back on overflow.

use rotary_netlist::geom::Point;
use rotary_netlist::Circuit;
use serde::{Deserialize, Serialize};

/// Summary of one legalization pass.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LegalizeReport {
    /// Number of cells moved into rows.
    pub cells_legalized: usize,
    /// Mean displacement caused by legalization, µm.
    pub mean_displacement: f64,
    /// Number of rows used.
    pub rows: usize,
}

/// Counts pairwise overlaps between movable cells (O(n²) — intended for
/// tests and assertions on small/medium circuits).
pub fn overlap_count(circuit: &Circuit) -> usize {
    let mut boxes = Vec::new();
    for (i, cell) in circuit.cells.iter().enumerate() {
        if cell.kind.is_movable() {
            let p = circuit.positions[i];
            boxes.push((
                p.x - 0.5 * cell.width,
                p.x + 0.5 * cell.width,
                p.y - 0.5 * cell.height,
                p.y + 0.5 * cell.height,
            ));
        }
    }
    let mut overlaps = 0;
    for a in 0..boxes.len() {
        for b in a + 1..boxes.len() {
            let (al, ar, ab, at) = boxes[a];
            let (bl, br, bb, bt) = boxes[b];
            if al < br - 1e-9 && bl < ar - 1e-9 && ab < bt - 1e-9 && bb < at - 1e-9 {
                overlaps += 1;
            }
        }
    }
    overlaps
}

/// Legalizes all movable cells of `circuit` onto non-overlapping row sites.
///
/// Guarantees (checked by tests):
/// * no two movable cells overlap afterwards,
/// * every cell footprint lies inside the die,
/// * displacement is locally minimized (cells keep their y-order across
///   rows and x-order within rows).
///
/// # Panics
///
/// Panics if the total movable cell width exceeds the total row capacity
/// (the die is physically too small for its content).
pub fn legalize(circuit: &mut Circuit) -> LegalizeReport {
    let movable: Vec<usize> =
        (0..circuit.cell_count()).filter(|&i| circuit.cells[i].kind.is_movable()).collect();
    if movable.is_empty() {
        return LegalizeReport::default();
    }
    let row_height = circuit.cells[movable[0]].height;
    let die = circuit.die;
    let rows = ((die.height() / row_height).floor() as usize).max(1);
    let row_capacity = die.width();
    let total_width: f64 = movable.iter().map(|&i| circuit.cells[i].width).sum();
    assert!(
        total_width <= rows as f64 * row_capacity + 1e-6,
        "die too small: {total_width} µm of cells into {rows} rows of {row_capacity} µm"
    );

    // Row assignment: sort by y and distribute by *cumulative width* so
    // every row receives ≈ total/rows µm of cells — no row can silently
    // absorb the remainder.
    let mut by_y = movable.clone();
    by_y.sort_by(|&a, &b| circuit.positions[a].y.partial_cmp(&circuit.positions[b].y).unwrap());
    let target = (total_width / rows as f64).max(1e-9);
    let mut row_members: Vec<Vec<usize>> = vec![Vec::new(); rows];
    let mut row_fill = vec![0.0f64; rows];
    let mut cum = 0.0f64;
    for &i in &by_y {
        let w = circuit.cells[i].width;
        let r = (((cum + 0.5 * w) / target).floor() as usize).min(rows - 1);
        cum += w;
        row_members[r].push(i);
        row_fill[r] += w;
    }
    // Cascade any over-capacity rows (possible when a single wide cell
    // straddles a boundary): a forward pass pushes trailing members up,
    // a backward pass pushes leading members down. Global feasibility is
    // guaranteed by the capacity assert above.
    for r in 0..rows - 1 {
        while row_fill[r] > row_capacity {
            let i = row_members[r].pop().expect("overfull row has members");
            row_members[r + 1].insert(0, i);
            row_fill[r + 1] += circuit.cells[i].width;
            row_fill[r] -= circuit.cells[i].width;
        }
    }
    for r in (1..rows).rev() {
        while row_fill[r] > row_capacity {
            let i = row_members[r].remove(0);
            row_members[r - 1].push(i);
            row_fill[r - 1] += circuit.cells[i].width;
            row_fill[r] -= circuit.cells[i].width;
        }
    }
    debug_assert!(row_fill.iter().all(|&f| f <= row_capacity + 1e-6));

    // Pack each row.
    let orig = circuit.positions.clone();
    let mut rows_used = 0usize;
    for (r, members) in row_members.iter_mut().enumerate() {
        if members.is_empty() {
            continue;
        }
        rows_used += 1;
        let y = die.lo.y + (r as f64 + 0.5) * row_height;
        members
            .sort_by(|&a, &b| circuit.positions[a].x.partial_cmp(&circuit.positions[b].x).unwrap());
        // Left-to-right pack at desired x.
        let mut lefts = Vec::with_capacity(members.len());
        let mut cur = die.lo.x;
        for &i in members.iter() {
            let w = circuit.cells[i].width;
            let desired = circuit.positions[i].x - 0.5 * w;
            let left = desired.max(cur);
            lefts.push(left);
            cur = left + w;
        }
        // Push back from the right edge on overflow.
        let mut limit = die.hi.x;
        for (k, &i) in members.iter().enumerate().rev() {
            let w = circuit.cells[i].width;
            if lefts[k] + w > limit {
                lefts[k] = limit - w;
            }
            limit = lefts[k];
        }
        for (k, &i) in members.iter().enumerate() {
            let w = circuit.cells[i].width;
            circuit.positions[i] = Point::new(lefts[k] + 0.5 * w, y);
        }
    }

    let moved: f64 = movable.iter().map(|&i| orig[i].manhattan(circuit.positions[i])).sum();
    LegalizeReport {
        cells_legalized: movable.len(),
        mean_displacement: moved / movable.len() as f64,
        rows: rows_used,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotary_netlist::{Generator, GeneratorConfig};

    fn toy(seed: u64) -> Circuit {
        Generator::new(GeneratorConfig {
            name: "leg".into(),
            combinational: 200,
            flip_flops: 40,
            nets: 210,
            primary_inputs: 8,
            primary_outputs: 8,
            die_side: 600.0,
            ..GeneratorConfig::default()
        })
        .generate(seed)
    }

    #[test]
    fn removes_all_overlaps() {
        let mut c = toy(1);
        // Random initial placement has overlaps with near-certainty.
        legalize(&mut c);
        assert_eq!(overlap_count(&c), 0);
    }

    #[test]
    fn cells_stay_on_die_with_full_footprint() {
        let mut c = toy(2);
        legalize(&mut c);
        for (i, cell) in c.cells.iter().enumerate() {
            if cell.kind.is_movable() {
                let p = c.positions[i];
                assert!(p.x - 0.5 * cell.width >= c.die.lo.x - 1e-9);
                assert!(p.x + 0.5 * cell.width <= c.die.hi.x + 1e-9);
                assert!(p.y - 0.5 * cell.height >= c.die.lo.y - 1e-9);
                assert!(p.y + 0.5 * cell.height <= c.die.hi.y + 1e-9);
            }
        }
    }

    #[test]
    fn legalization_is_idempotent_like() {
        // A second pass on already-legal cells should barely move anything.
        let mut c = toy(3);
        legalize(&mut c);
        let r2 = legalize(&mut c);
        assert!(
            r2.mean_displacement < 5.0, // within half a row height
            "second pass displaced {} µm on average",
            r2.mean_displacement
        );
        assert_eq!(overlap_count(&c), 0);
    }

    #[test]
    fn clustered_cells_get_spread_into_rows() {
        let mut c = toy(4);
        // Pile everything at the center.
        let center = c.die.center();
        for i in 0..c.cell_count() {
            if c.cells[i].kind.is_movable() {
                c.positions[i] = center;
            }
        }
        let r = legalize(&mut c);
        assert_eq!(overlap_count(&c), 0);
        assert!(r.rows > 1, "a pile must spread over multiple rows");
    }

    #[test]
    fn report_counts_movables_only() {
        let mut c = toy(5);
        let movable = c.cells.iter().filter(|x| x.kind.is_movable()).count();
        let r = legalize(&mut c);
        assert_eq!(r.cells_legalized, movable);
    }

    #[test]
    fn empty_circuit_is_noop() {
        let mut c = Circuit::new("empty", rotary_netlist::geom::Rect::from_size(10.0, 10.0));
        let r = legalize(&mut c);
        assert_eq!(r.cells_legalized, 0);
    }
}
