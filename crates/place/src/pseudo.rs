//! Pseudo-nets: artificial anchors that pull cells toward target points.
//!
//! The paper's stage 5 inserts "a pseudo net between each flip-flop and its
//! ring" so that stage 6's incremental placement draws flip-flops toward
//! their assigned rings without changing the placer itself (Section IV).
//! A pseudo-net behaves exactly like a two-pin net whose second pin is a
//! fixed point, with a tunable weight.

use rotary_netlist::geom::Point;
use rotary_netlist::CellId;
use serde::{Deserialize, Serialize};

/// A weighted artificial two-pin net from `cell` to the fixed `anchor`.
///
/// # Examples
///
/// ```
/// use rotary_netlist::{geom::Point, CellId};
/// use rotary_place::PseudoNet;
///
/// let p = PseudoNet::new(CellId(3), Point::new(100.0, 250.0), 2.0);
/// assert_eq!(p.weight, 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PseudoNet {
    /// The movable cell being pulled (a flip-flop in the paper's flow).
    pub cell: CellId,
    /// Fixed attraction point (the flip-flop's tapping point on its ring).
    pub anchor: Point,
    /// Net weight relative to a unit two-pin signal net.
    pub weight: f64,
}

impl PseudoNet {
    /// Creates a pseudo-net.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not positive and finite.
    pub fn new(cell: CellId, anchor: Point, weight: f64) -> Self {
        assert!(weight > 0.0 && weight.is_finite(), "pseudo-net weight must be positive");
        Self { cell, anchor, weight }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let p = PseudoNet::new(CellId(0), Point::new(1.0, 2.0), 0.5);
        assert_eq!(p.cell, CellId(0));
        assert_eq!(p.anchor, Point::new(1.0, 2.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_weight() {
        let _ = PseudoNet::new(CellId(0), Point::new(0.0, 0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nan_weight() {
        let _ = PseudoNet::new(CellId(0), Point::new(0.0, 0.0), f64::NAN);
    }
}
