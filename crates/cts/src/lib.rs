//! Conventional zero-skew clock-tree synthesis — the baseline the paper
//! compares against.
//!
//! Table II of the paper reports `PL`, the **average source–sink path
//! length** in conventional clock trees built with the classic zero-skew
//! methods \[5\], \[7\]; the rotary flow's average flip-flop distance (AFD) is
//! then shown to be far smaller. This crate builds such a tree:
//! a recursive-bisection topology (Edahiro-style clustering) with
//! Elmore-balanced merge points (the deferred-merge idea of \[6\]), including
//! wire snaking when one subtree is intrinsically faster.
//!
//! The tree also provides the conventional-clock capacitance used as a
//! power reference.
//!
//! # Examples
//!
//! ```
//! use rotary_netlist::BenchmarkSuite;
//! use rotary_cts::ClockTree;
//! use rotary_timing::Technology;
//!
//! let circuit = BenchmarkSuite::S9234.circuit(1);
//! let tree = ClockTree::build(&circuit, &Technology::default());
//! assert!(tree.average_path_length() > 0.0);
//! assert!(tree.skew() < 1e-6, "zero-skew by construction");
//! ```

use rotary_netlist::geom::Point;
use rotary_netlist::{CellKind, Circuit};
use rotary_timing::Technology;
use serde::{Deserialize, Serialize};

/// A node of the clock tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct TreeNode {
    point: Point,
    /// Children as `(node index, wire length to child)`; wire length may
    /// exceed the Manhattan distance when snaking was required.
    children: Vec<(usize, f64)>,
    /// Elmore delay from this node down to every sink of its subtree
    /// (equal for all sinks — zero skew).
    subtree_delay: f64,
    /// Total capacitance of the subtree (wire + sink pins), pF.
    subtree_cap: f64,
}

/// A synthesized zero-skew clock tree over the flip-flops of a circuit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClockTree {
    nodes: Vec<TreeNode>,
    root: usize,
    sink_count: usize,
}

impl ClockTree {
    /// Builds a zero-skew tree over all flip-flops of `circuit` at their
    /// current positions.
    ///
    /// # Panics
    ///
    /// Panics if the circuit has no flip-flops.
    pub fn build(circuit: &Circuit, tech: &Technology) -> Self {
        let sinks: Vec<(Point, f64)> = circuit
            .cells
            .iter()
            .enumerate()
            .filter(|(_, c)| c.kind == CellKind::FlipFlop)
            .map(|(i, c)| (circuit.positions[i], c.input_cap))
            .collect();
        assert!(!sinks.is_empty(), "cannot build a clock tree without flip-flops");
        Self::build_over(&sinks, tech)
    }

    /// Builds a zero-skew tree over explicit `(position, pin capacitance)`
    /// sinks.
    ///
    /// # Panics
    ///
    /// Panics if `sinks` is empty.
    pub fn build_over(sinks: &[(Point, f64)], tech: &Technology) -> Self {
        assert!(!sinks.is_empty(), "cannot build a clock tree without sinks");
        let mut nodes: Vec<TreeNode> = sinks
            .iter()
            .map(|&(point, cap)| TreeNode {
                point,
                children: Vec::new(),
                subtree_delay: 0.0,
                subtree_cap: cap,
            })
            .collect();
        let leaf_ids: Vec<usize> = (0..nodes.len()).collect();
        let root = Self::recurse(&mut nodes, leaf_ids, tech);
        Self { nodes, root, sink_count: sinks.len() }
    }

    /// Recursive bisection: split the sink set by the median of the wider
    /// axis, build both halves, then merge with a zero-skew tapping point.
    fn recurse(nodes: &mut Vec<TreeNode>, mut ids: Vec<usize>, tech: &Technology) -> usize {
        if ids.len() == 1 {
            return ids[0];
        }
        // Choose the split axis by bounding-box aspect.
        let (mut min_x, mut max_x, mut min_y, mut max_y) =
            (f64::INFINITY, f64::NEG_INFINITY, f64::INFINITY, f64::NEG_INFINITY);
        for &i in &ids {
            let p = nodes[i].point;
            min_x = min_x.min(p.x);
            max_x = max_x.max(p.x);
            min_y = min_y.min(p.y);
            max_y = max_y.max(p.y);
        }
        let split_x = (max_x - min_x) >= (max_y - min_y);
        ids.sort_by(|&a, &b| {
            let (pa, pb) = (nodes[a].point, nodes[b].point);
            if split_x {
                pa.x.partial_cmp(&pb.x).unwrap()
            } else {
                pa.y.partial_cmp(&pb.y).unwrap()
            }
        });
        let right = ids.split_off(ids.len() / 2);
        let a = Self::recurse(nodes, ids, tech);
        let b = Self::recurse(nodes, right, tech);
        Self::merge(nodes, a, b, tech)
    }

    /// Zero-skew merge of subtrees `a` and `b` (DME-style on the direct
    /// path). Solves for the tap `x` along the `a → b` path such that the
    /// two sides' Elmore delays match; snakes wire on the fast side when
    /// the balance point falls outside the segment.
    fn merge(nodes: &mut Vec<TreeNode>, a: usize, b: usize, tech: &Technology) -> usize {
        let (pa, da, ca) = (nodes[a].point, nodes[a].subtree_delay, nodes[a].subtree_cap);
        let (pb, db, cb) = (nodes[b].point, nodes[b].subtree_delay, nodes[b].subtree_cap);
        let dist = pa.manhattan(pb);
        let (r, c) = (tech.wire_res, tech.wire_cap);
        // delay_a(x) = da + r·x·(c·x/2 + ca); delay_b(x) with L−x symmetric.
        let delay_a = |x: f64| da + r * x * (0.5 * c * x + ca);
        let delay_b = |y: f64| db + r * y * (0.5 * c * y + cb);

        let (xa, la, lb);
        if dist > 0.0 && delay_a(0.0) <= delay_b(dist) && delay_a(dist) >= delay_b(0.0) {
            // Balance point inside the segment: bisection (both sides are
            // monotone in x).
            let (mut lo, mut hi) = (0.0, dist);
            for _ in 0..80 {
                let mid = 0.5 * (lo + hi);
                if delay_a(mid) < delay_b(dist - mid) {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            xa = 0.5 * (lo + hi);
            la = xa;
            lb = dist - xa;
        } else if delay_a(0.0) > delay_b(dist) {
            // a is already slower even tapping at a: tap at a, snake b side.
            xa = 0.0;
            la = 0.0;
            lb = Self::snake_length(da - db, cb, dist, tech);
        } else {
            // b slower: tap at b, snake a side.
            xa = dist;
            la = Self::snake_length(db - da, ca, dist, tech);
            lb = 0.0;
        }
        let t = if dist > 0.0 { xa / dist } else { 0.0 };
        // Tap point on the L-shaped route (interpolate x first, then y).
        let point = l_path_point(pa, pb, t);
        let delay = delay_a(la.max(xa.min(dist)));
        // Use the *achieved* equalized delay: evaluate through the a side.
        let delay = if la > 0.0 && xa == dist { da + r * la * (0.5 * c * la + ca) } else { delay };
        let cap = ca + cb + c * (la + lb);
        let id = nodes.len();
        nodes.push(TreeNode {
            point,
            children: vec![(a, la), (b, lb)],
            subtree_delay: delay,
            subtree_cap: cap,
        });
        id
    }

    /// Wire length `l ≥ dist` such that `r·l·(c·l/2 + cap_fast) = slow_lead`
    /// — the snaking needed for the fast subtree to lose `slow_lead` ns.
    fn snake_length(slow_lead: f64, cap_fast: f64, dist: f64, tech: &Technology) -> f64 {
        let (r, c) = (tech.wire_res, tech.wire_cap);
        let a = 0.5 * r * c;
        let b = r * cap_fast;
        let disc = b * b + 4.0 * a * slow_lead.max(0.0);
        let l = (-b + disc.sqrt()) / (2.0 * a);
        l.max(dist)
    }

    /// Number of clock sinks.
    pub fn sink_count(&self) -> usize {
        self.sink_count
    }

    /// Total tree wirelength, µm (snaked lengths included).
    pub fn total_wirelength(&self) -> f64 {
        self.nodes.iter().flat_map(|n| n.children.iter().map(|&(_, l)| l)).sum()
    }

    /// Total tree capacitance (wire + sink pins), pF — the conventional
    /// clock network's switched load.
    pub fn total_cap(&self) -> f64 {
        self.nodes[self.root].subtree_cap
    }

    /// Per-sink source–sink *path lengths*, µm, indexed like the sink list
    /// the tree was built from.
    pub fn sink_path_lengths(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.sink_count];
        let mut stack = vec![(self.root, 0.0)];
        while let Some((n, acc)) = stack.pop() {
            if self.nodes[n].children.is_empty() {
                out[n] = acc; // leaves are nodes 0..sink_count in input order
            }
            for &(child, l) in &self.nodes[n].children {
                stack.push((child, acc + l));
            }
        }
        out
    }

    /// Average source–sink path length — the `PL` column of Table II.
    pub fn average_path_length(&self) -> f64 {
        let paths = self.sink_path_lengths();
        paths.iter().sum::<f64>() / paths.len() as f64
    }

    /// Per-sink Elmore delays from the root, indexed like the sink list.
    pub fn sink_delays(&self, tech: &Technology) -> Vec<f64> {
        // Downstream cap below each node is stored; walk with accumulated
        // delay.
        let mut out = vec![0.0; self.sink_count];
        let mut stack = vec![(self.root, 0.0)];
        while let Some((n, acc)) = stack.pop() {
            if self.nodes[n].children.is_empty() {
                out[n] = acc;
            }
            for &(child, l) in &self.nodes[n].children {
                let d =
                    tech.wire_res * l * (0.5 * tech.wire_cap * l + self.nodes[child].subtree_cap);
                stack.push((child, acc + d));
            }
        }
        out
    }

    /// Worst-case skew of the tree (max − min sink delay), ns. Zero up to
    /// numerical tolerance by construction.
    pub fn skew(&self) -> f64 {
        let tech = Technology::default();
        let d = self.sink_delays(&tech);
        let max = d.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = d.iter().cloned().fold(f64::INFINITY, f64::min);
        max - min
    }

    /// Number of internal edges (one per non-root node); edge `k` connects
    /// node `k` to its parent. Used to size perturbation vectors for
    /// [`Self::sink_delays_perturbed`].
    pub fn edge_count(&self) -> usize {
        self.nodes.len().saturating_sub(1)
    }

    /// Sink delays under *perturbed* interconnect: `scale[k] = (r_mul,
    /// c_mul)` multiplies the wire resistance/capacitance of the edge above
    /// node `k`. Subtree capacitances are re-accumulated bottom-up, so a
    /// capacitance change propagates into every upstream Elmore term —
    /// the mechanism by which process variation turns into skew in a
    /// conventional tree (the paper's motivation, ref. \[3\]).
    ///
    /// # Panics
    ///
    /// Panics if `scale.len() != self.edge_count() + 1` is violated in
    /// debug builds (index `root` is unused).
    pub fn sink_delays_perturbed(&self, tech: &Technology, scale: &[(f64, f64)]) -> Vec<f64> {
        debug_assert!(scale.len() >= self.nodes.len().saturating_sub(0));
        // Bottom-up: perturbed subtree capacitance per node. Nodes are
        // created children-before-parents, so a forward scan suffices.
        let mut cap = vec![0.0f64; self.nodes.len()];
        for (n, node) in self.nodes.iter().enumerate() {
            let mut c = if node.children.is_empty() {
                node.subtree_cap // leaf: pin capacitance only
            } else {
                0.0
            };
            for &(child, l) in &node.children {
                let (_, c_mul) = scale[child];
                c += cap[child] + tech.wire_cap * c_mul * l;
            }
            cap[n] = c;
        }
        // Top-down: accumulate Elmore delay with perturbed r and c.
        let mut out = vec![0.0; self.sink_count];
        let mut stack = vec![(self.root, 0.0)];
        while let Some((n, acc)) = stack.pop() {
            if self.nodes[n].children.is_empty() {
                out[n] = acc;
            }
            for &(child, l) in &self.nodes[n].children {
                let (r_mul, c_mul) = scale[child];
                let d = tech.wire_res * r_mul * l * (0.5 * tech.wire_cap * c_mul * l + cap[child]);
                stack.push((child, acc + d));
            }
        }
        out
    }
}

/// Point at parameter `t ∈ [0,1]` along the L-shaped (x-then-y) route from
/// `a` to `b`, measured in Manhattan arc length.
fn l_path_point(a: Point, b: Point, t: f64) -> Point {
    let dx = (b.x - a.x).abs();
    let dy = (b.y - a.y).abs();
    let total = dx + dy;
    if total == 0.0 {
        return a;
    }
    let s = t.clamp(0.0, 1.0) * total;
    if s <= dx {
        Point::new(a.x + (b.x - a.x).signum() * s, a.y)
    } else {
        Point::new(b.x, a.y + (b.y - a.y).signum() * (s - dx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_sinks(n: usize, pitch: f64) -> Vec<(Point, f64)> {
        (0..n)
            .flat_map(|i| {
                (0..n).map(move |j| (Point::new(i as f64 * pitch, j as f64 * pitch), 0.01))
            })
            .collect()
    }

    #[test]
    fn two_symmetric_sinks_meet_in_the_middle() {
        let tech = Technology::default();
        let sinks = vec![(Point::new(0.0, 0.0), 0.01), (Point::new(100.0, 0.0), 0.01)];
        let tree = ClockTree::build_over(&sinks, &tech);
        assert!(tree.skew() < 1e-9);
        let paths = tree.sink_path_lengths();
        assert!((paths[0] - 50.0).abs() < 1e-6, "{paths:?}");
        assert!((paths[1] - 50.0).abs() < 1e-6);
    }

    #[test]
    fn asymmetric_caps_shift_the_tap_point() {
        let tech = Technology::default();
        // The heavier sink is slower per µm: tap point moves toward it.
        let sinks = vec![(Point::new(0.0, 0.0), 0.10), (Point::new(100.0, 0.0), 0.001)];
        let tree = ClockTree::build_over(&sinks, &tech);
        assert!(tree.skew() < 1e-9);
        let paths = tree.sink_path_lengths();
        assert!(paths[0] < paths[1], "heavy sink gets the shorter wire: {paths:?}");
    }

    #[test]
    fn grid_of_sinks_is_zero_skew() {
        let tech = Technology::default();
        let tree = ClockTree::build_over(&grid_sinks(5, 100.0), &tech);
        assert_eq!(tree.sink_count(), 25);
        assert!(tree.skew() < 1e-7, "skew {}", tree.skew());
    }

    #[test]
    fn path_lengths_scale_with_die() {
        let tech = Technology::default();
        let small = ClockTree::build_over(&grid_sinks(4, 50.0), &tech);
        let large = ClockTree::build_over(&grid_sinks(4, 200.0), &tech);
        assert!(large.average_path_length() > 2.0 * small.average_path_length());
    }

    #[test]
    fn wirelength_at_least_spanning_scale() {
        let tech = Technology::default();
        let tree = ClockTree::build_over(&grid_sinks(3, 100.0), &tech);
        // 9 sinks spaced 100 µm apart need at least ~800 µm of wire.
        assert!(tree.total_wirelength() >= 800.0 - 1e-6);
        assert!(tree.total_cap() > 9.0 * 0.01);
    }

    #[test]
    fn single_sink_tree_is_trivial() {
        let tech = Technology::default();
        let tree = ClockTree::build_over(&[(Point::new(5.0, 5.0), 0.02)], &tech);
        assert_eq!(tree.sink_count(), 1);
        assert_eq!(tree.total_wirelength(), 0.0);
        assert_eq!(tree.average_path_length(), 0.0);
        assert!((tree.total_cap() - 0.02).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "without sinks")]
    fn empty_sinks_panics() {
        let _ = ClockTree::build_over(&[], &Technology::default());
    }

    #[test]
    fn unit_perturbation_reproduces_nominal_delays() {
        let tech = Technology::default();
        let tree = ClockTree::build_over(&grid_sinks(4, 120.0), &tech);
        let n_nodes = tree.edge_count() + 1;
        let nominal = tree.sink_delays(&tech);
        let same = tree.sink_delays_perturbed(&tech, &vec![(1.0, 1.0); n_nodes]);
        for (a, b) in nominal.iter().zip(&same) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn asymmetric_perturbation_creates_skew() {
        let tech = Technology::default();
        let tree = ClockTree::build_over(&grid_sinks(4, 120.0), &tech);
        let n_nodes = tree.edge_count() + 1;
        let mut scale = vec![(1.0, 1.0); n_nodes];
        // Slow down the first half of the edges by 20%.
        for s in scale.iter_mut().take(n_nodes / 2) {
            *s = (1.2, 1.1);
        }
        let d = tree.sink_delays_perturbed(&tech, &scale);
        let skew = d.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - d.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(skew > 1e-6, "variation must break the zero-skew balance");
    }

    #[test]
    fn coincident_sinks_are_handled() {
        let tech = Technology::default();
        let p = Point::new(10.0, 10.0);
        let tree = ClockTree::build_over(&[(p, 0.01), (p, 0.01), (p, 0.02)], &tech);
        assert!(tree.skew() < 1e-9);
        assert_eq!(tree.total_wirelength(), 0.0);
    }
}
