//! Planar geometry primitives used throughout the workspace.
//!
//! All coordinates are in micrometers, matching the units the paper reports
//! (wirelength in µm, capacitance in pF, power in mW).

use serde::{Deserialize, Serialize};

/// A point in the placement plane, in micrometers.
///
/// # Examples
///
/// ```
/// use rotary_netlist::geom::Point;
///
/// let a = Point::new(0.0, 0.0);
/// let b = Point::new(3.0, 4.0);
/// assert_eq!(a.manhattan(b), 7.0);
/// assert!((a.euclidean(b) - 5.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate in µm.
    pub x: f64,
    /// Vertical coordinate in µm.
    pub y: f64,
}

impl Point {
    /// Creates a point at `(x, y)`.
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Manhattan (rectilinear) distance to `other`.
    ///
    /// This is the metric used for all wirelength and tapping-cost
    /// computations in the paper.
    pub fn manhattan(self, other: Point) -> f64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Euclidean distance to `other`.
    pub fn euclidean(self, other: Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }

    /// Component-wise midpoint between `self` and `other`.
    pub fn midpoint(self, other: Point) -> Point {
        Point::new(0.5 * (self.x + other.x), 0.5 * (self.y + other.y))
    }
}

impl std::fmt::Display for Point {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

/// An axis-aligned rectangle, stored as lower-left and upper-right corners.
///
/// # Examples
///
/// ```
/// use rotary_netlist::geom::{Point, Rect};
///
/// let r = Rect::new(Point::new(0.0, 0.0), Point::new(10.0, 4.0));
/// assert_eq!(r.width(), 10.0);
/// assert_eq!(r.height(), 4.0);
/// assert_eq!(r.area(), 40.0);
/// assert!(r.contains(Point::new(5.0, 2.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Rect {
    /// Lower-left corner.
    pub lo: Point,
    /// Upper-right corner.
    pub hi: Point,
}

impl Rect {
    /// Creates a rectangle from two corners.
    ///
    /// # Panics
    ///
    /// Panics if `lo` is not component-wise `<=` `hi`.
    pub fn new(lo: Point, hi: Point) -> Self {
        assert!(lo.x <= hi.x && lo.y <= hi.y, "rectangle corners out of order: lo={lo}, hi={hi}");
        Self { lo, hi }
    }

    /// Creates a rectangle from the origin with the given width and height.
    pub fn from_size(width: f64, height: f64) -> Self {
        Self::new(Point::new(0.0, 0.0), Point::new(width, height))
    }

    /// Width (x extent) of the rectangle.
    pub fn width(&self) -> f64 {
        self.hi.x - self.lo.x
    }

    /// Height (y extent) of the rectangle.
    pub fn height(&self) -> f64 {
        self.hi.y - self.lo.y
    }

    /// Area of the rectangle.
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Geometric center.
    pub fn center(&self) -> Point {
        self.lo.midpoint(self.hi)
    }

    /// Whether `p` lies inside the rectangle (boundary inclusive).
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.lo.x && p.x <= self.hi.x && p.y >= self.lo.y && p.y <= self.hi.y
    }

    /// Clamps `p` to the nearest point inside the rectangle.
    pub fn clamp(&self, p: Point) -> Point {
        Point::new(p.x.clamp(self.lo.x, self.hi.x), p.y.clamp(self.lo.y, self.hi.y))
    }

    /// Half-perimeter of the rectangle; for a net bounding box this is the
    /// standard HPWL contribution.
    pub fn half_perimeter(&self) -> f64 {
        self.width() + self.height()
    }
}

/// Incremental bounding-box accumulator over a stream of points.
///
/// Used to compute half-perimeter wirelength (HPWL) of nets.
///
/// # Examples
///
/// ```
/// use rotary_netlist::geom::{BoundingBox, Point};
///
/// let mut bb = BoundingBox::new();
/// bb.add(Point::new(1.0, 5.0));
/// bb.add(Point::new(4.0, 2.0));
/// assert_eq!(bb.half_perimeter(), 3.0 + 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundingBox {
    min_x: f64,
    max_x: f64,
    min_y: f64,
    max_y: f64,
    count: usize,
}

impl Default for BoundingBox {
    fn default() -> Self {
        Self::new()
    }
}

impl BoundingBox {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            min_x: f64::INFINITY,
            max_x: f64::NEG_INFINITY,
            min_y: f64::INFINITY,
            max_y: f64::NEG_INFINITY,
            count: 0,
        }
    }

    /// Adds a point to the box.
    pub fn add(&mut self, p: Point) {
        self.min_x = self.min_x.min(p.x);
        self.max_x = self.max_x.max(p.x);
        self.min_y = self.min_y.min(p.y);
        self.max_y = self.max_y.max(p.y);
        self.count += 1;
    }

    /// Number of points accumulated so far.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether no points have been added.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Half-perimeter of the accumulated box; `0.0` when fewer than two
    /// points have been added.
    pub fn half_perimeter(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.max_x - self.min_x) + (self.max_y - self.min_y)
        }
    }

    /// The accumulated box as a [`Rect`], or `None` when empty.
    pub fn to_rect(&self) -> Option<Rect> {
        if self.is_empty() {
            None
        } else {
            Some(Rect::new(Point::new(self.min_x, self.min_y), Point::new(self.max_x, self.max_y)))
        }
    }
}

impl FromIterator<Point> for BoundingBox {
    fn from_iter<I: IntoIterator<Item = Point>>(iter: I) -> Self {
        let mut bb = BoundingBox::new();
        for p in iter {
            bb.add(p);
        }
        bb
    }
}

impl Extend<Point> for BoundingBox {
    fn extend<I: IntoIterator<Item = Point>>(&mut self, iter: I) {
        for p in iter {
            self.add(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_distance_is_symmetric() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(-3.0, 7.0);
        assert_eq!(a.manhattan(b), b.manhattan(a));
        assert_eq!(a.manhattan(b), 4.0 + 5.0);
    }

    #[test]
    fn manhattan_distance_to_self_is_zero() {
        let a = Point::new(3.25, -8.5);
        assert_eq!(a.manhattan(a), 0.0);
    }

    #[test]
    fn euclidean_345() {
        assert!((Point::new(0.0, 0.0).euclidean(Point::new(3.0, 4.0)) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn midpoint_of_opposite_corners_is_center() {
        let r = Rect::from_size(8.0, 2.0);
        assert_eq!(r.center(), Point::new(4.0, 1.0));
        assert_eq!(r.lo.midpoint(r.hi), r.center());
    }

    #[test]
    fn rect_contains_and_clamp() {
        let r = Rect::from_size(10.0, 10.0);
        assert!(r.contains(Point::new(0.0, 0.0)));
        assert!(r.contains(Point::new(10.0, 10.0)));
        assert!(!r.contains(Point::new(10.1, 5.0)));
        assert_eq!(r.clamp(Point::new(-5.0, 20.0)), Point::new(0.0, 10.0));
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn rect_rejects_inverted_corners() {
        let _ = Rect::new(Point::new(1.0, 0.0), Point::new(0.0, 5.0));
    }

    #[test]
    fn bounding_box_from_iter() {
        let bb: BoundingBox =
            [(0.0, 0.0), (2.0, 8.0), (5.0, 3.0)].into_iter().map(Point::from).collect();
        assert_eq!(bb.len(), 3);
        assert_eq!(bb.half_perimeter(), 5.0 + 8.0);
        let r = bb.to_rect().expect("non-empty");
        assert_eq!(r.hi, Point::new(5.0, 8.0));
    }

    #[test]
    fn empty_bounding_box() {
        let bb = BoundingBox::new();
        assert!(bb.is_empty());
        assert_eq!(bb.half_perimeter(), 0.0);
        assert!(bb.to_rect().is_none());
    }

    #[test]
    fn single_point_box_has_zero_hpwl() {
        let mut bb = BoundingBox::new();
        bb.add(Point::new(4.0, 4.0));
        assert_eq!(bb.half_perimeter(), 0.0);
    }
}
