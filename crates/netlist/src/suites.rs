//! The five ISCAS89 benchmark configurations from Table II of the paper.
//!
//! | Circuit | #Cells | #Flip-flops | #Nets | #Rings |
//! |---------|--------|-------------|-------|--------|
//! | s9234   | 1510   | 135         | 1471  | 16     |
//! | s5378   | 1112   | 164         | 1063  | 25     |
//! | s15850  | 3549   | 566         | 3462  | 36     |
//! | s38417  | 11651  | 1463        | 11545 | 49     |
//! | s35932  | 17005  | 1728        | 16685 | 49     |
//!
//! The cell/FF/net counts are reproduced exactly; connectivity is synthetic
//! (see [`crate::generator`]). Die sides are calibrated so that conventional
//! clock-tree source–sink path lengths land in the same few-thousand-µm
//! regime the paper reports (Table II, `PL` column).

use crate::generator::{Generator, GeneratorConfig};
use crate::Circuit;
use serde::{Deserialize, Serialize};

/// One of the five ISCAS89-derived benchmark suites used in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BenchmarkSuite {
    /// s9234: 1510 cells, 135 FFs, 1471 nets, 16 rings (4×4).
    S9234,
    /// s5378: 1112 cells, 164 FFs, 1063 nets, 25 rings (5×5).
    S5378,
    /// s15850: 3549 cells, 566 FFs, 3462 nets, 36 rings (6×6).
    S15850,
    /// s38417: 11651 cells, 1463 FFs, 11545 nets, 49 rings (7×7).
    S38417,
    /// s35932: 17005 cells, 1728 FFs, 16685 nets, 49 rings (7×7).
    S35932,
}

impl BenchmarkSuite {
    /// All five suites in the order the paper's tables list them.
    pub const ALL: [BenchmarkSuite; 5] = [
        BenchmarkSuite::S9234,
        BenchmarkSuite::S5378,
        BenchmarkSuite::S15850,
        BenchmarkSuite::S38417,
        BenchmarkSuite::S35932,
    ];

    /// The circuit name as printed in the paper.
    pub fn name(self) -> &'static str {
        match self {
            BenchmarkSuite::S9234 => "s9234",
            BenchmarkSuite::S5378 => "s5378",
            BenchmarkSuite::S15850 => "s15850",
            BenchmarkSuite::S38417 => "s38417",
            BenchmarkSuite::S35932 => "s35932",
        }
    }

    /// Parses a paper circuit name (e.g. `"s9234"`).
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|s| s.name() == name)
    }

    /// Number of rotary rings the paper allocates for this suite
    /// (Table II, `# Rings`; always a perfect square — the array is
    /// `k × k` as in Fig. 1(b)).
    pub fn ring_count(self) -> usize {
        match self {
            BenchmarkSuite::S9234 => 16,
            BenchmarkSuite::S5378 => 25,
            BenchmarkSuite::S15850 => 36,
            BenchmarkSuite::S38417 | BenchmarkSuite::S35932 => 49,
        }
    }

    /// Side length of the square ring array (`sqrt(ring_count)`).
    pub fn ring_grid(self) -> usize {
        (self.ring_count() as f64).sqrt().round() as usize
    }

    /// The generator configuration matching Table II.
    pub fn config(self) -> GeneratorConfig {
        let (comb, ffs, nets, die, pis, pos) = match self {
            BenchmarkSuite::S9234 => (1510, 135, 1471, 1250.0, 36, 39),
            BenchmarkSuite::S5378 => (1112, 164, 1063, 1350.0, 35, 49),
            BenchmarkSuite::S15850 => (3549, 566, 3462, 2550.0, 77, 150),
            BenchmarkSuite::S38417 => (11651, 1463, 11545, 4100.0, 28, 106),
            BenchmarkSuite::S35932 => (17005, 1728, 16685, 4100.0, 35, 320),
        };
        GeneratorConfig {
            name: self.name().into(),
            combinational: comb,
            flip_flops: ffs,
            nets,
            primary_inputs: pis,
            primary_outputs: pos,
            die_side: die,
            levels: 6,
            clusters: (comb as f64).sqrt() as usize / 3 + 4,
            ..GeneratorConfig::default()
        }
    }

    /// Generates the suite's circuit with the given seed.
    ///
    /// # Examples
    ///
    /// ```
    /// use rotary_netlist::BenchmarkSuite;
    ///
    /// let c = BenchmarkSuite::S15850.circuit(0);
    /// assert_eq!(c.name, "s15850");
    /// assert_eq!(c.flip_flop_count(), 566);
    /// ```
    pub fn circuit(self, seed: u64) -> Circuit {
        Generator::new(self.config()).generate(seed)
    }
}

impl std::fmt::Display for BenchmarkSuite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::CircuitStats;

    #[test]
    fn table2_counts_exact() {
        let expect = [
            (BenchmarkSuite::S9234, 1510, 135, 1471),
            (BenchmarkSuite::S5378, 1112, 164, 1063),
            (BenchmarkSuite::S15850, 3549, 566, 3462),
        ];
        for (suite, cells, ffs, nets) in expect {
            let c = suite.circuit(1);
            let s = CircuitStats::of(&c);
            assert_eq!((s.cells, s.flip_flops, s.nets), (cells, ffs, nets), "{suite}");
        }
    }

    #[test]
    fn ring_grids_are_square() {
        for s in BenchmarkSuite::ALL {
            assert_eq!(s.ring_grid() * s.ring_grid(), s.ring_count(), "{s}");
        }
    }

    #[test]
    fn names_roundtrip() {
        for s in BenchmarkSuite::ALL {
            assert_eq!(BenchmarkSuite::from_name(s.name()), Some(s));
        }
        assert_eq!(BenchmarkSuite::from_name("s13207"), None);
    }

    #[test]
    fn suite_circuits_validate() {
        // Only the two small ones here to keep unit tests fast; the large
        // suites are covered by integration tests.
        for s in [BenchmarkSuite::S9234, BenchmarkSuite::S5378] {
            s.circuit(0).validate().expect("valid");
        }
    }
}
