//! Seeded synthetic sequential-netlist generator.
//!
//! The ISCAS89 sources and the SIS synthesis flow used by the paper are not
//! available in this environment, so benchmark circuits are *simulated*: we
//! generate random levelized combinational DAGs bounded by flip-flops whose
//! cell/flip-flop/net counts match Table II of the paper exactly, with a
//! cluster structure that gives the placer realistic locality to exploit.
//!
//! Determinism: the generator is a pure function of its [`GeneratorConfig`]
//! (including the seed), so every experiment in this repository is
//! reproducible bit-for-bit.

use crate::circuit::{Cell, CellId, CellKind, Circuit, Net};
use crate::geom::{Point, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a synthetic benchmark circuit.
///
/// # Examples
///
/// ```
/// use rotary_netlist::{Generator, GeneratorConfig};
///
/// let cfg = GeneratorConfig {
///     name: "toy".into(),
///     combinational: 60,
///     flip_flops: 12,
///     nets: 64,
///     ..GeneratorConfig::default()
/// };
/// let circuit = Generator::new(cfg).generate(1);
/// assert_eq!(circuit.flip_flop_count(), 12);
/// assert!(circuit.validate().is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Benchmark name recorded on the circuit.
    pub name: String,
    /// Number of combinational cells.
    pub combinational: usize,
    /// Number of flip-flops.
    pub flip_flops: usize,
    /// Number of signal nets (must be ≥ `flip_flops + primary_inputs` and
    /// ≤ `combinational + flip_flops + primary_inputs`).
    pub nets: usize,
    /// Number of primary input ports.
    pub primary_inputs: usize,
    /// Number of primary output ports.
    pub primary_outputs: usize,
    /// Die side length in µm (square die).
    pub die_side: f64,
    /// Number of logic levels between flip-flop boundaries.
    pub levels: usize,
    /// Mean fanout of a net (geometric distribution, clamped to `max_fanout`).
    pub mean_fanout: f64,
    /// Upper bound on net fanout.
    pub max_fanout: usize,
    /// Number of locality clusters used to bias connectivity.
    pub clusters: usize,
    /// Placement row height in µm (cell height).
    pub row_height: f64,
    /// Target placement-area utilization; cell widths are scaled to hit it.
    pub utilization: f64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self {
            name: "synthetic".into(),
            combinational: 1000,
            flip_flops: 100,
            nets: 1050,
            primary_inputs: 20,
            primary_outputs: 20,
            die_side: 1000.0,
            levels: 8,
            mean_fanout: 2.2,
            max_fanout: 12,
            clusters: 16,
            row_height: 10.0,
            utilization: 0.35,
        }
    }
}

/// Synthetic circuit generator. See the [module docs](self) for the model.
#[derive(Debug, Clone)]
pub struct Generator {
    config: GeneratorConfig,
}

impl Generator {
    /// Creates a generator for the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the net count is inconsistent with the cell counts (every
    /// flip-flop and primary input must drive a net, and there cannot be
    /// more nets than potential drivers).
    pub fn new(config: GeneratorConfig) -> Self {
        let min_nets = config.flip_flops + config.primary_inputs;
        let max_nets = config.combinational + min_nets;
        assert!(
            (min_nets..=max_nets).contains(&config.nets),
            "net count {} outside feasible range [{min_nets}, {max_nets}]",
            config.nets
        );
        assert!(config.levels >= 2, "need at least 2 logic levels");
        Self { config }
    }

    /// The configuration this generator was built with.
    pub fn config(&self) -> &GeneratorConfig {
        &self.config
    }

    /// Generates a circuit. The same `(config, seed)` pair always yields the
    /// same circuit.
    pub fn generate(&self, seed: u64) -> Circuit {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_c19c);
        let die = Rect::from_size(cfg.die_side, cfg.die_side);
        let mut circuit = Circuit::new(cfg.name.clone(), die);

        // Scale cell widths so total cell area hits the target utilization.
        let total_cells = cfg.combinational + cfg.flip_flops;
        let mean_width = cfg.utilization * die.area() / (total_cells as f64 * cfg.row_height);

        // --- cells -----------------------------------------------------
        // Order: combinational, flip-flops, primary inputs, primary outputs.
        let mut comb_level = Vec::with_capacity(cfg.combinational);
        let mut comb_cluster = Vec::with_capacity(cfg.combinational);
        for _ in 0..cfg.combinational {
            let width = mean_width * rng.gen_range(0.5..1.5);
            circuit.add_cell(
                Cell {
                    kind: CellKind::Combinational,
                    width,
                    height: cfg.row_height,
                    input_cap: rng.gen_range(0.002..0.006), // pF
                    drive_resistance: rng.gen_range(0.3..0.7), // kΩ
                    intrinsic_delay: rng.gen_range(0.005..0.015), // ns
                },
                random_point(&mut rng, die),
            );
            comb_level.push(rng.gen_range(1..=cfg.levels));
            comb_cluster.push(rng.gen_range(0..cfg.clusters.max(1)));
        }
        let ff_base = cfg.combinational;
        let mut ff_cluster = Vec::with_capacity(cfg.flip_flops);
        for _ in 0..cfg.flip_flops {
            let width = mean_width * rng.gen_range(0.9..1.6);
            circuit.add_cell(
                Cell {
                    kind: CellKind::FlipFlop,
                    width,
                    height: cfg.row_height,
                    input_cap: rng.gen_range(0.008..0.015), // clock-pin cap, pF
                    drive_resistance: rng.gen_range(0.3..0.6),
                    intrinsic_delay: rng.gen_range(0.02..0.04), // clk->q
                },
                random_point(&mut rng, die),
            );
            ff_cluster.push(rng.gen_range(0..cfg.clusters.max(1)));
        }
        let pi_base = ff_base + cfg.flip_flops;
        for k in 0..cfg.primary_inputs {
            circuit.add_cell(
                Cell {
                    kind: CellKind::PrimaryInput,
                    width: 1.0,
                    height: 1.0,
                    input_cap: 0.0,
                    drive_resistance: 1.0,
                    intrinsic_delay: 0.0,
                },
                boundary_point(die, k, cfg.primary_inputs, true),
            );
        }
        let po_base = pi_base + cfg.primary_inputs;
        for k in 0..cfg.primary_outputs {
            circuit.add_cell(
                Cell {
                    kind: CellKind::PrimaryOutput,
                    width: 1.0,
                    height: 1.0,
                    input_cap: 0.010,
                    drive_resistance: 1.0,
                    intrinsic_delay: 0.0,
                },
                boundary_point(die, k, cfg.primary_outputs, false),
            );
        }

        // --- choose drivers ---------------------------------------------
        // Every FF and PI drives a net; the remaining net budget goes to a
        // random subset of combinational cells (the rest are sink-only,
        // matching ISCAS89's nets < cells).
        let comb_driver_count = cfg.nets - cfg.flip_flops - cfg.primary_inputs;
        let mut comb_ids: Vec<usize> = (0..cfg.combinational).collect();
        partial_shuffle(&mut rng, &mut comb_ids);
        let comb_drivers = &comb_ids[..comb_driver_count];

        // Bucket combinational cells by level for fast sink selection.
        let mut by_level: Vec<Vec<usize>> = vec![Vec::new(); cfg.levels + 1];
        for (i, &l) in comb_level.iter().enumerate() {
            by_level[l].push(i);
        }

        // --- nets --------------------------------------------------------
        // Net ordering: FF-driven, PI-driven, then comb-driven.
        let mut fanin_count = vec![0usize; circuit.cell_count()];
        let mut net_specs: Vec<(CellId, usize, usize)> = Vec::with_capacity(cfg.nets);
        for (f, &cluster) in ff_cluster.iter().enumerate().take(cfg.flip_flops) {
            net_specs.push((CellId((ff_base + f) as u32), 0, cluster));
        }
        for p in 0..cfg.primary_inputs {
            net_specs.push((
                CellId((pi_base + p) as u32),
                0,
                rng.gen_range(0..cfg.clusters.max(1)),
            ));
        }
        for &c in comb_drivers {
            net_specs.push((CellId(c as u32), comb_level[c], comb_cluster[c]));
        }

        for (driver, level, cluster) in net_specs {
            let fanout = sample_fanout(&mut rng, cfg.mean_fanout, cfg.max_fanout);
            let mut sinks = Vec::with_capacity(fanout);
            for _ in 0..fanout {
                let sink = self.pick_sink(
                    &mut rng,
                    level,
                    cluster,
                    &by_level,
                    &comb_cluster,
                    ff_base,
                    po_base,
                    cfg,
                );
                if let Some(s) = sink {
                    if s != driver && !sinks.contains(&s) {
                        fanin_count[s.index()] += 1;
                        sinks.push(s);
                    }
                }
            }
            if sinks.is_empty() {
                // Guarantee at least one sink: an FF data pin is always legal.
                let s = CellId((ff_base + rng.gen_range(0..cfg.flip_flops)) as u32);
                fanin_count[s.index()] += 1;
                sinks.push(s);
            }
            circuit.add_net(Net { driver, sinks });
        }

        // --- repair passes ------------------------------------------------
        // (a) every combinational cell needs at least one fanin: attach it as
        //     a sink of some net driven from a strictly lower level.
        // (b) every flip-flop needs a data input: attach to a comb net.
        let mut nets_by_driver_level: Vec<Vec<usize>> = vec![Vec::new(); cfg.levels + 1];
        for (ni, net) in circuit.nets.iter().enumerate() {
            let d = net.driver.index();
            let lvl = if d < cfg.combinational { comb_level[d] } else { 0 };
            nets_by_driver_level[lvl].push(ni);
        }
        for c in 0..cfg.combinational {
            if fanin_count[c] == 0 {
                let lvl = comb_level[c];
                let mut src_lvl = rng.gen_range(0..lvl);
                // Level 0 (FF/PI-driven nets) is never empty, so walking
                // down always terminates with a net.
                while nets_by_driver_level[src_lvl].is_empty() {
                    src_lvl -= 1;
                }
                if let Some(&ni) = pick_random(&mut rng, &nets_by_driver_level[src_lvl]) {
                    circuit.nets[ni].sinks.push(CellId(c as u32));
                    fanin_count[c] += 1;
                }
            }
        }
        for f in 0..cfg.flip_flops {
            let id = ff_base + f;
            if fanin_count[id] == 0 {
                // Any net may feed an FF data pin (paths are cut there).
                let ni = rng.gen_range(0..circuit.nets.len());
                circuit.nets[ni].sinks.push(CellId(id as u32));
                fanin_count[id] += 1;
            }
        }

        debug_assert_eq!(circuit.net_count(), cfg.nets);
        circuit
    }

    #[allow(clippy::too_many_arguments)]
    fn pick_sink(
        &self,
        rng: &mut StdRng,
        driver_level: usize,
        cluster: usize,
        by_level: &[Vec<usize>],
        comb_cluster: &[usize],
        ff_base: usize,
        po_base: usize,
        cfg: &GeneratorConfig,
    ) -> Option<CellId> {
        // 78% combinational sink at a higher level, 15% FF data pin,
        // 7% primary output.
        let roll: f64 = rng.gen();
        if roll < 0.78 && driver_level < cfg.levels {
            let lvl = rng.gen_range(driver_level + 1..=cfg.levels);
            let pool = &by_level[lvl];
            if pool.is_empty() {
                return None;
            }
            // Cluster bias: try a few times for a same-cluster sink.
            for _ in 0..4 {
                let cand = pool[rng.gen_range(0..pool.len())];
                if comb_cluster[cand] == cluster {
                    return Some(CellId(cand as u32));
                }
            }
            Some(CellId(pool[rng.gen_range(0..pool.len())] as u32))
        } else if roll < 0.93 || driver_level >= cfg.levels {
            Some(CellId((ff_base + rng.gen_range(0..cfg.flip_flops)) as u32))
        } else if cfg.primary_outputs > 0 {
            Some(CellId((po_base + rng.gen_range(0..cfg.primary_outputs)) as u32))
        } else {
            None
        }
    }
}

fn random_point(rng: &mut StdRng, die: Rect) -> Point {
    Point::new(rng.gen_range(die.lo.x..die.hi.x), rng.gen_range(die.lo.y..die.hi.y))
}

/// Evenly spaces port `k` of `n` along the west (inputs) or east (outputs)
/// die edge.
fn boundary_point(die: Rect, k: usize, n: usize, west: bool) -> Point {
    let frac = (k as f64 + 0.5) / n as f64;
    let y = die.lo.y + frac * die.height();
    let x = if west { die.lo.x } else { die.hi.x };
    Point::new(x, y)
}

/// Geometric fanout sample with mean ≈ `mean`, clamped to `[1, max]`.
fn sample_fanout(rng: &mut StdRng, mean: f64, max: usize) -> usize {
    let p = 1.0 / mean.max(1.0);
    let mut k = 1usize;
    while k < max && rng.gen::<f64>() > p {
        k += 1;
    }
    k
}

/// Fisher–Yates shuffle (we avoid pulling in rand's `SliceRandom` to keep the
/// dependency surface explicit).
fn partial_shuffle(rng: &mut StdRng, v: &mut [usize]) {
    for i in (1..v.len()).rev() {
        let j = rng.gen_range(0..=i);
        v.swap(i, j);
    }
}

fn pick_random<'a, T>(rng: &mut StdRng, v: &'a [T]) -> Option<&'a T> {
    if v.is_empty() {
        None
    } else {
        Some(&v[rng.gen_range(0..v.len())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_config() -> GeneratorConfig {
        GeneratorConfig {
            name: "toy".into(),
            combinational: 120,
            flip_flops: 24,
            nets: 130,
            primary_inputs: 8,
            primary_outputs: 8,
            die_side: 400.0,
            ..GeneratorConfig::default()
        }
    }

    #[test]
    fn generates_exact_counts() {
        let c = Generator::new(toy_config()).generate(3);
        assert_eq!(c.combinational_count(), 120);
        assert_eq!(c.flip_flop_count(), 24);
        assert_eq!(c.net_count(), 130);
        assert_eq!(c.cell_count(), 120 + 24 + 8 + 8);
    }

    #[test]
    fn generated_circuit_validates() {
        let c = Generator::new(toy_config()).generate(3);
        c.validate().expect("valid circuit");
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = Generator::new(toy_config()).generate(9);
        let b = Generator::new(toy_config()).generate(9);
        assert_eq!(a.total_hpwl(), b.total_hpwl());
        assert_eq!(a.nets.len(), b.nets.len());
        for (x, y) in a.nets.iter().zip(&b.nets) {
            assert_eq!(x.driver, y.driver);
            assert_eq!(x.sinks, y.sinks);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = Generator::new(toy_config()).generate(1);
        let b = Generator::new(toy_config()).generate(2);
        assert_ne!(a.total_hpwl(), b.total_hpwl());
    }

    #[test]
    fn every_comb_cell_has_fanin() {
        let c = Generator::new(toy_config()).generate(5);
        let mut fanin = vec![0usize; c.cell_count()];
        for net in &c.nets {
            for &s in &net.sinks {
                fanin[s.index()] += 1;
            }
        }
        for (i, cell) in c.cells.iter().enumerate() {
            if cell.kind == CellKind::Combinational || cell.kind == CellKind::FlipFlop {
                assert!(fanin[i] > 0, "cell {i} ({:?}) has no fanin", cell.kind);
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside feasible range")]
    fn rejects_too_few_nets() {
        let cfg = GeneratorConfig { nets: 10, ..toy_config() };
        let _ = Generator::new(cfg);
    }

    #[test]
    fn utilization_close_to_target() {
        let cfg = toy_config();
        let util = cfg.utilization;
        let c = Generator::new(cfg).generate(11);
        let cell_area: f64 = c.cells.iter().filter(|x| x.kind.is_movable()).map(|x| x.area()).sum();
        let achieved = cell_area / c.die.area();
        assert!((achieved - util).abs() < 0.1 * util, "achieved {achieved}");
    }
}
