//! Summary statistics of a circuit, mirroring the columns of Table II.

use crate::circuit::{CellKind, Circuit};
use serde::{Deserialize, Serialize};

/// Aggregate statistics of a [`Circuit`].
///
/// # Examples
///
/// ```
/// use rotary_netlist::{BenchmarkSuite, CircuitStats};
///
/// let c = BenchmarkSuite::S9234.circuit(1);
/// let s = CircuitStats::of(&c);
/// assert_eq!(s.cells, 1510);
/// assert_eq!(s.flip_flops, 135);
/// assert_eq!(s.nets, 1471);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CircuitStats {
    /// Benchmark name.
    pub name: String,
    /// Combinational standard-cell count (`#Cells` in Table II).
    pub cells: usize,
    /// Flip-flop count.
    pub flip_flops: usize,
    /// Net count.
    pub nets: usize,
    /// Primary input count.
    pub primary_inputs: usize,
    /// Primary output count.
    pub primary_outputs: usize,
    /// Die side length in µm.
    pub die_side: f64,
    /// Total pin count over all nets.
    pub pins: usize,
    /// Average net fanout (sinks per net).
    pub avg_fanout: f64,
    /// Total HPWL at the current placement, µm.
    pub hpwl: f64,
}

impl CircuitStats {
    /// Computes statistics for `circuit`.
    pub fn of(circuit: &Circuit) -> Self {
        let mut pi = 0;
        let mut po = 0;
        for c in &circuit.cells {
            match c.kind {
                CellKind::PrimaryInput => pi += 1,
                CellKind::PrimaryOutput => po += 1,
                _ => {}
            }
        }
        let pins: usize = circuit.nets.iter().map(|n| n.pin_count()).sum();
        let sinks: usize = circuit.nets.iter().map(|n| n.sinks.len()).sum();
        Self {
            name: circuit.name.clone(),
            cells: circuit.combinational_count(),
            flip_flops: circuit.flip_flop_count(),
            nets: circuit.net_count(),
            primary_inputs: pi,
            primary_outputs: po,
            die_side: circuit.die.width(),
            pins,
            avg_fanout: sinks as f64 / circuit.net_count().max(1) as f64,
            hpwl: circuit.total_hpwl(),
        }
    }
}

impl std::fmt::Display for CircuitStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} cells, {} FFs, {} nets, die {:.0} µm, avg fanout {:.2}",
            self.name, self.cells, self.flip_flops, self.nets, self.die_side, self.avg_fanout
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{Generator, GeneratorConfig};

    #[test]
    fn stats_match_config() {
        let cfg = GeneratorConfig {
            combinational: 200,
            flip_flops: 30,
            nets: 220,
            primary_inputs: 10,
            primary_outputs: 5,
            ..GeneratorConfig::default()
        };
        let c = Generator::new(cfg).generate(0);
        let s = CircuitStats::of(&c);
        assert_eq!(s.cells, 200);
        assert_eq!(s.flip_flops, 30);
        assert_eq!(s.nets, 220);
        assert_eq!(s.primary_inputs, 10);
        assert_eq!(s.primary_outputs, 5);
        assert!(s.avg_fanout >= 1.0);
        assert!(s.pins > s.nets);
    }
}
