//! Gate-level netlist representation.
//!
//! A [`Circuit`] is a set of [`Cell`]s (combinational gates, flip-flops and
//! primary I/O ports) connected by [`Net`]s. Each net has exactly one driver
//! and any number of sinks. The combinational portion must form a DAG bounded
//! by flip-flops and primary ports — [`Circuit::validate`] checks this, and
//! [`Circuit::topological_order`] exposes the levelized order used by static
//! timing analysis.

use crate::geom::{BoundingBox, Point, Rect};
use serde::{Deserialize, Serialize};

/// Identifier of a cell within its [`Circuit`]. Indexes into [`Circuit::cells`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CellId(pub u32);

impl CellId {
    /// The cell index as a `usize` for slice indexing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for CellId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Identifier of a net within its [`Circuit`]. Indexes into [`Circuit::nets`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NetId(pub u32);

impl NetId {
    /// The net index as a `usize` for slice indexing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NetId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The functional class of a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellKind {
    /// A combinational standard cell (NAND/NOR/INV/complex gate — the exact
    /// function is irrelevant to placement and skew optimization; only delay
    /// and capacitance matter).
    Combinational,
    /// An edge-triggered flip-flop: a clock sink for the rotary ring array.
    FlipFlop,
    /// A primary input port (fixed on the die boundary).
    PrimaryInput,
    /// A primary output port (fixed on the die boundary).
    PrimaryOutput,
}

impl CellKind {
    /// Whether the cell is movable by the placer (ports are fixed).
    pub fn is_movable(self) -> bool {
        matches!(self, CellKind::Combinational | CellKind::FlipFlop)
    }
}

/// A placeable circuit element.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cell {
    /// Functional class.
    pub kind: CellKind,
    /// Footprint width in µm.
    pub width: f64,
    /// Footprint height in µm (row height for standard cells).
    pub height: f64,
    /// Input pin capacitance in pF (per input; the flip-flop value is the
    /// clock-pin capacitance `C_ff` used in the tapping equation).
    pub input_cap: f64,
    /// Output drive resistance in kΩ (used by the Elmore gate-delay model).
    pub drive_resistance: f64,
    /// Intrinsic (unloaded) gate delay in ns.
    pub intrinsic_delay: f64,
}

impl Cell {
    /// Footprint area in µm².
    pub fn area(&self) -> f64 {
        self.width * self.height
    }
}

/// A signal net: one driver cell and a set of sink cells.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Net {
    /// The cell whose output drives this net.
    pub driver: CellId,
    /// Cells with an input pin on this net.
    pub sinks: Vec<CellId>,
}

impl Net {
    /// Number of pins on the net (driver + sinks).
    pub fn pin_count(&self) -> usize {
        1 + self.sinks.len()
    }
}

/// Error returned by [`Circuit::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateCircuitError {
    /// A net references a cell index outside the cell array.
    DanglingCellRef { net: NetId, cell: CellId },
    /// The combinational subgraph contains a cycle (no flip-flop on the loop).
    CombinationalCycle,
    /// A primary output drives a net.
    OutputDrivesNet { net: NetId },
    /// A cell position lies outside the die.
    CellOffDie { cell: CellId },
}

impl std::fmt::Display for ValidateCircuitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::DanglingCellRef { net, cell } => {
                write!(f, "net {net} references nonexistent cell {cell}")
            }
            Self::CombinationalCycle => write!(f, "combinational subgraph contains a cycle"),
            Self::OutputDrivesNet { net } => write!(f, "primary output drives net {net}"),
            Self::CellOffDie { cell } => write!(f, "cell {cell} placed outside the die"),
        }
    }
}

impl std::error::Error for ValidateCircuitError {}

/// A placed gate-level netlist.
///
/// Positions are cell centers in µm. A freshly generated circuit carries the
/// generator's seed placement; the placer overwrites positions in place.
///
/// # Examples
///
/// ```
/// use rotary_netlist::BenchmarkSuite;
///
/// let c = BenchmarkSuite::S5378.circuit(7);
/// assert_eq!(c.flip_flop_count(), 164);
/// let hpwl = c.total_hpwl();
/// assert!(hpwl > 0.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Circuit {
    /// Human-readable benchmark name (e.g. `"s9234"`).
    pub name: String,
    /// Die outline; all cells must stay inside.
    pub die: Rect,
    /// All cells, indexed by [`CellId`].
    pub cells: Vec<Cell>,
    /// Cell center positions, parallel to `cells`.
    pub positions: Vec<Point>,
    /// All nets, indexed by [`NetId`].
    pub nets: Vec<Net>,
}

impl Circuit {
    /// Creates an empty circuit over the given die.
    pub fn new(name: impl Into<String>, die: Rect) -> Self {
        Self { name: name.into(), die, cells: Vec::new(), positions: Vec::new(), nets: Vec::new() }
    }

    /// Adds a cell at `pos` and returns its id.
    pub fn add_cell(&mut self, cell: Cell, pos: Point) -> CellId {
        let id = CellId(self.cells.len() as u32);
        self.cells.push(cell);
        self.positions.push(pos);
        id
    }

    /// Adds a net and returns its id.
    pub fn add_net(&mut self, net: Net) -> NetId {
        let id = NetId(self.nets.len() as u32);
        self.nets.push(net);
        id
    }

    /// Number of cells of every kind.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Number of flip-flops (clock sinks).
    pub fn flip_flop_count(&self) -> usize {
        self.cells.iter().filter(|c| c.kind == CellKind::FlipFlop).count()
    }

    /// Number of combinational cells.
    pub fn combinational_count(&self) -> usize {
        self.cells.iter().filter(|c| c.kind == CellKind::Combinational).count()
    }

    /// Number of nets.
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// Ids of all flip-flops, in index order.
    pub fn flip_flops(&self) -> Vec<CellId> {
        self.cells
            .iter()
            .enumerate()
            .filter(|(_, c)| c.kind == CellKind::FlipFlop)
            .map(|(i, _)| CellId(i as u32))
            .collect()
    }

    /// Position of a cell.
    pub fn position(&self, id: CellId) -> Point {
        self.positions[id.index()]
    }

    /// Moves a cell to `pos`.
    pub fn set_position(&mut self, id: CellId, pos: Point) {
        self.positions[id.index()] = pos;
    }

    /// The cell record for `id`.
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.index()]
    }

    /// The net record for `id`.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// Half-perimeter wirelength of one net at the current placement.
    pub fn net_hpwl(&self, id: NetId) -> f64 {
        let net = self.net(id);
        let mut bb = BoundingBox::new();
        bb.add(self.position(net.driver));
        for &s in &net.sinks {
            bb.add(self.position(s));
        }
        bb.half_perimeter()
    }

    /// Total HPWL over all nets — the "signal wirelength" metric of the paper.
    pub fn total_hpwl(&self) -> f64 {
        (0..self.nets.len()).map(|i| self.net_hpwl(NetId(i as u32))).sum()
    }

    /// For each cell, the list of nets incident to it (driver or sink).
    pub fn build_cell_nets(&self) -> Vec<Vec<NetId>> {
        let mut out = vec![Vec::new(); self.cells.len()];
        for (i, net) in self.nets.iter().enumerate() {
            let id = NetId(i as u32);
            out[net.driver.index()].push(id);
            for &s in &net.sinks {
                out[s.index()].push(id);
            }
        }
        out
    }

    /// Directed combinational fanout adjacency: for each cell, the cells it
    /// drives through some net. Flip-flop outputs appear as sources and
    /// flip-flop inputs as sinks, but edges are *not* followed through
    /// flip-flops (they cut timing paths).
    pub fn fanout_adjacency(&self) -> Vec<Vec<CellId>> {
        let mut adj = vec![Vec::new(); self.cells.len()];
        for net in &self.nets {
            for &s in &net.sinks {
                adj[net.driver.index()].push(s);
            }
        }
        adj
    }

    /// Topological order of the cells treating flip-flop *outputs* as sources
    /// (their fanin edges are cut). Returns `None` if the combinational
    /// subgraph has a cycle.
    ///
    /// Flip-flops and primary inputs have in-degree 0 by construction; the
    /// order is suitable for a single forward STA sweep.
    pub fn topological_order(&self) -> Option<Vec<CellId>> {
        let n = self.cells.len();
        let adj = self.fanout_adjacency();
        // Flip-flops are forced sources: edges into an FF data pin end a
        // timing path, so they do not contribute to the FF's in-degree.
        let mut indeg = vec![0usize; n];
        for outs in &adj {
            for &v in outs {
                if self.cells[v.index()].kind != CellKind::FlipFlop {
                    indeg[v.index()] += 1;
                }
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            order.push(CellId(u as u32));
            for &v in &adj[u] {
                let vi = v.index();
                if self.cells[vi].kind == CellKind::FlipFlop {
                    continue; // timing path ends at the FF data pin
                }
                indeg[vi] -= 1;
                if indeg[vi] == 0 {
                    queue.push(vi);
                }
            }
        }
        (order.len() == n).then_some(order)
    }

    /// Checks structural invariants. See [`ValidateCircuitError`].
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant: dangling net references,
    /// primary outputs driving nets, cells placed off-die, or a
    /// combinational cycle.
    pub fn validate(&self) -> Result<(), ValidateCircuitError> {
        let n = self.cells.len() as u32;
        for (i, net) in self.nets.iter().enumerate() {
            let id = NetId(i as u32);
            if net.driver.0 >= n {
                return Err(ValidateCircuitError::DanglingCellRef { net: id, cell: net.driver });
            }
            if self.cells[net.driver.index()].kind == CellKind::PrimaryOutput {
                return Err(ValidateCircuitError::OutputDrivesNet { net: id });
            }
            for &s in &net.sinks {
                if s.0 >= n {
                    return Err(ValidateCircuitError::DanglingCellRef { net: id, cell: s });
                }
            }
        }
        for (i, &p) in self.positions.iter().enumerate() {
            if !self.die.contains(p) {
                return Err(ValidateCircuitError::CellOffDie { cell: CellId(i as u32) });
            }
        }
        if self.topological_order().is_none() {
            return Err(ValidateCircuitError::CombinationalCycle);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comb_cell() -> Cell {
        Cell {
            kind: CellKind::Combinational,
            width: 2.0,
            height: 8.0,
            input_cap: 0.004,
            drive_resistance: 2.0,
            intrinsic_delay: 0.03,
        }
    }

    fn ff_cell() -> Cell {
        Cell { kind: CellKind::FlipFlop, ..comb_cell() }
    }

    fn tiny_circuit() -> Circuit {
        // ff0 -> g1 -> g2 -> ff3
        let mut c = Circuit::new("tiny", Rect::from_size(100.0, 100.0));
        let ff0 = c.add_cell(ff_cell(), Point::new(10.0, 10.0));
        let g1 = c.add_cell(comb_cell(), Point::new(20.0, 10.0));
        let g2 = c.add_cell(comb_cell(), Point::new(30.0, 10.0));
        let ff3 = c.add_cell(ff_cell(), Point::new(40.0, 10.0));
        c.add_net(Net { driver: ff0, sinks: vec![g1] });
        c.add_net(Net { driver: g1, sinks: vec![g2] });
        c.add_net(Net { driver: g2, sinks: vec![ff3] });
        c
    }

    #[test]
    fn counts() {
        let c = tiny_circuit();
        assert_eq!(c.cell_count(), 4);
        assert_eq!(c.flip_flop_count(), 2);
        assert_eq!(c.combinational_count(), 2);
        assert_eq!(c.net_count(), 3);
        assert_eq!(c.flip_flops(), vec![CellId(0), CellId(3)]);
    }

    #[test]
    fn hpwl_of_chain() {
        let c = tiny_circuit();
        // Each net spans 10 µm horizontally, 0 vertically.
        assert!((c.total_hpwl() - 30.0).abs() < 1e-12);
    }

    #[test]
    fn topological_order_covers_all_cells() {
        let c = tiny_circuit();
        let order = c.topological_order().expect("acyclic");
        assert_eq!(order.len(), 4);
        let pos = |id: CellId| order.iter().position(|&x| x == id).unwrap();
        assert!(pos(CellId(1)) < pos(CellId(2)), "g1 before g2");
    }

    #[test]
    fn validate_ok() {
        assert!(tiny_circuit().validate().is_ok());
    }

    #[test]
    fn validate_catches_combinational_cycle() {
        let mut c = tiny_circuit();
        // g2 -> g1 creates a purely combinational loop.
        c.add_net(Net { driver: CellId(2), sinks: vec![CellId(1)] });
        assert_eq!(c.validate(), Err(ValidateCircuitError::CombinationalCycle));
    }

    #[test]
    fn cycle_through_flip_flop_is_legal() {
        let mut c = tiny_circuit();
        // ff3 -> g1: sequential loop, fine.
        c.add_net(Net { driver: CellId(3), sinks: vec![CellId(1)] });
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validate_catches_off_die_cell() {
        let mut c = tiny_circuit();
        c.set_position(CellId(1), Point::new(500.0, 10.0));
        assert!(matches!(c.validate(), Err(ValidateCircuitError::CellOffDie { cell: CellId(1) })));
    }

    #[test]
    fn validate_catches_dangling_ref() {
        let mut c = tiny_circuit();
        c.add_net(Net { driver: CellId(99), sinks: vec![] });
        assert!(matches!(c.validate(), Err(ValidateCircuitError::DanglingCellRef { .. })));
    }

    #[test]
    fn cell_nets_index() {
        let c = tiny_circuit();
        let cn = c.build_cell_nets();
        assert_eq!(cn[1], vec![NetId(0), NetId(1)]); // g1 sinks n0, drives n1
    }
}
