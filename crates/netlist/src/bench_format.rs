//! ISCAS89 `.bench` format support.
//!
//! The benchmark circuits the paper evaluates on (s9234, s5378, …) are
//! distributed in the ISCAS89 *bench* format:
//!
//! ```text
//! # comment
//! INPUT(G0)
//! OUTPUT(G17)
//! G10 = DFF(G14)
//! G11 = NAND(G0, G10)
//! G17 = NOT(G11)
//! ```
//!
//! This module parses that format into a [`Circuit`] (and writes circuits
//! back out), so real ISCAS89 netlists can be dropped in whenever they are
//! available; the synthetic generator ([`crate::generator`]) only stands in
//! for them. Gate functions are irrelevant to placement and skew
//! optimization; they are retained only to choose default electrical
//! parameters and for faithful round-tripping.

use crate::circuit::{Cell, CellId, CellKind, Circuit, Net};
use crate::geom::{Point, Rect};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Error produced while parsing a `.bench` file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBenchError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseBenchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseBenchError {}

/// Default electrical parameters by gate class.
fn cell_for(kind: CellKind, fanin: usize) -> Cell {
    let (width, cap, res, delay) = match kind {
        CellKind::FlipFlop => (8.0, 0.010, 0.5, 0.03),
        CellKind::Combinational => (3.0 + fanin as f64, 0.004, 0.5, 0.01 + 0.004 * fanin as f64),
        CellKind::PrimaryInput | CellKind::PrimaryOutput => (1.0, 0.010, 1.0, 0.0),
    };
    Cell {
        kind,
        width,
        height: 10.0,
        input_cap: cap,
        drive_resistance: res,
        intrinsic_delay: delay,
    }
}

/// Parses a `.bench` netlist into a circuit.
///
/// Cells receive placeholder positions on a uniform grid inside a die sized
/// for ~35% utilization; run the placer before using any geometry.
///
/// # Errors
///
/// Returns [`ParseBenchError`] on malformed lines, undefined signals, or
/// duplicate definitions.
///
/// # Examples
///
/// ```
/// use rotary_netlist::bench_format::parse_bench;
///
/// let src = "
/// INPUT(a)
/// OUTPUT(y)
/// q = DFF(y)
/// y = NAND(a, q)
/// ";
/// let c = parse_bench("tiny", src)?;
/// assert_eq!(c.flip_flop_count(), 1);
/// assert_eq!(c.combinational_count(), 1);
/// # Ok::<(), rotary_netlist::bench_format::ParseBenchError>(())
/// ```
pub fn parse_bench(name: &str, source: &str) -> Result<Circuit, ParseBenchError> {
    struct GateDef {
        signal: String,
        func: String,
        inputs: Vec<String>,
        line: usize,
    }
    let mut inputs = Vec::new();
    let mut outputs = Vec::new();
    let mut gates: Vec<GateDef> = Vec::new();

    for (ln, raw) in source.lines().enumerate() {
        let line_no = ln + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let err = |message: String| ParseBenchError { line: line_no, message };
        if let Some(rest) = line.strip_prefix("INPUT(") {
            let sig =
                rest.strip_suffix(')').ok_or_else(|| err("missing ')' after INPUT".into()))?;
            inputs.push(sig.trim().to_string());
        } else if let Some(rest) = line.strip_prefix("OUTPUT(") {
            let sig =
                rest.strip_suffix(')').ok_or_else(|| err("missing ')' after OUTPUT".into()))?;
            outputs.push(sig.trim().to_string());
        } else if let Some((lhs, rhs)) = line.split_once('=') {
            let signal = lhs.trim().to_string();
            let rhs = rhs.trim();
            let open = rhs
                .find('(')
                .ok_or_else(|| err(format!("expected FUNC(...) after '=', got {rhs}")))?;
            let func = rhs[..open].trim().to_uppercase();
            let args = rhs[open + 1..]
                .strip_suffix(')')
                .ok_or_else(|| err("missing closing ')'".into()))?;
            let ins: Vec<String> =
                args.split(',').map(|a| a.trim().to_string()).filter(|a| !a.is_empty()).collect();
            if ins.is_empty() {
                return Err(err(format!("gate {signal} has no inputs")));
            }
            gates.push(GateDef { signal, func, inputs: ins, line: line_no });
        } else {
            return Err(err(format!("unrecognized line: {line}")));
        }
    }

    // Die sized for the cell count.
    let total_cells = gates.len() + inputs.len() + outputs.len();
    let side = ((total_cells.max(1) as f64) * 10.0 * 12.0 / 0.35).sqrt().max(100.0);
    let die = Rect::from_size(side, side);
    let mut circuit = Circuit::new(name, die);

    // Create cells: gates (DFF → flip-flop), then ports. Positions on a
    // grid (placeholder until placement).
    let cols = (total_cells as f64).sqrt().ceil() as usize;
    let grid_pos = |k: usize| {
        let (i, j) = (k % cols, k / cols);
        die.clamp(Point::new(
            (i as f64 + 0.5) * side / cols as f64,
            (j as f64 + 0.5) * side / cols as f64,
        ))
    };
    let mut id_of: HashMap<String, CellId> = HashMap::new();
    let mut k = 0usize;
    for g in &gates {
        let kind = if g.func == "DFF" { CellKind::FlipFlop } else { CellKind::Combinational };
        let id = circuit.add_cell(cell_for(kind, g.inputs.len()), grid_pos(k));
        k += 1;
        if id_of.insert(g.signal.clone(), id).is_some() {
            return Err(ParseBenchError {
                line: g.line,
                message: format!("signal {} defined twice", g.signal),
            });
        }
    }
    for sig in &inputs {
        let id = circuit.add_cell(cell_for(CellKind::PrimaryInput, 0), grid_pos(k));
        k += 1;
        if id_of.insert(sig.clone(), id).is_some() {
            return Err(ParseBenchError {
                line: 0,
                message: format!("INPUT {sig} collides with a gate definition"),
            });
        }
    }
    let mut po_ids = Vec::new();
    for _sig in &outputs {
        let id = circuit.add_cell(cell_for(CellKind::PrimaryOutput, 1), grid_pos(k));
        k += 1;
        po_ids.push(id);
    }

    // Nets: one per driving signal, sinks = consumers (+ output ports).
    let mut sinks_of: HashMap<String, Vec<CellId>> = HashMap::new();
    for g in &gates {
        let gid = id_of[&g.signal];
        for input in &g.inputs {
            if !id_of.contains_key(input) {
                return Err(ParseBenchError {
                    line: g.line,
                    message: format!("undefined signal {input}"),
                });
            }
            sinks_of.entry(input.clone()).or_default().push(gid);
        }
    }
    for (sig, &po) in outputs.iter().zip(&po_ids) {
        if !id_of.contains_key(sig) {
            return Err(ParseBenchError {
                line: 0,
                message: format!("OUTPUT({sig}) references an undefined signal"),
            });
        }
        sinks_of.entry(sig.clone()).or_default().push(po);
    }
    // Deterministic net order: gates in definition order, then inputs.
    for g in &gates {
        if let Some(sinks) = sinks_of.remove(&g.signal) {
            circuit.add_net(Net { driver: id_of[&g.signal], sinks });
        }
    }
    for sig in &inputs {
        if let Some(sinks) = sinks_of.remove(sig) {
            circuit.add_net(Net { driver: id_of[sig], sinks });
        }
    }
    Ok(circuit)
}

/// Serializes a circuit to `.bench` text. Combinational functions are not
/// tracked by [`Circuit`], so gates are emitted as `AND(...)` with their
/// actual fanins; flip-flops as `DFF(...)`; the result re-parses to an
/// isomorphic circuit.
pub fn write_bench(circuit: &Circuit) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {} — generated by rotary-netlist", circuit.name);
    let sig = |id: CellId| format!("n{}", id.0);

    // Driver lookup: net driven by each cell (first match).
    let mut driven_net: Vec<Option<usize>> = vec![None; circuit.cell_count()];
    for (ni, net) in circuit.nets.iter().enumerate() {
        driven_net[net.driver.index()].get_or_insert(ni);
        let _ = ni;
    }
    let mut fanins: Vec<Vec<CellId>> = vec![Vec::new(); circuit.cell_count()];
    for net in &circuit.nets {
        for &s in &net.sinks {
            fanins[s.index()].push(net.driver);
        }
    }

    for (i, cell) in circuit.cells.iter().enumerate() {
        if cell.kind == CellKind::PrimaryInput {
            let _ = writeln!(out, "INPUT({})", sig(CellId(i as u32)));
        }
    }
    for (i, cell) in circuit.cells.iter().enumerate() {
        if cell.kind == CellKind::PrimaryOutput {
            // OUTPUT lines reference the driving signal.
            if let Some(&driver) = fanins[i].first() {
                let _ = writeln!(out, "OUTPUT({})", sig(driver));
            }
        }
    }
    for (i, cell) in circuit.cells.iter().enumerate() {
        let id = CellId(i as u32);
        let func = match cell.kind {
            CellKind::FlipFlop => "DFF",
            CellKind::Combinational => "AND",
            _ => continue,
        };
        let ins: Vec<String> = fanins[i].iter().map(|&d| sig(d)).collect();
        if ins.is_empty() {
            continue; // dangling gate: not representable, skip
        }
        let _ = writeln!(out, "{} = {}({})", sig(id), func, ins.join(", "));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "
# s-tiny example
INPUT(a)
INPUT(b)
OUTPUT(y)
q1 = DFF(g2)
g1 = NAND(a, q1)
g2 = NOR(g1, b)
y  = NOT(g2)
";

    #[test]
    fn parses_counts_and_kinds() {
        let c = parse_bench("tiny", SAMPLE).expect("parse");
        assert_eq!(c.flip_flop_count(), 1);
        assert_eq!(c.combinational_count(), 3);
        assert_eq!(c.cell_count(), 4 + 2 + 1);
        c.validate().expect("valid");
    }

    #[test]
    fn connectivity_matches_source() {
        let c = parse_bench("tiny", SAMPLE).expect("parse");
        // q1 (DFF) drives g1; g2 drives both q1 and y.
        let g2_net = c
            .nets
            .iter()
            .find(|n| c.cell(n.driver).kind == CellKind::Combinational && n.sinks.len() >= 2)
            .expect("g2 fanout net");
        assert!(g2_net.sinks.iter().any(|&s| c.cell(s).kind == CellKind::FlipFlop));
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let c = parse_bench("tiny", SAMPLE).expect("parse");
        let text = write_bench(&c);
        let c2 = parse_bench("tiny2", &text).expect("reparse");
        assert_eq!(c.flip_flop_count(), c2.flip_flop_count());
        assert_eq!(c.combinational_count(), c2.combinational_count());
        assert_eq!(c.net_count(), c2.net_count());
        let pins: usize = c.nets.iter().map(|n| n.pin_count()).sum();
        let pins2: usize = c2.nets.iter().map(|n| n.pin_count()).sum();
        assert_eq!(pins, pins2);
        c2.validate().expect("valid");
    }

    #[test]
    fn generator_output_roundtrips_through_bench() {
        use crate::generator::{Generator, GeneratorConfig};
        let c = Generator::new(GeneratorConfig {
            combinational: 80,
            flip_flops: 16,
            nets: 90,
            primary_inputs: 6,
            primary_outputs: 6,
            ..GeneratorConfig::default()
        })
        .generate(4);
        let text = write_bench(&c);
        let c2 = parse_bench("rt", &text).expect("reparse");
        assert_eq!(c2.flip_flop_count(), 16);
        c2.validate().expect("valid");
    }

    #[test]
    fn rejects_undefined_signal() {
        let err = parse_bench("bad", "y = AND(a, b)").expect_err("undefined");
        assert!(err.message.contains("undefined"));
    }

    #[test]
    fn rejects_duplicate_definition() {
        let src = "INPUT(a)\ny = NOT(a)\ny = NOT(a)\n";
        let err = parse_bench("dup", src).expect_err("duplicate");
        assert!(err.message.contains("twice"));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_bench("m1", "INPUT(a").is_err());
        assert!(parse_bench("m2", "y = ").is_err());
        assert!(parse_bench("m3", "what is this").is_err());
        assert!(parse_bench("m4", "y = AND()").is_err());
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let c =
            parse_bench("c", "# hi\n\nINPUT(a)\n  # indented\ny = NOT(a) # trailing\nOUTPUT(y)\n")
                .expect("parse");
        assert_eq!(c.combinational_count(), 1);
    }
}
