//! Sequential netlist model and synthetic benchmark generator.
//!
//! This crate provides the circuit substrate for the rotary-clocking
//! placement/skew-optimization flow: a gate-level netlist representation
//! ([`Circuit`]) whose combinational portion is a levelized DAG bounded by
//! flip-flops, plus a seeded synthetic generator ([`generator::Generator`])
//! that produces circuits matching the statistics of the ISCAS89 benchmark
//! suite used in the paper (see [`suites`]).
//!
//! The original experiments synthesized ISCAS89 circuits with SIS; those
//! artifacts are not available offline, so we reproduce circuits with the
//! same cell/flip-flop/net counts and comparable connectivity structure.
//! All downstream algorithms consume only the abstract netlist + geometry,
//! so matched statistics exercise identical code paths.
//!
//! # Examples
//!
//! ```
//! use rotary_netlist::BenchmarkSuite;
//!
//! let circuit = BenchmarkSuite::S9234.circuit(42);
//! assert_eq!(circuit.flip_flop_count(), 135);
//! assert!(circuit.validate().is_ok());
//! ```

pub mod bench_format;
pub mod circuit;
pub mod generator;
pub mod geom;
pub mod stats;
pub mod suites;

pub use bench_format::{parse_bench, write_bench, ParseBenchError};
pub use circuit::{Cell, CellId, CellKind, Circuit, Net, NetId, ValidateCircuitError};
pub use generator::{Generator, GeneratorConfig};
pub use geom::{BoundingBox, Point, Rect};
pub use stats::CircuitStats;
pub use suites::BenchmarkSuite;
