//! Electrical and timing parameters of the rotary clock.

use serde::{Deserialize, Serialize};

/// Electrical parameters of the rotary clock rings and tap wires.
///
/// Units follow the paper: time in ns, length in µm, resistance in kΩ and
/// capacitance in pF (so that `kΩ · pF = ns`). Defaults model a 180 nm-class
/// global-layer interconnect (bptm-like) and a 1 GHz operating frequency —
/// the frequency used in Section VIII.
///
/// # Examples
///
/// ```
/// use rotary_ring::RingParams;
///
/// let p = RingParams::default();
/// assert_eq!(p.period, 1.0); // 1 GHz
/// assert!(p.wire_res * p.wire_cap > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RingParams {
    /// Clock period `T` in ns (1.0 ⇒ 1 GHz).
    pub period: f64,
    /// Tap-wire resistance per unit length `r`, kΩ/µm.
    pub wire_res: f64,
    /// Tap-wire capacitance per unit length `c`, pF/µm.
    pub wire_cap: f64,
    /// Maximum number of clock periods that case 1 of the tapping solver may
    /// borrow (reducing `t0` by an integer number of periods, Section III).
    pub max_extra_periods: u32,
    /// Minimum spacing between tap points on a ring, µm. Determines the
    /// per-ring flip-flop capacity `U_j = perimeter / tap_pitch`.
    pub tap_pitch: f64,
    /// Fraction of a ring tile's side actually occupied by the ring
    /// (the rest is routing clearance between adjacent rings).
    pub fill_factor: f64,
    /// Fixed capacitance of the ring itself (transmission lines and
    /// anti-parallel inverter pairs), pF; part of `C_total` in eq. (2).
    pub ring_self_cap: f64,
    /// Total loop inductance of a ring, nH; part of `L_total` in eq. (2).
    pub ring_inductance: f64,
}

impl Default for RingParams {
    fn default() -> Self {
        Self {
            period: 1.0,
            wire_res: 0.0008, // 0.8 Ω/µm
            wire_cap: 0.0002, // 0.2 fF/µm
            max_extra_periods: 3,
            tap_pitch: 25.0,
            fill_factor: 0.85,
            ring_self_cap: 3.0,
            ring_inductance: 2.0,
        }
    }
}

impl RingParams {
    /// The oscillation frequency of a ring carrying `load_cap` pF of tapped
    /// load, per eq. (2) of the paper:
    /// `f_osc = 1 / (2·√(L_total · C_total))`, in GHz.
    ///
    /// `C_total = ring_self_cap + load_cap`.
    pub fn oscillation_frequency(&self, load_cap: f64) -> f64 {
        let c_total = self.ring_self_cap + load_cap.max(0.0);
        1.0 / (2.0 * (self.ring_inductance * c_total).sqrt())
    }

    /// Wire delay of a tap stub of Manhattan length `l` µm driving a sink
    /// with input capacitance `sink_cap` pF:
    /// `½·r·c·l² + r·l·C_sink` (the Elmore delay of the stub, as in eq. (1)).
    pub fn stub_delay(&self, l: f64, sink_cap: f64) -> f64 {
        0.5 * self.wire_res * self.wire_cap * l * l + self.wire_res * l * sink_cap
    }

    /// Inverse of [`Self::stub_delay`]: the stub length that produces wire
    /// delay `d` (ns) into a sink of `sink_cap` pF. Returns `None` for
    /// negative `d`.
    ///
    /// Used by case 4 of the tapping solver (intentional wire detour).
    pub fn stub_length_for_delay(&self, d: f64, sink_cap: f64) -> Option<f64> {
        if d < 0.0 {
            return None;
        }
        if d == 0.0 {
            return Some(0.0);
        }
        // ½rc·l² + r·C·l − d = 0  ⇒  positive root.
        let a = 0.5 * self.wire_res * self.wire_cap;
        let b = self.wire_res * sink_cap;
        let disc = b * b + 4.0 * a * d;
        Some((-b + disc.sqrt()) / (2.0 * a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequency_decreases_with_load() {
        let p = RingParams::default();
        assert!(p.oscillation_frequency(0.0) > p.oscillation_frequency(5.0));
    }

    #[test]
    fn stub_delay_monotone_in_length() {
        let p = RingParams::default();
        assert!(p.stub_delay(100.0, 0.01) < p.stub_delay(200.0, 0.01));
        assert_eq!(p.stub_delay(0.0, 0.01), 0.0);
    }

    #[test]
    fn stub_length_inverts_stub_delay() {
        let p = RingParams::default();
        for &l in &[0.0, 10.0, 123.0, 800.0] {
            let d = p.stub_delay(l, 0.012);
            let back = p.stub_length_for_delay(d, 0.012).expect("nonneg");
            assert!((back - l).abs() < 1e-9, "l={l} back={back}");
        }
        assert!(p.stub_length_for_delay(-1.0, 0.01).is_none());
    }
}
