//! Rotary traveling-wave clock rings: geometry, phase model, and the
//! flexible-tapping solver of the paper's Section III.
//!
//! A rotary clock ring is a pair of cross-connected differential
//! transmission-line loops. A square wave travels around the loop without
//! termination, so every point of the ring carries a distinct clock *phase*:
//! starting from a reference point with delay `t = 0`, the delay at arc
//! length `s` along the propagation direction is `t = ρ·s`, returning to the
//! reference with delay equal to the clock period `T`. Because the two loops
//! are cross-coupled, the *complementary* phase (180° apart) is available at
//! the physically identical location on the companion loop.
//!
//! The key enabling technique of the paper is **flexible tapping**
//! (Section III): instead of requiring a flip-flop to sit exactly on the
//! ring at the point whose phase matches its skew target, we solve
//!
//! ```text
//! t_f(x) = t0 + ρ·x + ½·r·c·l² + r·l·C_ff  =  t̂_f        (paper eq. 1)
//! ```
//!
//! for the tapping point `x` on each of the ring's 8 segments (4 sides × 2
//! phases), where `l = |x − x_f| + y_f` is the Manhattan length of the tap
//! wire. The wirelength of the best solution is the **tapping cost**.
//! The four solution cases of Fig. 2 (period borrowing, two roots, unique
//! root, and endpoint + wire detour/snaking) are all implemented in
//! [`tapping`].
//!
//! # Examples
//!
//! ```
//! use rotary_netlist::geom::{Point, Rect};
//! use rotary_ring::{RingArray, RingId, RingParams};
//!
//! let die = Rect::from_size(1000.0, 1000.0);
//! let array = RingArray::generate(die, 4, RingParams::default()); // 4×4 = 16 rings
//! assert_eq!(array.rings().len(), 16);
//!
//! // Tap a flip-flop near ring 0 with a 0.3 ns skew target.
//! let sol = array.ring(RingId(0)).tap_for_target(Point::new(260.0, 240.0), 0.012, 0.3);
//! assert!(sol.wirelength >= 0.0);
//! ```

pub mod array;
pub mod params;
pub mod ring;
pub mod tapping;

pub use array::{RingArray, RingId};
pub use params::RingParams;
pub use ring::{Ring, RingDirection, Segment};
pub use tapping::{TapCase, TapSolution};
