//! The flexible-tapping solver (paper Section III, Fig. 2).
//!
//! Given a flip-flop location, its clock-pin capacitance, and a clock-delay
//! target `t̂_f`, find the tapping point `p` on a ring such that the wave
//! delay at `p` plus the Elmore delay of the tap stub equals the target:
//!
//! ```text
//! t_f(x) = t0 + ρ·x + ½·r·c·l² + r·l·C_ff = t̂_f,    l = |x − x_f| + y_f
//! ```
//!
//! The curve `t_f(x)` is two parabolas joined at `x = x_f` (the
//! non-differentiable point of `|x − x_f|`). Depending on the target, the
//! paper distinguishes four cases, all implemented here:
//!
//! * **Case 1** — target below the curve: borrow an integer number of clock
//!   periods (reducing `t0` by `k·T` does not change the phase), minimizing
//!   `k`, then resolve.
//! * **Case 2** — two intersections: pick the one with smaller wirelength.
//! * **Case 3** — unique intersection.
//! * **Case 4** — target above the curve: tap at the far segment end and
//!   intentionally detour (snake) the tap wire until the Elmore delay makes
//!   up the difference.

use crate::ring::{Ring, Segment};
use rotary_netlist::geom::Point;
use serde::{Deserialize, Serialize};

/// Which of the paper's four solution cases produced a tap solution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TapCase {
    /// Period borrowing was required before an exact solution existed.
    PeriodBorrow,
    /// Two exact intersections; the smaller-wirelength one was taken.
    TwoSolutions,
    /// Unique exact intersection.
    Unique,
    /// No exact intersection at any allowed period shift; tap at the
    /// segment end with an intentional wire detour (snaking).
    Detour,
}

/// A solved tapping assignment for one flip-flop on one ring.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TapSolution {
    /// Tapping point on the ring (global coordinates, µm).
    pub point: Point,
    /// Total tap-wire length (the **tapping cost**), µm. For
    /// [`TapCase::Detour`] this exceeds the Manhattan distance.
    pub wirelength: f64,
    /// Which solution case applied.
    pub case: TapCase,
    /// Number of whole periods borrowed (`k` such that the equation was
    /// solved against `t̂ + k·T`).
    pub periods_borrowed: u32,
    /// Side index (0..4) of the chosen segment.
    pub side: u8,
    /// Whether the complementary-phase loop was tapped.
    pub complementary: bool,
}

/// Exact roots of `t_f(x) = target` on one segment, restricted to the
/// segment span. Returns up to two `(x, wirelength)` pairs.
fn exact_roots(
    seg: &Segment,
    ring: &Ring,
    xf: f64,
    yf: f64,
    sink_cap: f64,
    target: f64,
) -> Vec<(f64, f64)> {
    let p = ring.params();
    let rho = ring.rho();
    let b = seg.length();
    let a2 = 0.5 * p.wire_res * p.wire_cap; // A = ½rc
    let b1 = p.wire_res * sink_cap; // B = r·C_ff
    let base = a2 * yf * yf + b1 * yf + seg.t_start + rho * xf - target;
    let mut out = Vec::new();

    // Piece 1: x ≤ x_f, substitute u = x_f − x ≥ 0, l = u + y_f:
    //   A·u² + (2A·y_f + B − ρ)·u + base = 0, with x = x_f − u ∈ [0, min(b, x_f)].
    for u in quadratic_roots(a2, 2.0 * a2 * yf + b1 - rho, base) {
        if u >= -1e-9 {
            let x = xf - u;
            if (-1e-9..=b + 1e-9).contains(&x) && x <= xf + 1e-9 {
                out.push((x.clamp(0.0, b), u.max(0.0) + yf));
            }
        }
    }
    // Piece 2: x ≥ x_f, substitute v = x − x_f ≥ 0, l = v + y_f:
    //   A·v² + (2A·y_f + B + ρ)·v + base = 0, with x = x_f + v ∈ [max(0, x_f), b].
    for v in quadratic_roots(a2, 2.0 * a2 * yf + b1 + rho, base) {
        if v >= -1e-9 {
            let x = xf + v;
            if (-1e-9..=b + 1e-9).contains(&x) && x >= xf - 1e-9 {
                out.push((x.clamp(0.0, b), v.max(0.0) + yf));
            }
        }
    }
    // Deduplicate near-coincident roots (the joint point x = x_f can appear
    // in both pieces).
    out.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    out.dedup_by(|a, b| (a.0 - b.0).abs() < 1e-7);
    out
}

/// Real roots of `a·x² + b·x + c = 0` (also handles the linear case).
fn quadratic_roots(a: f64, b: f64, c: f64) -> Vec<f64> {
    if a.abs() < 1e-300 {
        if b.abs() < 1e-300 {
            return Vec::new();
        }
        return vec![-c / b];
    }
    let disc = b * b - 4.0 * a * c;
    if disc < 0.0 {
        return Vec::new();
    }
    let sq = disc.sqrt();
    // Numerically stable form.
    let q = -0.5 * (b + b.signum() * sq);
    if q == 0.0 {
        return vec![0.0];
    }
    let mut roots = vec![q / a, c / q];
    roots.dedup_by(|x, y| (*x - *y).abs() < 1e-12);
    roots
}

impl Ring {
    /// Solves the flexible-tapping problem for a flip-flop at `ff` with
    /// clock-pin capacitance `sink_cap` (pF) and clock-delay target
    /// `target` (ns, interpreted modulo the period).
    ///
    /// Evaluates all eight segments (four sides × two complementary phases)
    /// and returns the minimum-wirelength solution, exactly as Section III
    /// prescribes. The solver always succeeds: case 4 (wire detour) provides
    /// a fallback on every segment.
    ///
    /// # Examples
    ///
    /// ```
    /// use rotary_netlist::geom::Point;
    /// use rotary_ring::{Ring, RingDirection, RingParams};
    ///
    /// let ring = Ring::new(Point::new(100.0, 100.0), 80.0, RingDirection::Ccw,
    ///                      RingParams::default());
    /// let sol = ring.tap_for_target(Point::new(150.0, 150.0), 0.012, 0.40);
    /// // The tap point lies on the ring and satisfies the delay target.
    /// assert!(sol.wirelength > 0.0);
    /// ```
    pub fn tap_for_target(&self, ff: Point, sink_cap: f64, target: f64) -> TapSolution {
        let period = self.params().period;
        let tau = target.rem_euclid(period);
        let mut best: Option<TapSolution> = None;

        for seg in self.segments() {
            if let Some(sol) = self.tap_on_segment(&seg, ff, sink_cap, tau) {
                if best.is_none_or(|b| sol.wirelength < b.wirelength) {
                    best = Some(sol);
                }
            }
        }
        best.expect("detour fallback guarantees a solution on every segment")
    }

    /// Solves the tapping equation on a single segment. Public for the
    /// Fig. 2 reproduction (`tables fig2`), which sweeps one segment.
    pub fn tap_on_segment(
        &self,
        seg: &Segment,
        ff: Point,
        sink_cap: f64,
        tau: f64,
    ) -> Option<TapSolution> {
        let p = *self.params();
        let period = p.period;
        let (xf, yf) = seg.local_coords(ff);
        let b = seg.length();

        // Exact solve with minimal period borrowing (cases 1-3).
        for k in 0..=p.max_extra_periods {
            let target_k = tau + k as f64 * period;
            let roots = exact_roots(seg, self, xf, yf, sink_cap, target_k);
            if !roots.is_empty() {
                let &(x, wl) =
                    roots.iter().min_by(|a, b| a.1.partial_cmp(&b.1).unwrap()).expect("nonempty");
                let case = if k > 0 {
                    TapCase::PeriodBorrow
                } else if roots.len() >= 2 {
                    TapCase::TwoSolutions
                } else {
                    TapCase::Unique
                };
                return Some(TapSolution {
                    point: seg.point_at(x),
                    wirelength: wl,
                    case,
                    periods_borrowed: k,
                    side: seg.side,
                    complementary: seg.complementary,
                });
            }
        }

        // Case 4: tap at the far end (maximum base delay) and snake the
        // wire. Find the smallest k whose required stub length can at least
        // physically reach the flip-flop.
        let l_direct = (b - xf).abs() + yf;
        let d_min = p.stub_delay(l_direct, sink_cap);
        let base_end = seg.t_start + self.rho() * b;
        let k_needed = ((d_min + base_end - tau) / period).ceil().max(0.0) as u32;
        let target_k = tau + k_needed as f64 * period;
        let wl = p.stub_length_for_delay(target_k - base_end, sink_cap)?;
        Some(TapSolution {
            point: seg.point_at(b),
            wirelength: wl.max(l_direct),
            case: TapCase::Detour,
            periods_borrowed: k_needed,
            side: seg.side,
            complementary: seg.complementary,
        })
    }

    /// The delay seen at the flip-flop for a given tap solution — useful for
    /// verifying that a solution actually meets its target (modulo `T`).
    pub fn delay_through_tap(&self, sol: &TapSolution, sink_cap: f64) -> f64 {
        let base = self.delay_at(sol.point, sol.complementary);
        (base + self.params().stub_delay(sol.wirelength, sink_cap)).rem_euclid(self.params().period)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::RingDirection;
    use crate::RingParams;

    const CAP: f64 = 0.012;

    fn ring() -> Ring {
        Ring::new(Point::new(500.0, 500.0), 100.0, RingDirection::Ccw, RingParams::default())
    }

    fn assert_target_met(r: &Ring, ff: Point, target: f64) -> TapSolution {
        let sol = r.tap_for_target(ff, CAP, target);
        let got = r.delay_through_tap(&sol, CAP);
        let period = r.params().period;
        let tau = target.rem_euclid(period);
        let err = (got - tau).abs().min(period - (got - tau).abs());
        assert!(
            err < 1e-6,
            "target {tau} not met: got {got} (case {:?}, wl {})",
            sol.case,
            sol.wirelength
        );
        sol
    }

    #[test]
    fn targets_across_the_period_are_all_satisfiable() {
        let r = ring();
        let ff = Point::new(650.0, 520.0); // right of the ring
        for i in 0..20 {
            let target = i as f64 * 0.05;
            assert_target_met(&r, ff, target);
        }
    }

    #[test]
    fn flip_flop_inside_ring_is_satisfiable() {
        let r = ring();
        assert_target_met(&r, Point::new(500.0, 500.0), 0.37);
    }

    #[test]
    fn far_flip_flop_costs_more() {
        let r = ring();
        let near = r.tap_for_target(Point::new(610.0, 500.0), CAP, 0.25);
        let far = r.tap_for_target(Point::new(900.0, 500.0), CAP, 0.25);
        assert!(far.wirelength > near.wirelength);
    }

    #[test]
    fn detour_case_produces_longer_than_direct_wire() {
        // A flip-flop sitting ON the ring with a target just *below* the
        // local phase forces either period borrowing or a detour; either
        // way the target must still be met exactly.
        let r = ring();
        let ff = Point::new(400.0, 400.0); // the reference corner (t=0)
                                           // Target slightly less than the phase at the corner: needs wire.
        let sol = assert_target_met(&r, ff, 0.9999);
        assert!(sol.wirelength > 0.0);
    }

    #[test]
    fn complementary_phase_halves_wire_for_opposite_targets() {
        let r = ring();
        let ff = Point::new(420.0, 400.0);
        // Phase at ff's nearest primary point is small; a target near T/2
        // should be served by the complementary loop right there rather
        // than half-way around the ring.
        let sol = assert_target_met(&r, ff, 0.5 + 0.02 * 0.0);
        assert!(sol.complementary || sol.wirelength < r.side());
    }

    #[test]
    fn wirelength_at_least_manhattan_distance_to_tap() {
        let r = ring();
        for (fx, fy, t) in
            [(650.0, 520.0, 0.1), (450.0, 700.0, 0.6), (300.0, 300.0, 0.9), (500.0, 610.0, 0.33)]
        {
            let ff = Point::new(fx, fy);
            let sol = r.tap_for_target(ff, CAP, t);
            let direct = sol.point.manhattan(ff);
            assert!(sol.wirelength >= direct - 1e-6, "wl {} < direct {direct}", sol.wirelength);
        }
    }

    #[test]
    fn quadratic_roots_cover_degenerate_cases() {
        assert!(quadratic_roots(0.0, 0.0, 1.0).is_empty());
        assert_eq!(quadratic_roots(0.0, 2.0, -4.0), vec![2.0]);
        let mut r = quadratic_roots(1.0, -3.0, 2.0);
        r.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((r[0] - 1.0).abs() < 1e-12 && (r[1] - 2.0).abs() < 1e-12);
        assert!(quadratic_roots(1.0, 0.0, 1.0).is_empty()); // complex
    }

    #[test]
    fn tap_case_labels_match_geometry() {
        let r = ring();
        // A generous target reachable by two intersections on some segment
        // typically reports TwoSolutions or Unique, never Detour, when the
        // target sits inside the curve's range.
        let ff = Point::new(620.0, 560.0);
        let sol = r.tap_for_target(ff, CAP, 0.3);
        assert_ne!(sol.case, TapCase::Detour);
    }

    #[test]
    fn distant_flip_flop_with_tiny_target_borrows_periods() {
        // A flip-flop 3000 µm from the ring needs ≥ 0.7 ns of stub delay
        // just to arrive; a 0.01 ns target is only reachable by borrowing
        // whole periods (case 1).
        let r = ring();
        let ff = Point::new(3600.0, 500.0);
        let sol = r.tap_for_target(ff, CAP, 0.01);
        assert!(sol.periods_borrowed >= 1, "case {:?}", sol.case);
        let got = r.delay_through_tap(&sol, CAP);
        let err = (got - 0.01).abs().min(1.0 - (got - 0.01).abs());
        assert!(err < 1e-6);
    }

    #[test]
    fn larger_period_budget_never_hurts() {
        let tight = RingParams { max_extra_periods: 0, ..RingParams::default() };
        let loose = RingParams { max_extra_periods: 5, ..RingParams::default() };
        let rt = Ring::new(Point::new(500.0, 500.0), 100.0, RingDirection::Ccw, tight);
        let rl = Ring::new(Point::new(500.0, 500.0), 100.0, RingDirection::Ccw, loose);
        for t in [0.05, 0.3, 0.77] {
            let ff = Point::new(900.0, 480.0);
            let a = rt.tap_for_target(ff, CAP, t);
            let b = rl.tap_for_target(ff, CAP, t);
            assert!(b.wirelength <= a.wirelength + 1e-9);
        }
    }

    #[test]
    fn solution_point_is_on_ring_boundary() {
        let r = ring();
        let sol = r.tap_for_target(Point::new(777.0, 333.0), CAP, 0.77);
        let o = r.outline();
        let on_x = (sol.point.x - o.lo.x).abs() < 1e-6 || (sol.point.x - o.hi.x).abs() < 1e-6;
        let on_y = (sol.point.y - o.lo.y).abs() < 1e-6 || (sol.point.y - o.hi.y).abs() < 1e-6;
        assert!(on_x || on_y, "tap {:?} not on boundary", sol.point);
    }
}
