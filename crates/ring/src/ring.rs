//! A single rotary clock ring: square layout, propagation direction,
//! per-segment phase, and nearest-point queries.

use crate::params::RingParams;
use rotary_netlist::geom::{Point, Rect};
use serde::{Deserialize, Serialize};

/// Propagation direction of the traveling wave around a ring.
///
/// In a ring array (Fig. 1(b) of the paper) adjacent rings rotate in
/// opposite directions so that abutting wire segments carry equal phase and
/// can be hard-wired together for phase averaging.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RingDirection {
    /// Counter-clockwise propagation (reference corner: lower-left).
    Ccw,
    /// Clockwise propagation (reference corner: lower-left).
    Cw,
}

/// One of the eight tapping segments of a ring: four sides × two
/// complementary phases.
///
/// The two cross-coupled loops of a rotary ring run physically side by side,
/// so both the phase `φ` and its complement `φ + 180°` are available at
/// (essentially) every geometric location. We model this as two co-located
/// segments per side whose `t_start` differ by half a period.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// Start point (global coordinates, µm).
    pub start: Point,
    /// End point; segments are axis-aligned.
    pub end: Point,
    /// Clock signal delay at `start`, in `[0, T)` ns.
    pub t_start: f64,
    /// Side index 0..4 within the ring (in propagation order).
    pub side: u8,
    /// `true` for the complementary-phase loop (+T/2).
    pub complementary: bool,
}

impl Segment {
    /// Length of the segment in µm.
    pub fn length(&self) -> f64 {
        self.start.manhattan(self.end)
    }

    /// Unit direction vector of the segment (axis aligned).
    pub fn direction(&self) -> (f64, f64) {
        let len = self.length();
        ((self.end.x - self.start.x) / len, (self.end.y - self.start.y) / len)
    }

    /// Local coordinates of point `p` relative to the segment: `(x_f, y_f)`
    /// where `x_f` is the (signed) projection onto the segment axis measured
    /// from `start`, and `y_f ≥ 0` the perpendicular distance. The Manhattan
    /// distance from a tap at local coordinate `x` to `p` is
    /// `|x − x_f| + y_f`, exactly the `l` of paper eq. (1).
    pub fn local_coords(&self, p: Point) -> (f64, f64) {
        let (dx, dy) = self.direction();
        let vx = p.x - self.start.x;
        let vy = p.y - self.start.y;
        let along = vx * dx + vy * dy;
        let perp = (vx * dy - vy * dx).abs();
        (along, perp)
    }

    /// Global coordinates of the point at local coordinate `x` (clamped to
    /// the segment).
    pub fn point_at(&self, x: f64) -> Point {
        let x = x.clamp(0.0, self.length());
        let (dx, dy) = self.direction();
        Point::new(self.start.x + dx * x, self.start.y + dy * x)
    }
}

/// A square rotary clock ring.
///
/// The wave starts at the lower-left **reference corner** with delay `t = 0`
/// (all rings of an array share equal-phase reference points, the small
/// triangles of Fig. 1(b)) and travels around the perimeter in the ring's
/// [`RingDirection`], accumulating delay `ρ = T / perimeter` per µm.
///
/// # Examples
///
/// ```
/// use rotary_netlist::geom::Point;
/// use rotary_ring::{Ring, RingDirection, RingParams};
///
/// let ring = Ring::new(Point::new(100.0, 100.0), 80.0, RingDirection::Ccw,
///                      RingParams::default());
/// assert_eq!(ring.perimeter(), 4.0 * 160.0);
/// let segments = ring.segments();
/// assert_eq!(segments.len(), 8);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ring {
    center: Point,
    half_side: f64,
    direction: RingDirection,
    params: RingParams,
}

impl Ring {
    /// Creates a ring centered at `center` with side length `2·half_side`.
    ///
    /// # Panics
    ///
    /// Panics if `half_side` is not positive.
    pub fn new(
        center: Point,
        half_side: f64,
        direction: RingDirection,
        params: RingParams,
    ) -> Self {
        assert!(half_side > 0.0, "ring must have positive size");
        Self { center, half_side, direction, params }
    }

    /// Ring center.
    pub fn center(&self) -> Point {
        self.center
    }

    /// Side length of the square ring.
    pub fn side(&self) -> f64 {
        2.0 * self.half_side
    }

    /// Ring perimeter (µm).
    pub fn perimeter(&self) -> f64 {
        4.0 * self.side()
    }

    /// Propagation direction.
    pub fn direction(&self) -> RingDirection {
        self.direction
    }

    /// Electrical parameters.
    pub fn params(&self) -> &RingParams {
        &self.params
    }

    /// Bounding rectangle of the ring.
    pub fn outline(&self) -> Rect {
        Rect::new(
            Point::new(self.center.x - self.half_side, self.center.y - self.half_side),
            Point::new(self.center.x + self.half_side, self.center.y + self.half_side),
        )
    }

    /// Delay accumulated per µm of ring wire: `ρ = T / perimeter`.
    ///
    /// The ring's physical dimensions are chosen at design time so one trip
    /// around the loop takes exactly one period (Section II).
    pub fn rho(&self) -> f64 {
        self.params.period / self.perimeter()
    }

    /// The four corners in propagation order, starting at the lower-left
    /// reference corner.
    pub fn corners(&self) -> [Point; 4] {
        let h = self.half_side;
        let c = self.center;
        let ll = Point::new(c.x - h, c.y - h);
        let lr = Point::new(c.x + h, c.y - h);
        let ur = Point::new(c.x + h, c.y + h);
        let ul = Point::new(c.x - h, c.y + h);
        match self.direction {
            RingDirection::Ccw => [ll, lr, ur, ul],
            RingDirection::Cw => [ll, ul, ur, lr],
        }
    }

    /// The eight tapping segments: four sides in propagation order with
    /// cumulative start delays, plus the four complementary-phase twins
    /// (`t_start + T/2 mod T`).
    pub fn segments(&self) -> Vec<Segment> {
        let corners = self.corners();
        let side_len = self.side();
        let rho = self.rho();
        let period = self.params.period;
        let mut out = Vec::with_capacity(8);
        for k in 0..4 {
            let start = corners[k];
            let end = corners[(k + 1) % 4];
            let t_start = (k as f64) * side_len * rho;
            out.push(Segment {
                start,
                end,
                t_start: t_start % period,
                side: k as u8,
                complementary: false,
            });
            out.push(Segment {
                start,
                end,
                t_start: (t_start + 0.5 * period) % period,
                side: k as u8,
                complementary: true,
            });
        }
        out
    }

    /// The point on the ring closest (Manhattan) to `p`, together with its
    /// distance. This is the point `c` of the paper's cost-driven skew
    /// optimization (Section VII).
    pub fn nearest_point(&self, p: Point) -> (Point, f64) {
        let o = self.outline();
        if !o.contains(p) {
            let q = o.clamp(p);
            return (q, p.manhattan(q));
        }
        // Inside: project to the nearest side.
        let dl = p.x - o.lo.x;
        let dr = o.hi.x - p.x;
        let db = p.y - o.lo.y;
        let dt = o.hi.y - p.y;
        let m = dl.min(dr).min(db).min(dt);
        let q = if m == dl {
            Point::new(o.lo.x, p.y)
        } else if m == dr {
            Point::new(o.hi.x, p.y)
        } else if m == db {
            Point::new(p.x, o.lo.y)
        } else {
            Point::new(p.x, o.hi.y)
        };
        (q, m)
    }

    /// Clock delay of the ring wave at a point `q` on the ring boundary,
    /// for the primary (`complementary = false`) or complementary loop.
    /// `q` is snapped to the boundary first.
    pub fn delay_at(&self, q: Point, complementary: bool) -> f64 {
        let corners = self.corners();
        let side_len = self.side();
        let rho = self.rho();
        // Find the side whose span contains q (after snapping).
        let (snapped, _) = self.nearest_point(q);
        let mut best = (f64::INFINITY, 0.0); // (distance to side, arc length)
        for k in 0..4 {
            let a = corners[k];
            let b = corners[(k + 1) % 4];
            // Axis-aligned side: distance from snapped point to the side.
            let (lo_x, hi_x) = (a.x.min(b.x), a.x.max(b.x));
            let (lo_y, hi_y) = (a.y.min(b.y), a.y.max(b.y));
            let cx = snapped.x.clamp(lo_x, hi_x);
            let cy = snapped.y.clamp(lo_y, hi_y);
            let d = (snapped.x - cx).abs() + (snapped.y - cy).abs();
            if d < best.0 {
                let along = (cx - a.x).abs() + (cy - a.y).abs();
                best = (d, k as f64 * side_len + along);
            }
        }
        let t = best.1 * rho + if complementary { 0.5 * self.params.period } else { 0.0 };
        t % self.params.period
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_ring(dir: RingDirection) -> Ring {
        Ring::new(Point::new(50.0, 50.0), 50.0, dir, RingParams::default())
    }

    #[test]
    fn rho_times_perimeter_is_period() {
        let r = unit_ring(RingDirection::Ccw);
        assert!((r.rho() * r.perimeter() - r.params().period).abs() < 1e-12);
    }

    #[test]
    fn segments_cover_perimeter_with_increasing_delay() {
        let r = unit_ring(RingDirection::Ccw);
        let segs = r.segments();
        assert_eq!(segs.len(), 8);
        let primary: Vec<_> = segs.iter().filter(|s| !s.complementary).collect();
        for (k, s) in primary.iter().enumerate() {
            assert!((s.t_start - k as f64 * 0.25 * r.params().period).abs() < 1e-12);
            assert_eq!(s.length(), r.side());
        }
        let comp: Vec<_> = segs.iter().filter(|s| s.complementary).collect();
        for (p, c) in primary.iter().zip(&comp) {
            let diff = (c.t_start - p.t_start).rem_euclid(r.params().period);
            assert!((diff - 0.5 * r.params().period).abs() < 1e-12);
        }
    }

    #[test]
    fn cw_and_ccw_reference_same_corner() {
        let a = unit_ring(RingDirection::Ccw);
        let b = unit_ring(RingDirection::Cw);
        assert_eq!(a.corners()[0], b.corners()[0]);
        // Second corner differs: wave goes the other way.
        assert_ne!(a.corners()[1], b.corners()[1]);
    }

    #[test]
    fn nearest_point_outside_clamps() {
        let r = unit_ring(RingDirection::Ccw);
        let (q, d) = r.nearest_point(Point::new(150.0, 50.0));
        assert_eq!(q, Point::new(100.0, 50.0));
        assert_eq!(d, 50.0);
    }

    #[test]
    fn nearest_point_inside_projects_to_closest_side() {
        let r = unit_ring(RingDirection::Ccw);
        let (q, d) = r.nearest_point(Point::new(10.0, 50.0));
        assert_eq!(q, Point::new(0.0, 50.0));
        assert_eq!(d, 10.0);
    }

    #[test]
    fn delay_at_reference_corner_is_zero() {
        let r = unit_ring(RingDirection::Ccw);
        let t = r.delay_at(Point::new(0.0, 0.0), false);
        assert!(t.abs() < 1e-12);
        let tc = r.delay_at(Point::new(0.0, 0.0), true);
        assert!((tc - 0.5).abs() < 1e-12);
    }

    #[test]
    fn delay_quarter_way_round() {
        let r = unit_ring(RingDirection::Ccw);
        // CCW: first side goes ll -> lr; its far end is a quarter period.
        let t = r.delay_at(Point::new(100.0, 0.0), false);
        assert!((t - 0.25).abs() < 1e-12);
        // Mid of first side: eighth of a period.
        let t2 = r.delay_at(Point::new(50.0, 0.0), false);
        assert!((t2 - 0.125).abs() < 1e-12);
    }

    #[test]
    fn local_coords_roundtrip() {
        let r = unit_ring(RingDirection::Ccw);
        let seg = &r.segments()[0]; // bottom side, ll -> lr
        let p = Point::new(30.0, 20.0);
        let (x, y) = seg.local_coords(p);
        assert!((x - 30.0).abs() < 1e-12);
        assert!((y - 20.0).abs() < 1e-12);
        assert_eq!(seg.point_at(x), Point::new(30.0, 0.0));
        // Manhattan distance identity: |x - x_f| + y_f.
        let tap = seg.point_at(45.0);
        assert!((tap.manhattan(p) - ((45.0 - x).abs() + y)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive size")]
    fn rejects_degenerate_ring() {
        let _ = Ring::new(Point::new(0.0, 0.0), 0.0, RingDirection::Ccw, RingParams::default());
    }
}
