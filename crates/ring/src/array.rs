//! The rotary clock ring array (Fig. 1(b) of the paper).
//!
//! Rings are laid out on a `k × k` grid covering the die. Adjacent rings
//! rotate in opposite directions so that abutting segments carry equal
//! phase; all rings share equal-phase reference points (the triangles of
//! Fig. 1(b)), which we model as delay `t_ref = 0` at every ring's
//! lower-left corner.

use crate::params::RingParams;
use crate::ring::{Ring, RingDirection};
use rotary_netlist::geom::{Point, Rect};
use serde::{Deserialize, Serialize};

/// Identifier of a ring within its [`RingArray`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RingId(pub u32);

impl RingId {
    /// Ring index as a `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for RingId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A `k × k` array of rotary clock rings covering a die.
///
/// # Examples
///
/// ```
/// use rotary_netlist::geom::Rect;
/// use rotary_ring::{RingArray, RingParams};
///
/// let array = RingArray::generate(Rect::from_size(1000.0, 1000.0), 5,
///                                 RingParams::default());
/// assert_eq!(array.rings().len(), 25);
/// let total: usize = array.capacities().iter().sum();
/// assert!(total > 0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RingArray {
    rings: Vec<Ring>,
    grid: usize,
    die: Rect,
    params: RingParams,
}

impl RingArray {
    /// Generates a `grid × grid` ring array covering `die`.
    ///
    /// Each ring occupies `params.fill_factor` of its grid tile. Ring
    /// `(i, j)` (column `i`, row `j`) has id `j·grid + i` and rotates CCW
    /// when `i + j` is even, CW otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `grid == 0`.
    pub fn generate(die: Rect, grid: usize, params: RingParams) -> Self {
        assert!(grid > 0, "ring grid must be non-empty");
        let tile_w = die.width() / grid as f64;
        let tile_h = die.height() / grid as f64;
        let half = 0.5 * params.fill_factor * tile_w.min(tile_h);
        let mut rings = Vec::with_capacity(grid * grid);
        for j in 0..grid {
            for i in 0..grid {
                let center = Point::new(
                    die.lo.x + (i as f64 + 0.5) * tile_w,
                    die.lo.y + (j as f64 + 0.5) * tile_h,
                );
                let dir = if (i + j) % 2 == 0 { RingDirection::Ccw } else { RingDirection::Cw };
                rings.push(Ring::new(center, half, dir, params));
            }
        }
        Self { rings, grid, die, params }
    }

    /// All rings, indexed by [`RingId`].
    pub fn rings(&self) -> &[Ring] {
        &self.rings
    }

    /// The ring with the given id.
    pub fn ring(&self, id: RingId) -> &Ring {
        &self.rings[id.index()]
    }

    /// Grid dimension `k` (the array is `k × k`).
    pub fn grid(&self) -> usize {
        self.grid
    }

    /// The die the array covers.
    pub fn die(&self) -> Rect {
        self.die
    }

    /// Shared electrical parameters.
    pub fn params(&self) -> &RingParams {
        &self.params
    }

    /// Per-ring flip-flop capacity `U_j = ⌊perimeter / tap_pitch⌋`
    /// (Section V: "each ring j has limited space and can accommodate no
    /// more than U_j flip-flops").
    pub fn capacities(&self) -> Vec<usize> {
        self.rings
            .iter()
            .map(|r| (r.perimeter() / self.params.tap_pitch).floor() as usize)
            .collect()
    }

    /// The ring whose center is nearest (Manhattan) to `p`.
    pub fn nearest_ring(&self, p: Point) -> RingId {
        let (idx, _) = self
            .rings
            .iter()
            .enumerate()
            .map(|(i, r)| (i, r.center().manhattan(p)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .expect("array is non-empty");
        RingId(idx as u32)
    }

    /// The `k` rings nearest to `p`, sorted by boundary distance — the
    /// candidate set used to prune assignment arcs (Section V: "if a
    /// flip-flop and a ring are too far away from each other, it is not
    /// necessary to insert an arc between them").
    pub fn candidate_rings(&self, p: Point, k: usize) -> Vec<RingId> {
        self.candidate_rings_with_margin(p, k).0
    }

    /// [`RingArray::candidate_rings`] plus the list's *stability margin*:
    /// the smallest gap between consecutive sorted boundary distances over
    /// the first `k + 1` rings. Boundary distance is 1-Lipschitz in the
    /// query point (Manhattan), so any query within *half* this margin of
    /// `p` provably returns the identical ordered list — every comparison
    /// that fixed the order holds strictly — which is what lets callers
    /// cache the list across small placement drifts. Infinite with a
    /// single ring; zero on tied distances (never reusable by drift).
    pub fn candidate_rings_with_margin(&self, p: Point, k: usize) -> (Vec<RingId>, f64) {
        let mut by_dist: Vec<(usize, f64)> =
            self.rings.iter().enumerate().map(|(i, r)| (i, r.nearest_point(p).1)).collect();
        by_dist.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        let take = k.max(1);
        let probe = take.saturating_add(1).min(by_dist.len());
        let margin =
            by_dist[..probe].windows(2).map(|w| w[1].1 - w[0].1).fold(f64::INFINITY, f64::min);
        (by_dist.into_iter().take(take).map(|(i, _)| RingId(i as u32)).collect(), margin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn array() -> RingArray {
        RingArray::generate(Rect::from_size(1000.0, 1000.0), 4, RingParams::default())
    }

    #[test]
    fn generates_grid_squared_rings() {
        assert_eq!(array().rings().len(), 16);
    }

    #[test]
    fn adjacent_rings_counter_rotate() {
        let a = array();
        // Ring 0 at (0,0) is CCW; ring 1 at (1,0) is CW.
        assert_eq!(a.ring(RingId(0)).direction(), RingDirection::Ccw);
        assert_eq!(a.ring(RingId(1)).direction(), RingDirection::Cw);
        assert_eq!(a.ring(RingId(4)).direction(), RingDirection::Cw);
        assert_eq!(a.ring(RingId(5)).direction(), RingDirection::Ccw);
    }

    #[test]
    fn rings_stay_inside_their_tiles() {
        let a = array();
        for r in a.rings() {
            let o = r.outline();
            assert!(a.die().contains(o.lo) && a.die().contains(o.hi));
        }
        // Tile width 250, fill 0.85 ⇒ side 212.5.
        assert!((a.ring(RingId(0)).side() - 212.5).abs() < 1e-9);
    }

    #[test]
    fn capacities_scale_with_perimeter() {
        let a = array();
        let caps = a.capacities();
        assert!(caps.iter().all(|&u| u == caps[0]));
        assert_eq!(caps[0], (4.0 * 212.5 / 25.0) as usize);
    }

    #[test]
    fn nearest_ring_is_the_containing_tile() {
        let a = array();
        assert_eq!(a.nearest_ring(Point::new(100.0, 100.0)), RingId(0));
        assert_eq!(a.nearest_ring(Point::new(900.0, 100.0)), RingId(3));
        assert_eq!(a.nearest_ring(Point::new(100.0, 900.0)), RingId(12));
    }

    #[test]
    fn candidate_rings_sorted_by_distance() {
        let a = array();
        let cands = a.candidate_rings(Point::new(125.0, 125.0), 4);
        assert_eq!(cands[0], RingId(0));
        assert_eq!(cands.len(), 4);
        let d = |id: RingId| a.ring(id).nearest_point(Point::new(125.0, 125.0)).1;
        for w in cands.windows(2) {
            assert!(d(w[0]) <= d(w[1]));
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty_grid() {
        let _ = RingArray::generate(Rect::from_size(10.0, 10.0), 0, RingParams::default());
    }
}
