//! Power models of the paper's Section VIII.
//!
//! Dynamic power follows eq. (8):
//! `P_dynamic = ½·α·V_dd²·f_clk·C_load`, with `α = 1` for clock nets and
//! `α = 0.15` for signal nets \[30\]. The signal-net load has three
//! components — interconnect capacitance, logic input capacitance, and the
//! input capacitance of repeaters whose count is estimated at the
//! floorplan level \[31\] (one repeater every critical-length interval).
//! Leakage follows eq. (9) and is unaffected by the flow (gate sizes never
//! change), so the experiments report dynamic power only; we still expose
//! it for completeness.
//!
//! # Examples
//!
//! ```
//! use rotary_netlist::BenchmarkSuite;
//! use rotary_power::PowerModel;
//! use rotary_timing::Technology;
//!
//! let c = BenchmarkSuite::S9234.circuit(1);
//! let model = PowerModel::new(Technology::default());
//! let signal = model.signal_power(&c);
//! assert!(signal.total_mw > 0.0);
//! ```

use rotary_netlist::{CellKind, Circuit};
use rotary_timing::Technology;
use serde::{Deserialize, Serialize};

/// Breakdown of a power estimate, mW.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PowerBreakdown {
    /// Interconnect (wire capacitance) component.
    pub wire_mw: f64,
    /// Gate/pin capacitance component.
    pub pin_mw: f64,
    /// Estimated repeater component.
    pub buffer_mw: f64,
    /// Sum of the components.
    pub total_mw: f64,
    /// Number of repeaters estimated.
    pub buffers: usize,
}

/// Power estimator parameterized by a [`Technology`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    tech: Technology,
}

impl PowerModel {
    /// Creates a model over the given technology.
    pub fn new(tech: Technology) -> Self {
        Self { tech }
    }

    /// The underlying technology constants.
    pub fn tech(&self) -> &Technology {
        &self.tech
    }

    /// Dynamic power of the **signal nets** of a placed circuit:
    /// interconnect + logic-pin + estimated repeater capacitance at
    /// `α = signal_activity`.
    pub fn signal_power(&self, circuit: &Circuit) -> PowerBreakdown {
        let mut wire_cap = 0.0;
        let mut pin_cap = 0.0;
        let mut buffers = 0usize;
        for i in 0..circuit.net_count() {
            let net = circuit.net(rotary_netlist::NetId(i as u32));
            let dp = circuit.position(net.driver);
            for &s in &net.sinks {
                let l = dp.manhattan(circuit.position(s));
                wire_cap += self.tech.wire_cap * l;
                pin_cap += circuit.cell(s).input_cap;
                buffers += self.tech.buffer_count(l);
            }
        }
        let buffer_cap = buffers as f64 * self.tech.buffer_cap;
        self.breakdown(self.tech.signal_activity, wire_cap, pin_cap, buffer_cap, buffers)
    }

    /// Dynamic power of the **rotary clock net**: the tapping wires from
    /// the rings plus the flip-flop clock pins, at `α = clock_activity`.
    ///
    /// `tap_wirelengths[i]` is the tapping cost of flip-flop `i` (indexed
    /// like [`Circuit::flip_flops`]).
    pub fn rotary_clock_power(&self, circuit: &Circuit, tap_wirelengths: &[f64]) -> PowerBreakdown {
        let ffs = circuit.flip_flops();
        assert_eq!(ffs.len(), tap_wirelengths.len(), "one tapping wirelength per flip-flop");
        let wire_cap: f64 = tap_wirelengths.iter().map(|l| self.tech.wire_cap * l).sum();
        let pin_cap: f64 = ffs.iter().map(|&f| circuit.cell(f).input_cap).sum();
        self.breakdown(self.tech.clock_activity, wire_cap, pin_cap, 0.0, 0)
    }

    /// Dynamic power of a **conventional clock tree** with total switched
    /// capacitance `tree_cap` (wire + sinks), at `α = clock_activity`.
    /// Used as the conventional-clocking reference.
    pub fn tree_clock_power(&self, tree_cap: f64) -> f64 {
        self.tech.dynamic_power(self.tech.clock_activity, tree_cap)
    }

    /// Leakage power per eq. (9): `V_dd·I_off·(S + N_F·S_F)` where `S` is
    /// the total inverter size and `S_F` the flip-flop gate size (sizes in
    /// µm of gate width). Constant across the flow.
    pub fn leakage_power(&self, total_inverter_size: f64, flip_flops: usize, ff_size: f64) -> f64 {
        self.tech.vdd
            * self.tech.leak_current
            * (total_inverter_size + flip_flops as f64 * ff_size)
            * 1000.0 // mA·V → mW
    }

    fn breakdown(
        &self,
        activity: f64,
        wire_cap: f64,
        pin_cap: f64,
        buffer_cap: f64,
        buffers: usize,
    ) -> PowerBreakdown {
        let wire_mw = self.tech.dynamic_power(activity, wire_cap);
        let pin_mw = self.tech.dynamic_power(activity, pin_cap);
        let buffer_mw = self.tech.dynamic_power(activity, buffer_cap);
        PowerBreakdown {
            wire_mw,
            pin_mw,
            buffer_mw,
            total_mw: wire_mw + pin_mw + buffer_mw,
            buffers,
        }
    }

    /// Total flip-flop clock-pin capacitance of a circuit, pF.
    pub fn flip_flop_cap(&self, circuit: &Circuit) -> f64 {
        circuit.cells.iter().filter(|c| c.kind == CellKind::FlipFlop).map(|c| c.input_cap).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotary_netlist::geom::{Point, Rect};
    use rotary_netlist::{Cell, Net};

    fn cell(kind: CellKind) -> Cell {
        Cell {
            kind,
            width: 2.0,
            height: 8.0,
            input_cap: 0.01,
            drive_resistance: 2.0,
            intrinsic_delay: 0.05,
        }
    }

    fn tiny() -> Circuit {
        let mut c = Circuit::new("t", Rect::from_size(4000.0, 4000.0));
        let ff = c.add_cell(cell(CellKind::FlipFlop), Point::new(0.0, 0.0));
        let g = c.add_cell(cell(CellKind::Combinational), Point::new(2000.0, 0.0));
        c.add_net(Net { driver: ff, sinks: vec![g] });
        c
    }

    #[test]
    fn signal_power_counts_wire_pin_and_buffers() {
        let c = tiny();
        let m = PowerModel::new(Technology::default());
        let p = m.signal_power(&c);
        // 2000 µm wire with 1500 µm buffer interval ⇒ 1 repeater.
        assert_eq!(p.buffers, 1);
        assert!(p.wire_mw > 0.0 && p.pin_mw > 0.0 && p.buffer_mw > 0.0);
        assert!((p.total_mw - (p.wire_mw + p.pin_mw + p.buffer_mw)).abs() < 1e-12);
    }

    #[test]
    fn clock_activity_dominates_signal_activity() {
        let c = tiny();
        let m = PowerModel::new(Technology::default());
        // Same capacitance switched as clock costs 1/0.15 ≈ 6.7× more.
        let sig = m.signal_power(&c);
        let clk = m.rotary_clock_power(&c, &[2000.0]);
        let cap_sig = sig.wire_mw;
        let cap_clk = clk.wire_mw;
        assert!((cap_clk / cap_sig - 1.0 / 0.15).abs() < 1e-9);
    }

    #[test]
    fn shorter_taps_cost_less_power() {
        let c = tiny();
        let m = PowerModel::new(Technology::default());
        let long = m.rotary_clock_power(&c, &[500.0]);
        let short = m.rotary_clock_power(&c, &[100.0]);
        assert!(short.total_mw < long.total_mw);
        // Pin power identical; only wire differs.
        assert!((short.pin_mw - long.pin_mw).abs() < 1e-12);
    }

    #[test]
    fn tree_power_proportional_to_cap() {
        let m = PowerModel::new(Technology::default());
        assert!((m.tree_clock_power(4.0) - 2.0 * m.tree_clock_power(2.0)).abs() < 1e-12);
    }

    #[test]
    fn leakage_constant_in_wirelength() {
        let m = PowerModel::new(Technology::default());
        let a = m.leakage_power(1000.0, 100, 4.0);
        assert!(a > 0.0);
        // Does not depend on any wirelength argument by signature.
    }

    #[test]
    #[should_panic(expected = "per flip-flop")]
    fn mismatched_tap_lengths_panic() {
        let c = tiny();
        let m = PowerModel::new(Technology::default());
        let _ = m.rotary_clock_power(&c, &[1.0, 2.0]);
    }
}
