//! End-to-end stage benchmarks: initial vs incremental placement, the
//! clock-tree baseline, and the full Fig. 3 flow on the small suites —
//! the runtime split behind Table IV's "Stg 2-5" vs "mPL" columns.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rotary_bench::TABLE_SEED;
use rotary_core::flow::{Flow, FlowConfig};
use rotary_cts::ClockTree;
use rotary_netlist::BenchmarkSuite;
use rotary_place::{Placer, PlacerConfig};
use rotary_timing::Technology;

fn bench_placement(c: &mut Criterion) {
    let suite = BenchmarkSuite::S9234;
    c.bench_function("place/initial_s9234", |b| {
        b.iter_batched(
            || suite.circuit(TABLE_SEED),
            |mut circuit| {
                std::hint::black_box(Placer::new(PlacerConfig::default()).place(&mut circuit))
            },
            BatchSize::SmallInput,
        )
    });
    let mut placed = suite.circuit(TABLE_SEED);
    Placer::new(PlacerConfig::default()).place(&mut placed);
    c.bench_function("place/incremental_s9234", |b| {
        b.iter_batched(
            || placed.clone(),
            |mut circuit| {
                std::hint::black_box(
                    Placer::new(PlacerConfig::default()).place_incremental(&mut circuit, &[]),
                )
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_cts(c: &mut Criterion) {
    let mut placed = BenchmarkSuite::S5378.circuit(TABLE_SEED);
    Placer::new(PlacerConfig::default()).place(&mut placed);
    c.bench_function("cts/zero_skew_tree_s5378", |b| {
        b.iter(|| std::hint::black_box(ClockTree::build(&placed, &Technology::default())))
    });
}

fn bench_full_flow(c: &mut Criterion) {
    let suite = BenchmarkSuite::S9234;
    c.bench_function("flow/full_s9234", |b| {
        b.iter_batched(
            || suite.circuit(TABLE_SEED),
            |mut circuit| {
                std::hint::black_box(
                    Flow::new(FlowConfig::default()).run(&mut circuit, suite.ring_grid()),
                )
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = flow_stages;
    config = Criterion::default().sample_size(10);
    targets = bench_placement, bench_cts, bench_full_flow
}
criterion_main!(flow_stages);
