//! Criterion micro-benchmarks of the optimization kernels: tapping solver,
//! min-cost flow assignment, LP relaxation + greedy rounding, and the skew
//! schedulers. These are the per-stage costs behind the CPU columns of
//! Tables I and III–V.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rotary_bench::{placed_circuit, TABLE_SEED};
use rotary_core::assign::{assign_min_max_cap, assign_network_flow};
use rotary_core::skew::{max_slack_schedule, weighted_schedule};
use rotary_core::tapping::CandidateCosts;
use rotary_netlist::geom::Point;
use rotary_netlist::BenchmarkSuite;
use rotary_ring::{Ring, RingArray, RingDirection, RingParams};
use rotary_timing::{SequentialGraph, Technology};

fn bench_tapping(c: &mut Criterion) {
    let ring = Ring::new(Point::new(500.0, 500.0), 150.0, RingDirection::Ccw, RingParams::default());
    c.bench_function("tapping/solve_one_flip_flop", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = k.wrapping_add(1);
            let ff = Point::new(300.0 + (k % 400) as f64, 250.0 + (k % 300) as f64);
            let target = (k % 100) as f64 / 100.0;
            std::hint::black_box(ring.tap_for_target(ff, 0.012, target))
        })
    });
}

fn setup_costs(suite: BenchmarkSuite) -> (CandidateCosts, Vec<usize>, usize) {
    let circuit = placed_circuit(suite);
    let tech = Technology::default();
    let graph = SequentialGraph::extract(&circuit, &tech);
    let schedule = max_slack_schedule(&graph, &tech);
    let params = RingParams { period: schedule.period, ..RingParams::default() };
    let array = RingArray::generate(circuit.die, suite.ring_grid(), params);
    let costs = CandidateCosts::compute(&circuit, &array, &schedule, 9);
    let caps = array.capacities();
    let n = array.rings().len();
    (costs, caps, n)
}

fn bench_assignment(c: &mut Criterion) {
    let (costs, caps, n_rings) = setup_costs(BenchmarkSuite::S9234);
    c.bench_function("assign/network_flow_s9234", |b| {
        b.iter_batched(
            || costs.clone(),
            |costs| std::hint::black_box(assign_network_flow(&costs, &caps).expect("feasible")),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("assign/min_max_cap_lp_s9234", |b| {
        b.iter_batched(
            || costs.clone(),
            |costs| std::hint::black_box(assign_min_max_cap(&costs, n_rings).expect("solved")),
            BatchSize::SmallInput,
        )
    });
}

fn bench_skew(c: &mut Criterion) {
    let circuit = placed_circuit(BenchmarkSuite::S9234);
    let tech = Technology::default();
    let graph = SequentialGraph::extract(&circuit, &tech);
    c.bench_function("skew/max_slack_s9234", |b| {
        b.iter(|| std::hint::black_box(max_slack_schedule(&graph, &tech)))
    });
    let schedule = max_slack_schedule(&graph, &tech);
    let tech_eff = Technology { clock_period: schedule.period, ..tech };
    let n = graph.flip_flops().len();
    let ideal: Vec<f64> = (0..n).map(|i| 0.13 * (i % 7) as f64).collect();
    let weight: Vec<f64> = (0..n).map(|i| 10.0 + (i % 5) as f64).collect();
    c.bench_function("skew/weighted_dual_s9234", |b| {
        b.iter(|| {
            std::hint::black_box(weighted_schedule(&graph, &tech_eff, &ideal, &weight, 0.0))
        })
    });
}

fn bench_sta(c: &mut Criterion) {
    let circuit = placed_circuit(BenchmarkSuite::S9234);
    let tech = Technology::default();
    c.bench_function("sta/sequential_graph_s9234", |b| {
        b.iter(|| std::hint::black_box(SequentialGraph::extract(&circuit, &tech)))
    });
    let _ = TABLE_SEED;
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(10);
    targets = bench_tapping, bench_assignment, bench_skew, bench_sta
}
criterion_main!(kernels);
