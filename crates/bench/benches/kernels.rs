//! Criterion micro-benchmarks of the optimization kernels: tapping solver,
//! min-cost flow assignment, LP relaxation + greedy rounding, and the skew
//! schedulers. These are the per-stage costs behind the CPU columns of
//! Tables I and III–V.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rotary_bench::{placed_circuit, TABLE_SEED};
use rotary_core::assign::{assign_min_max_cap, assign_network_flow};
use rotary_core::skew::{max_slack_schedule, min_feasible_period, weighted_schedule};
use rotary_core::tapping::CandidateCosts;
use rotary_netlist::geom::Point;
use rotary_netlist::BenchmarkSuite;
use rotary_ring::{Ring, RingArray, RingDirection, RingParams};
use rotary_solver::graph::{Source, SpfaGraph};
use rotary_solver::lp::{LpProblem, Pricing, RowKind};
use rotary_solver::mcmf::{
    Circulation, CirculationBackend, DijkstraStrategy, FlowNetwork, Transportation,
};
use rotary_solver::rounding::{greedy_round_loaded, greedy_round_loaded_rescan, LoadedCandidate};
use rotary_solver::sparse::{CsrMatrix, SparseLu};
use rotary_solver::{DifferenceSystem, ParametricSystem};
use rotary_timing::{SequentialGraph, Technology};

fn bench_tapping(c: &mut Criterion) {
    let ring =
        Ring::new(Point::new(500.0, 500.0), 150.0, RingDirection::Ccw, RingParams::default());
    c.bench_function("tapping/solve_one_flip_flop", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = k.wrapping_add(1);
            let ff = Point::new(300.0 + (k % 400) as f64, 250.0 + (k % 300) as f64);
            let target = (k % 100) as f64 / 100.0;
            std::hint::black_box(ring.tap_for_target(ff, 0.012, target))
        })
    });
}

fn setup_costs(suite: BenchmarkSuite) -> (CandidateCosts, Vec<usize>, usize) {
    setup_costs_k(suite, 9)
}

fn setup_costs_k(suite: BenchmarkSuite, k: usize) -> (CandidateCosts, Vec<usize>, usize) {
    let circuit = placed_circuit(suite);
    let tech = Technology::default();
    let graph = SequentialGraph::extract(&circuit, &tech);
    let schedule = max_slack_schedule(&graph, &tech);
    let params = RingParams { period: schedule.period, ..RingParams::default() };
    let array = RingArray::generate(circuit.die, suite.ring_grid(), params);
    let costs = CandidateCosts::compute(&circuit, &array, &schedule, k);
    let caps = array.capacities();
    let n = array.rings().len();
    (costs, caps, n)
}

fn bench_assignment(c: &mut Criterion) {
    let (costs, caps, n_rings) = setup_costs(BenchmarkSuite::S9234);
    c.bench_function("assign/network_flow_s9234", |b| {
        b.iter_batched(
            || costs.clone(),
            |costs| std::hint::black_box(assign_network_flow(&costs, &caps).expect("feasible")),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("assign/min_max_cap_lp_s9234", |b| {
        b.iter_batched(
            || costs.clone(),
            |costs| std::hint::black_box(assign_min_max_cap(&costs, n_rings).expect("solved")),
            BatchSize::SmallInput,
        )
    });
}

/// The incremental stage-3 transportation engine at s38417 scale: one
/// cold build-and-solve, and one warm re-solve after an incremental-
/// placement-sized cost drift (structure unchanged — the steady-state
/// shape of the Fig.-3 loop).
fn bench_transportation(c: &mut Criterion) {
    let (costs, caps, _) = setup_costs_k(BenchmarkSuite::S38417, 9);
    let f = costs.len();
    let r = caps.len();
    let cands: Vec<Vec<(u32, i64)>> = costs
        .candidates
        .iter()
        .map(|list| {
            list.iter().map(|&(rid, wl, _)| (rid.0, (wl * COST_SCALE).round() as i64)).collect()
        })
        .collect();
    let ring_caps: Vec<i64> = caps.iter().map(|&u| u as i64).collect();
    c.bench_function("assign/transportation_cold_s38417", |b| {
        b.iter_batched(
            || Transportation::new(f, r),
            |mut eng| {
                eng.solve(&cands, &ring_caps, false).expect("feasible");
                std::hint::black_box(eng.assignment().len())
            },
            BatchSize::SmallInput,
        )
    });
    let mut warm_src = Transportation::new(f, r);
    warm_src.solve(&cands, &ring_caps, false).expect("feasible");
    let mut drifted = cands.clone();
    let delta = (0.05 * COST_SCALE) as i64;
    for (i, list) in drifted.iter_mut().enumerate() {
        if i % 8 == 0 {
            for cand in list.iter_mut() {
                cand.1 += delta;
            }
        }
    }
    c.bench_function("assign/transportation_warm_s38417", |b| {
        b.iter_batched(
            || warm_src.clone(),
            |mut eng| {
                eng.solve(&drifted, &ring_caps, true).expect("feasible");
                std::hint::black_box(eng.assignment().len())
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_skew(c: &mut Criterion) {
    let circuit = placed_circuit(BenchmarkSuite::S9234);
    let tech = Technology::default();
    let graph = SequentialGraph::extract(&circuit, &tech);
    c.bench_function("skew/max_slack_s9234", |b| {
        b.iter(|| std::hint::black_box(max_slack_schedule(&graph, &tech)))
    });
    let schedule = max_slack_schedule(&graph, &tech);
    let tech_eff = Technology { clock_period: schedule.period, ..tech };
    let n = graph.flip_flops().len();
    let ideal: Vec<f64> = (0..n).map(|i| 0.13 * (i % 7) as f64).collect();
    let weight: Vec<f64> = (0..n).map(|i| 10.0 + (i % 5) as f64).collect();
    c.bench_function("skew/weighted_dual_s9234", |b| {
        b.iter(|| std::hint::black_box(weighted_schedule(&graph, &tech_eff, &ideal, &weight, 0.0)))
    });
}

fn bench_sta(c: &mut Criterion) {
    let circuit = placed_circuit(BenchmarkSuite::S9234);
    let tech = Technology::default();
    c.bench_function("sta/sequential_graph_s9234", |b| {
        b.iter(|| std::hint::black_box(SequentialGraph::extract(&circuit, &tech)))
    });
    let _ = TABLE_SEED;
}

/// Simplex-basis-like sparse matrix: diagonally dominant, ~4 off-diagonal
/// entries per row at pseudo-random columns (deterministic LCG).
fn basis_like_matrix(m: usize) -> CsrMatrix {
    let mut triplets = Vec::with_capacity(5 * m);
    let mut state = 0x2545_f491_4f6c_dd1du64;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    for i in 0..m {
        triplets.push((i, i, 4.0));
        for k in 0..4 {
            let j = next() % m;
            if j != i {
                triplets.push((i, j, if k % 2 == 0 { -0.5 } else { 0.25 }));
            }
        }
    }
    CsrMatrix::from_triplets(m, m, &triplets)
}

/// Dense Gauss–Jordan inverse — the refactorization step of the dense
/// basis-inverse simplex that `solver::sparse` replaced. Re-implemented
/// here so the speedup stays measurable after the dense path's deletion.
fn dense_inverse(a: &CsrMatrix) -> Vec<Vec<f64>> {
    let m = a.nrows();
    let mut aug: Vec<Vec<f64>> = (0..m)
        .map(|i| {
            let mut row = vec![0.0; 2 * m];
            let (cols, vals) = a.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                row[j as usize] += v;
            }
            row[m + i] = 1.0;
            row
        })
        .collect();
    for col in 0..m {
        let piv = (col..m)
            .max_by(|&r, &s| aug[r][col].abs().partial_cmp(&aug[s][col].abs()).unwrap())
            .unwrap();
        aug.swap(col, piv);
        let d = aug[col][col];
        for v in aug[col].iter_mut() {
            *v /= d;
        }
        let pivot_row = aug[col].clone();
        for (r, row) in aug.iter_mut().enumerate() {
            if r != col && row[col] != 0.0 {
                let f = row[col];
                for (dst, &p) in row.iter_mut().zip(&pivot_row) {
                    *dst -= f * p;
                }
            }
        }
    }
    aug.into_iter().map(|row| row[m..].to_vec()).collect()
}

fn bench_sparse_lu(c: &mut Criterion) {
    let m = 300;
    let a = basis_like_matrix(m);
    let rhs: Vec<f64> = (0..m).map(|i| 1.0 + (i % 9) as f64 * 0.125).collect();

    c.bench_function("sparse/lu_factor_solve_m300", |b| {
        b.iter(|| {
            let lu = SparseLu::factor(&a).expect("nonsingular");
            let mut x = vec![0.0; m];
            lu.ftran_dense(&rhs, &mut x);
            std::hint::black_box(x)
        })
    });
    c.bench_function("sparse/dense_inverse_solve_m300", |b| {
        b.iter(|| {
            let inv = dense_inverse(&a);
            let x: Vec<f64> =
                inv.iter().map(|row| row.iter().zip(&rhs).map(|(a, b)| a * b).sum()).collect();
            std::hint::black_box(x)
        })
    });
}

/// Difference-constraint-style graph: `n` nodes, ~4n arcs. A node
/// potential `phi` generates the weights (`w = phi(i) − phi(j) + slack`,
/// `slack ≥ 0`), so every cycle is non-negative, while a tight chain
/// (slack 0 along `v → v+1`) forces an `n`-deep shortest-path tree — the
/// structure long FF-to-FF timing paths induce in the skew constraint
/// systems. Arc order is shuffled so pass-based relaxation cannot sweep
/// the chain in one scan.
fn difference_graph(n: usize) -> SpfaGraph {
    let phi = |v: usize| 0.1 * v as f64;
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    let mut arcs: Vec<(usize, usize, f64)> = Vec::with_capacity(4 * n);
    for v in 0..n - 1 {
        arcs.push((v, v + 1, phi(v) - phi(v + 1)));
    }
    for _ in 0..3 * n {
        let i = next() % n;
        let j = next() % n;
        let slack = ((next() % 64) as f64) / 8.0 * 0.25;
        arcs.push((i, j, phi(i) - phi(j) + slack));
    }
    for k in (1..arcs.len()).rev() {
        arcs.swap(k, next() % (k + 1));
    }
    let mut g = SpfaGraph::new(n);
    for (i, j, w) in arcs {
        g.add_arc(i, j, w);
    }
    g
}

/// The hand-rolled loop `solver::graph` replaced: full-arc relaxation
/// passes until quiescent (textbook Bellman–Ford, no queue).
fn naive_bellman_ford(g: &SpfaGraph, eps: f64) -> Vec<f64> {
    let n = g.num_nodes();
    let arcs: Vec<(usize, usize, f64)> = (0..g.num_arcs()).map(|id| g.arc(id)).collect();
    let mut dist = vec![0.0; n];
    for _ in 0..=n {
        let mut changed = false;
        for &(f, t, w) in &arcs {
            if dist[f] + w < dist[t] - eps {
                dist[t] = dist[f] + w;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    dist
}

fn bench_spfa(c: &mut Criterion) {
    let g = difference_graph(2000);
    c.bench_function("graph/spfa_virtual_n2000", |b| {
        b.iter(|| std::hint::black_box(g.run(Source::Virtual, 1e-12).into_dist()))
    });
    c.bench_function("graph/naive_bellman_ford_n2000", |b| {
        b.iter(|| std::hint::black_box(naive_bellman_ford(&g, 1e-12)))
    });
}

/// The s9234 timing constraints as the max-slack parametric system:
/// long-path row `t̂_i − t̂_j ≤ skew_upper − m`, short-path row
/// `t̂_j − t̂_i ≤ −skew_lower − m` per sequential pair, tighten 1 on every
/// row — exactly the system stage 2 and stage 4 maximize slack over.
fn timing_difference_system(
    graph: &SequentialGraph,
    tech: &Technology,
) -> (DifferenceSystem, Vec<f64>) {
    let ffs = graph.flip_flops();
    let index_of = |id| ffs.binary_search(&id).expect("flip-flop in graph");
    let mut sys = DifferenceSystem::new(ffs.len());
    for p in graph.pairs() {
        let (i, j) = (index_of(p.from), index_of(p.to));
        sys.add(i, j, p.skew_upper(tech));
        sys.add(j, i, -p.skew_lower(tech));
    }
    let tighten = vec![1.0; sys.constraints().len()];
    (sys, tighten)
}

/// Warm-started parametric engine vs the cold bisection path it replaced:
/// one exact Newton slack maximization against the historical 50-ish-probe
/// rebuild-and-resolve search, and a warm probe sweep (tighten in small
/// steps, relaxing only the violated wavefront) against rebuilding the
/// substituted system cold at every step. Both run on the s9234 timing
/// system — the instance the flow's stage-2/stage-4 schedulers solve.
fn bench_parametric(c: &mut Criterion) {
    let circuit = placed_circuit(BenchmarkSuite::S9234);
    let tech = Technology::default();
    let graph = SequentialGraph::extract(&circuit, &tech);
    // Same period bump as stage 2: the suite cannot run at the nominal
    // period, so slack is maximized at 1.05× the minimum feasible one.
    let period = 1.05 * min_feasible_period(&graph, &tech);
    let tech_eff = Technology { clock_period: period, ..tech };
    let (sys, tighten) = timing_difference_system(&graph, &tech_eff);
    let hi = period;
    c.bench_function("difference/newton_exact_slack_s9234", |b| {
        b.iter(|| {
            let mut par = ParametricSystem::new(&sys, &tighten);
            std::hint::black_box(par.maximize_slack_exact(hi))
        })
    });
    c.bench_function("difference/cold_bisection_slack_s9234", |b| {
        b.iter(|| std::hint::black_box(sys.maximize_slack_with_stats(&tighten, hi, 1e-9)))
    });

    // Probe below the optimum in ascending steps — the feasibility
    // re-checks the cost-driven stage issues as it tightens its wrap
    // bound between placement iterations.
    let mut par0 = ParametricSystem::new(&sys, &tighten);
    let (mstar, _) = par0.maximize_slack_exact(hi).expect("timing system feasible at m = 0");
    let sweep: Vec<f64> = (0..16).map(|k| mstar * k as f64 / 16.0).collect();
    c.bench_function("difference/warm_probe_sweep_s9234", |b| {
        b.iter_batched(
            || {
                let mut par = ParametricSystem::new(&sys, &tighten);
                par.probe(0.0);
                par
            },
            |mut par| {
                for &m in &sweep {
                    std::hint::black_box(par.probe(m));
                }
            },
            BatchSize::SmallInput,
        )
    });
    c.bench_function("difference/cold_probe_sweep_s9234", |b| {
        b.iter(|| {
            for &m in &sweep {
                let mut cold = DifferenceSystem::new(sys.num_vars());
                for (cns, &t) in sys.constraints().iter().zip(&tighten) {
                    cold.add(cns.i, cns.j, cns.bound - m * t);
                }
                std::hint::black_box(cold.is_feasible());
            }
        })
    });

    // Delta rebind: one Fig. 3 placement iteration perturbs a small
    // fraction of the bounds, then stage 2 re-solves. The warm engine
    // patches the dirty arcs and relaxes from the carried fixpoint; the
    // baseline pays a full rebuild plus a cold Newton solve.
    let patched: Vec<f64> = sys
        .constraints()
        .iter()
        .enumerate()
        .map(|(k, cns)| {
            if k % 16 == 0 {
                cns.bound + if k % 32 == 0 { 0.0009765625 } else { -0.0009765625 }
            } else {
                cns.bound
            }
        })
        .collect();
    let updates: Vec<(usize, f64)> =
        patched.iter().enumerate().filter(|&(k, _)| k % 16 == 0).map(|(k, &b)| (k, b)).collect();
    let mut warmed = ParametricSystem::new(&sys, &tighten);
    warmed.maximize_slack_exact(hi).expect("timing system feasible before the delta");
    c.bench_function("difference/delta_rebind_resolve_s9234", |b| {
        b.iter_batched(
            || warmed.clone(),
            |mut par| {
                par.update_bounds(&updates);
                std::hint::black_box(par.maximize_slack_exact(hi))
            },
            BatchSize::SmallInput,
        )
    });
    c.bench_function("difference/full_rebuild_resolve_s9234", |b| {
        b.iter(|| {
            let mut rebuilt = DifferenceSystem::new(sys.num_vars());
            for (cns, &bound) in sys.constraints().iter().zip(&patched) {
                rebuilt.add(cns.i, cns.j, bound);
            }
            let mut par = ParametricSystem::new(&rebuilt, &tighten);
            std::hint::black_box(par.maximize_slack_exact(hi))
        })
    });
}

/// An s38417-sized eq. 3 relaxation: `items` flip-flops with up to `k`
/// candidate rings each out of `bins` rings, min-max load with a small
/// distinct wirelength tiebreak — the column/row shape stage 3 hands the
/// simplex on the largest suites (~13k columns × ~1.5k rows).
fn assignment_lp(items: usize, bins: usize, k: usize) -> LpProblem {
    let mut state = 0x2545_f491_4f6c_dd1du64;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 33) as f64) / (1u64 << 31) as f64
    };
    let mut obj = Vec::new();
    let mut item_rows: Vec<Vec<(usize, f64)>> = Vec::with_capacity(items);
    let mut bin_rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); bins];
    for i in 0..items {
        let first = (i * 7) % bins;
        let mut row: Vec<(usize, f64)> = Vec::with_capacity(k);
        let mut seen = vec![false; bins];
        for c in 0..k {
            let bin = (first + c * (c + 3)) % bins;
            if seen[bin] {
                continue;
            }
            seen[bin] = true;
            let col = obj.len();
            obj.push(1e-4 * (1.0 + next()));
            bin_rows[bin].push((col, 0.25 + next()));
            row.push((col, 1.0));
        }
        item_rows.push(row);
    }
    let t = obj.len();
    obj.push(1.0);
    let mut lp = LpProblem::minimize(obj);
    for row in &item_rows {
        lp.add_row(RowKind::Eq, 1.0, row);
    }
    for mut br in bin_rows {
        if br.is_empty() {
            continue;
        }
        br.push((t, -1.0));
        lp.add_row(RowKind::Le, 0.0, &br);
    }
    lp
}

/// Rounding input at the same scale: per-row candidate lists where the LP
/// left one dominant fraction and a couple of small competitors.
fn rounding_rows(items: usize, bins: usize, k: usize) -> Vec<Vec<LoadedCandidate>> {
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 33) as f64) / (1u64 << 31) as f64
    };
    (0..items)
        .map(|i| {
            let first = (i * 11) % bins;
            let lead = 0.55 + 0.45 * next();
            let mut rest = 1.0 - lead;
            (0..k)
                .map(|c| {
                    let bin = (first + c * (c + 5)) % bins;
                    let frac = if c == 0 {
                        lead
                    } else {
                        let f = rest / (k - c) as f64;
                        rest -= f;
                        f
                    };
                    (bin, frac, 0.25 + next())
                })
                .collect()
        })
        .collect()
}

fn bench_lp(c: &mut Criterion) {
    let lp = assignment_lp(1463, 49, 9);
    let mut devex = lp.clone();
    devex.set_pricing(Pricing::DevexPartial);
    let mut dantzig = lp;
    dantzig.set_pricing(Pricing::Dantzig);
    c.bench_function("lp/simplex_devex_partial_s38417_sized", |b| {
        b.iter(|| std::hint::black_box(devex.solve()))
    });
    c.bench_function("lp/simplex_dantzig_full_s38417_sized", |b| {
        b.iter(|| std::hint::black_box(dantzig.solve()))
    });

    // The same comparison on the *real* s38417 relaxation (stage-3
    // problem at the stage-2 schedule, this file's K = 9 pruning depth).
    let (costs, _, n_rings) = setup_costs(BenchmarkSuite::S38417);
    let (real, _) = rotary_core::assign::min_max_lp(&costs, n_rings);
    let mut real_devex = real.clone();
    real_devex.set_pricing(Pricing::DevexPartial);
    let mut real_dantzig = real;
    real_dantzig.set_pricing(Pricing::Dantzig);
    c.bench_function("lp/simplex_devex_partial_s38417_real", |b| {
        b.iter(|| std::hint::black_box(real_devex.solve()))
    });
    c.bench_function("lp/simplex_dantzig_full_s38417_real", |b| {
        b.iter(|| std::hint::black_box(real_dantzig.solve()))
    });

    let rows = rounding_rows(1463, 49, 6);
    c.bench_function("lp/round_incremental_s38417_sized", |b| {
        b.iter(|| std::hint::black_box(greedy_round_loaded(&rows, 49)))
    });
    c.bench_function("lp/round_rescan_s38417_sized", |b| {
        b.iter(|| std::hint::black_box(greedy_round_loaded_rescan(&rows, 49)))
    });

    // Dual-simplex basis repair vs a cold restart on a drifted s38417
    // relaxation: the K=9 optimum's basis is resolved by stable key into
    // the K=8 problem (every flip-flop loses its farthest candidate
    // column), exactly the carry stage 3 performs between Fig. 3
    // iterations. Both benches solve the *same* K=8 LP, so the gap is
    // pure pivot work saved by the repaired basis.
    let (costs9, _, n_rings9) = setup_costs(BenchmarkSuite::S38417);
    let (lp9, _) = rotary_core::assign::min_max_lp(&costs9, n_rings9);
    let (_, basis9) = lp9.solve_with_basis(None);
    let basis9 = basis9.expect("K=9 relaxation solves to optimality");
    let (costs8, _, n_rings8) = setup_costs_k(BenchmarkSuite::S38417, 8);
    let (lp8, _) = rotary_core::assign::min_max_lp(&costs8, n_rings8);
    c.bench_function("lp/dual_repair_warm_vs_cold/warm_s38417_real", |b| {
        b.iter(|| std::hint::black_box(lp8.solve_with_basis(Some(&basis9))))
    });
    c.bench_function("lp/dual_repair_warm_vs_cold/cold_s38417_real", |b| {
        b.iter(|| std::hint::black_box(lp8.solve()))
    });
}

/// Fixed-point cost scale matching `core::skew`'s engine integration.
const COST_SCALE: f64 = 1_099_511_627_776.0; // 2^40

/// Stage-4 circulation dual at a given flip-flop count: `n` nodes plus
/// the reference node R, ~4n constraint arcs generated from a potential
/// (every cycle non-negative, as a feasible timing system guarantees; a
/// tight chain forces deep shortest-path trees like long FF-to-FF paths
/// do), and an R-arc pair per node with integer weight capacity and
/// ±ideal cost. Returns `(pairs, caps, quantized costs)` in the same arc
/// order `core::skew` builds: constraints first, then R pairs.
fn circulation_instance(n: usize) -> (Vec<(u32, u32)>, Vec<i64>, Vec<i64>) {
    let phi = |v: usize| 0.001 * ((v * 37) % 1000) as f64;
    let q = |x: f64| (x * COST_SCALE).round() as i64;
    let mut state = 0x2545_f491_4f6c_dd1du64;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    let weights: Vec<i64> = (0..n).map(|i| 1 + ((i * 13) % 40) as i64).collect();
    let total_w: i64 = weights.iter().sum();
    let mut pairs = Vec::with_capacity(6 * n);
    let mut caps = Vec::with_capacity(6 * n);
    let mut costs = Vec::with_capacity(6 * n);
    for v in 0..n - 1 {
        pairs.push((v as u32, (v + 1) as u32));
        caps.push(total_w);
        costs.push(q(phi(v) - phi(v + 1)));
    }
    for _ in 0..3 * n {
        let i = next() % n;
        let j = next() % n;
        if i == j {
            continue;
        }
        let slack = (next() % 64) as f64 / 256.0;
        pairs.push((i as u32, j as u32));
        caps.push(total_w);
        costs.push(q(phi(i) - phi(j) + slack));
    }
    for (i, &w) in weights.iter().enumerate() {
        let t = 0.25 * ((i * 7) % 8) as f64;
        pairs.push((i as u32, n as u32));
        caps.push(w);
        costs.push(q(t));
        pairs.push((n as u32, i as u32));
        caps.push(w);
        costs.push(q(-t));
    }
    (pairs, caps, costs)
}

fn bench_mcmf(c: &mut Criterion) {
    // s35932 has 1728 flip-flops — the largest stage-4 instance the
    // battery solves.
    let n = 1728;
    let (pairs, caps, costs) = circulation_instance(n);
    c.bench_function("mcmf/circulation_cold_s35932_sized", |b| {
        b.iter_batched(
            || Circulation::new(n + 1, &pairs),
            |mut eng| {
                eng.solve(&caps, &costs, false);
                std::hint::black_box(eng.canonical_distances())
            },
            BatchSize::SmallInput,
        )
    });

    // Warm re-solve after a phase re-wrap round: a T/2 shift on ~3% of
    // the R-arc pairs (the flip-flops that wrapped), everything else
    // untouched — the exact cost drift `Flow::cost_driven` produces.
    let mut warm_src = Circulation::new(n + 1, &pairs);
    warm_src.solve(&caps, &costs, false);
    let base = pairs.len() - 2 * n;
    let half = (0.5 * COST_SCALE) as i64;
    let mut wrapped = costs.clone();
    for i in (0..n).step_by(32) {
        wrapped[base + 2 * i] += half;
        wrapped[base + 2 * i + 1] -= half;
    }
    c.bench_function("mcmf/circulation_warm_rewrap_s35932_sized", |b| {
        b.iter_batched(
            || warm_src.clone(),
            |mut eng| {
                eng.solve(&caps, &wrapped, true);
                std::hint::black_box(eng.canonical_distances())
            },
            BatchSize::SmallInput,
        )
    });

    // The cost-scaling push-relabel backend on the same instance pair:
    // cold (full ε-schedule from the max reduced cost down to 1) and warm
    // after the re-wrap drift (prices carried, so the ε-schedule restarts
    // from the damage the ±T/2 shifts did, not from scratch). Canonical
    // distances are included in the measured work, as in the SSP pair
    // above, so the two backends' numbers are directly comparable.
    c.bench_function("mcmf/cost_scaling_cold_s35932_sized", |b| {
        b.iter_batched(
            || {
                let mut eng = Circulation::new(n + 1, &pairs);
                eng.set_backend(CirculationBackend::CostScaling);
                eng
            },
            |mut eng| {
                eng.solve(&caps, &costs, false);
                std::hint::black_box(eng.canonical_distances())
            },
            BatchSize::SmallInput,
        )
    });
    let mut cs_warm_src = Circulation::new(n + 1, &pairs);
    cs_warm_src.set_backend(CirculationBackend::CostScaling);
    cs_warm_src.solve(&caps, &costs, false);
    c.bench_function("mcmf/cost_scaling_warm_rewrap_s35932_sized", |b| {
        b.iter_batched(
            || cs_warm_src.clone(),
            |mut eng| {
                eng.solve(&caps, &wrapped, true);
                std::hint::black_box(eng.canonical_distances())
            },
            BatchSize::SmallInput,
        )
    });

    // The quantization ladder on the same instance pair: cold runs the
    // full 2^16 -> 2^24 -> 2^32 -> 2^40 refinement, warm takes the
    // sparse-delta bypass (the re-wrap touches ~3% of pairs, well under
    // the ladder's density threshold) and should track the SSP warm
    // number — the ladder's win is the cold/dense regime.
    c.bench_function("mcmf/quant_ladder_cold_s35932_sized", |b| {
        b.iter_batched(
            || {
                let mut eng = Circulation::new(n + 1, &pairs);
                eng.set_backend(CirculationBackend::QuantLadder);
                eng
            },
            |mut eng| {
                eng.solve(&caps, &costs, false);
                std::hint::black_box(eng.canonical_distances())
            },
            BatchSize::SmallInput,
        )
    });
    let mut ql_warm_src = Circulation::new(n + 1, &pairs);
    ql_warm_src.set_backend(CirculationBackend::QuantLadder);
    ql_warm_src.solve(&caps, &costs, false);
    c.bench_function("mcmf/quant_ladder_warm_rewrap_s35932_sized", |b| {
        b.iter_batched(
            || ql_warm_src.clone(),
            |mut eng| {
                eng.solve(&caps, &wrapped, true);
                std::hint::black_box(eng.canonical_distances())
            },
            BatchSize::SmallInput,
        )
    });

    // The two relaxation-kernel strategies head to head on the same cold
    // solve: the sequential binary heap vs the parallel bucket-based
    // radix queue. Results are bit-identical (see the strategy proptest);
    // this pair measures the crossover the `Auto` policy is betting on —
    // on a single hardware thread the bucketed queue's batch machinery is
    // pure overhead, with more cores it amortizes across the gather.
    c.bench_function("mcmf/sequential_dijkstra", |b| {
        b.iter_batched(
            || {
                let mut eng = Circulation::new(n + 1, &pairs);
                eng.set_strategy(DijkstraStrategy::Sequential);
                eng
            },
            |mut eng| std::hint::black_box(eng.solve(&caps, &costs, false)),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("mcmf/parallel_dijkstra", |b| {
        b.iter_batched(
            || {
                let mut eng = Circulation::new(n + 1, &pairs);
                eng.set_strategy(DijkstraStrategy::Bucketed);
                eng
            },
            |mut eng| std::hint::black_box(eng.solve(&caps, &costs, false)),
            BatchSize::SmallInput,
        )
    });

    // The one-shot f64 reference the incremental engine replaced, kept at
    // a smaller size (s15850-ish flip-flop count) so the bench stays
    // tractable — it augments one path per round.
    let n_ref = 600;
    let (rpairs, rcaps, rcosts) = circulation_instance(n_ref);
    c.bench_function("mcmf/reference_circulation_n600", |b| {
        b.iter_batched(
            || {
                let mut net = FlowNetwork::new(n_ref + 1);
                for ((&(i, j), &cap), &cost) in rpairs.iter().zip(&rcaps).zip(&rcosts) {
                    net.add_arc(
                        net.node(i as usize),
                        net.node(j as usize),
                        cap,
                        cost as f64 / COST_SCALE,
                    );
                }
                net
            },
            |mut net| std::hint::black_box(net.min_cost_circulation()),
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(10);
    targets = bench_tapping, bench_assignment, bench_transportation, bench_skew, bench_sta,
        bench_sparse_lu, bench_spfa, bench_parametric, bench_lp, bench_mcmf
}
criterion_main!(kernels);
