//! Ablation benches for the design choices called out in DESIGN.md:
//! candidate-ring pruning depth `K`, pseudo-net weight schedule, and the
//! two cost-driven skew variants. Each bench measures runtime; the quality
//! side of the trade-off is printed once at startup.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rotary_bench::TABLE_SEED;
use rotary_core::flow::{Flow, FlowConfig, SkewVariant};
use rotary_netlist::BenchmarkSuite;

fn quality_report() {
    let suite = BenchmarkSuite::S9234;
    eprintln!("\n[ablation quality] suite {suite}:");
    for k in [3usize, 6, 9, 16] {
        let mut c = suite.circuit(TABLE_SEED);
        let cfg = FlowConfig { candidate_rings: k, ..FlowConfig::default() };
        let out = Flow::new(cfg).run(&mut c, suite.ring_grid());
        eprintln!(
            "  candidate K={k:<2} → tapping WL {:>8.0} µm (improvement {:>5.1}%)",
            out.final_snapshot().tapping_wl,
            out.tapping_improvement() * 100.0
        );
    }
    for w in [2.0f64, 8.0, 16.0, 40.0] {
        let mut c = suite.circuit(TABLE_SEED);
        let cfg = FlowConfig { pseudo_weight: w, ..FlowConfig::default() };
        let out = Flow::new(cfg).run(&mut c, suite.ring_grid());
        eprintln!(
            "  pseudo weight {w:<4} → AFD {:>6.1} µm, signal WL {:>9.0} µm",
            out.final_snapshot().afd,
            out.final_snapshot().signal_wl
        );
    }
    for (label, variant) in
        [("weighted", SkewVariant::WeightedSum), ("minimax", SkewVariant::Minimax)]
    {
        let mut c = suite.circuit(TABLE_SEED);
        let cfg = FlowConfig { skew_variant: variant, ..FlowConfig::default() };
        let out = Flow::new(cfg).run(&mut c, suite.ring_grid());
        eprintln!(
            "  skew variant {label:<8} → tapping WL {:>8.0} µm",
            out.final_snapshot().tapping_wl
        );
    }
}

fn bench_candidate_k(c: &mut Criterion) {
    quality_report();
    let suite = BenchmarkSuite::S9234;
    let mut group = c.benchmark_group("ablation/candidate_k");
    group.sample_size(10);
    for k in [3usize, 9, 16] {
        group.bench_function(format!("k{k}"), |b| {
            b.iter_batched(
                || suite.circuit(TABLE_SEED),
                |mut circuit| {
                    let cfg = FlowConfig { candidate_rings: k, ..FlowConfig::default() };
                    std::hint::black_box(Flow::new(cfg).run(&mut circuit, suite.ring_grid()))
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_skew_variant(c: &mut Criterion) {
    let suite = BenchmarkSuite::S9234;
    let mut group = c.benchmark_group("ablation/skew_variant");
    group.sample_size(10);
    for (label, variant) in
        [("weighted", SkewVariant::WeightedSum), ("minimax", SkewVariant::Minimax)]
    {
        group.bench_function(label, |b| {
            b.iter_batched(
                || suite.circuit(TABLE_SEED),
                |mut circuit| {
                    let cfg = FlowConfig { skew_variant: variant, ..FlowConfig::default() };
                    std::hint::black_box(Flow::new(cfg).run(&mut circuit, suite.ring_grid()))
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(ablations, bench_candidate_k, bench_skew_variant);
criterion_main!(ablations);
