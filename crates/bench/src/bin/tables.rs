//! Regenerates every table and figure of the paper's evaluation section.
//!
//! ```sh
//! cargo run --release -p rotary-bench --bin tables -- all
//! cargo run --release -p rotary-bench --bin tables -- table1 [bnb_budget_secs]
//! cargo run --release -p rotary-bench --bin tables -- table2 ... table7
//! cargo run --release -p rotary-bench --bin tables -- fig1 fig2 fig4 fig5
//! cargo run --release -p rotary-bench --bin tables -- --small all   # 2 small suites only
//! cargo run --release -p rotary-bench --bin tables -- --suite s38417 table1 5
//! cargo run --release -p rotary-bench --bin tables -- --suite s15850 stage2
//! ```
//!
//! `--suite NAME` (repeatable) restricts every target to the named
//! suite(s) — the CI smoke uses it to bound a large-suite run to one
//! table without paying for the full battery. `--redact-cpu` prints every
//! wall-clock column as `-`, which makes the output fully deterministic:
//! the CI staleness guard regenerates `tables_small_output.txt` with it
//! and diffs byte-for-byte against the committed copy. The `stage2`
//! target is a scheduling smoke: period search plus max-slack solves,
//! cold then warm across drifted placements, asserting the delta-rebind
//! engine actually reuses state.
//!
//! Absolute numbers differ from the paper (synthetic netlists, different
//! machine); shapes — who wins, by what rough factor — are the
//! reproduction target. See EXPERIMENTS.md for the side-by-side record.

use rotary_bench::{imp, pct, run_suite, table1_row, table2_row, SuiteResults, TABLE_SEED};
use rotary_core::metrics::wirelength_capacitance_product;
use rotary_netlist::geom::Point;
use rotary_netlist::BenchmarkSuite;
use rotary_ring::{Ring, RingArray, RingDirection, RingParams};
use rotary_solver::greedy_round;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// When set (`--redact-cpu`), every wall-clock column prints as `-` so
/// the output depends only on the deterministic computation, never the
/// machine — the CI staleness guard diffs such a run byte-for-byte.
static REDACT_CPU: AtomicBool = AtomicBool::new(false);

/// Formats a seconds value at the given precision, or `-` under
/// `--redact-cpu`. Width is applied by the caller's `{:>N}` so redacted
/// and live runs keep identical column layout.
fn cpu(v: f64, prec: usize) -> String {
    if REDACT_CPU.load(Ordering::Relaxed) {
        "-".into()
    } else {
        format!("{v:.prec$}")
    }
}

struct Ctx {
    suites: Vec<BenchmarkSuite>,
    results: BTreeMap<&'static str, SuiteResults>,
    bnb_budget: Duration,
}

impl Ctx {
    fn results_for(&mut self, suite: BenchmarkSuite) -> &SuiteResults {
        self.results.entry(suite.name()).or_insert_with(|| {
            eprintln!("[tables] running full experiment battery on {suite} ...");
            run_suite(suite)
        })
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let small = args.iter().any(|a| a == "--small");
    args.retain(|a| a != "--small");
    if args.iter().any(|a| a == "--redact-cpu") {
        REDACT_CPU.store(true, Ordering::Relaxed);
        args.retain(|a| a != "--redact-cpu");
    }
    let mut only: Vec<BenchmarkSuite> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--backend" {
            args.remove(i);
            let Some(name) = (i < args.len()).then(|| args.remove(i)) else {
                eprintln!("--backend needs a name ({})", rotary_solver::mcmf::BACKEND_NAMES);
                std::process::exit(2);
            };
            // One parser for the flag, the env var, and FlowConfig — a
            // name accepted here is accepted everywhere (and vice versa).
            if let Err(msg) = rotary_solver::mcmf::parse_backend(&name) {
                eprintln!("--backend: {msg}");
                std::process::exit(2);
            }
            // Same switch the solver reads directly; setting it here lets
            // table runs A/B the circulation backend without a wrapper.
            std::env::set_var("ROTARY_MCMF_BACKEND", &name);
        } else if args[i] == "--suite" {
            args.remove(i);
            let Some(name) = (i < args.len()).then(|| args.remove(i)) else {
                eprintln!("--suite needs a suite name (e.g. --suite s38417)");
                std::process::exit(2);
            };
            match BenchmarkSuite::ALL.iter().find(|s| s.name().eq_ignore_ascii_case(&name)) {
                Some(&s) => only.push(s),
                None => {
                    eprintln!(
                        "unknown suite {name}; known: {}",
                        BenchmarkSuite::ALL.iter().map(|s| s.name()).collect::<Vec<_>>().join(", ")
                    );
                    std::process::exit(2);
                }
            }
        } else {
            i += 1;
        }
    }
    if args.is_empty() {
        args.push("all".into());
    }
    let suites: Vec<BenchmarkSuite> = if !only.is_empty() {
        only
    } else if small {
        vec![BenchmarkSuite::S9234, BenchmarkSuite::S5378]
    } else {
        BenchmarkSuite::ALL.to_vec()
    };
    let bnb_budget = args
        .iter()
        .filter_map(|a| a.parse::<u64>().ok())
        .next()
        .map(Duration::from_secs)
        .unwrap_or(Duration::from_secs(30));
    let mut ctx = Ctx { suites, results: BTreeMap::new(), bnb_budget };

    for arg in &args {
        match arg.as_str() {
            "all" => {
                fig1();
                fig2();
                fig4();
                fig5();
                table2(&mut ctx);
                table1(&mut ctx);
                table3(&mut ctx);
                table4(&mut ctx);
                table5(&mut ctx);
                table6(&mut ctx);
                table7(&mut ctx);
            }
            "table1" => table1(&mut ctx),
            "table2" => table2(&mut ctx),
            "table3" => table3(&mut ctx),
            "table4" => table4(&mut ctx),
            "table5" => table5(&mut ctx),
            "table6" => table6(&mut ctx),
            "table7" => table7(&mut ctx),
            "fig1" => fig1(),
            "fig2" => fig2(),
            "fig4" => fig4(),
            "fig5" => fig5(),
            "variation" => variation(&mut ctx),
            "stage2" => stage2(&mut ctx),
            "assign" => assign_ab(&mut ctx),
            other if other.parse::<u64>().is_ok() => {}
            other => eprintln!("unknown target {other}"),
        }
    }

    telemetry(&ctx);
}

/// Prints the per-stage flow telemetry of every suite battery the targets
/// above ran, and dumps the same data as JSON to `BENCH_flow.json` so
/// future sessions get a perf trajectory. The dump *merges* with any
/// existing file: suites not re-run this invocation keep their recorded
/// entries, so a `--small` or `--suite` run no longer clobbers the
/// five-suite battery.
fn telemetry(ctx: &Ctx) {
    if ctx.results.is_empty() {
        return;
    }
    header("FLOW TELEMETRY — wall time / problem size / solver iterations / reuse per stage");
    for (name, r) in &ctx.results {
        for (label, out) in [("network-flow", &r.nf), ("ilp", &r.ilp)] {
            println!(
                "{name} [{label}]: {} iteration(s), stages 2-5 {}s, placer {}s",
                out.telemetry.iterations(),
                cpu(out.stage_seconds(), 2),
                cpu(out.placer_seconds(), 2),
            );
            let reuse = out.telemetry.reuse_by_stage();
            for (k, (stage, secs, passes, iters)) in
                out.telemetry.totals_by_stage().into_iter().enumerate()
            {
                if passes == 0 {
                    continue;
                }
                let (_, reused, delta, touched) = reuse[k];
                // Stage-4 round histogram rollup (zero rows elsewhere):
                // `rounds` is the Dijkstra-round total whose collapse the
                // quantization ladder targets; per-solve detail (paths,
                // max plateau width) is in the BENCH_flow.json records.
                let rounds: usize = out
                    .telemetry
                    .records()
                    .iter()
                    .filter(|r| r.stage == stage)
                    .map(|r| r.rounds)
                    .sum();
                // Solver backend that served the stage's last pass (stages
                // without a backend choice print `-`); kept as the final
                // single-token column so `awk '{print $NF}'` grabs it.
                let backend = out
                    .telemetry
                    .records()
                    .iter()
                    .rfind(|r| r.stage == stage && !r.backend.is_empty())
                    .map_or("-", |r| r.backend);
                println!(
                    "  {}. {:<22} {:>9}s  {:>2} pass(es)  {:>6} solver iters  \
                     {:>9} reused  {:>6} Δarcs  {:>7} touched  {:>7} rounds  {:>14}",
                    stage.number(),
                    stage.name(),
                    cpu(secs, 3),
                    passes,
                    iters,
                    reused,
                    delta,
                    touched,
                    rounds,
                    backend,
                );
            }
        }
    }
    let mut suites: BTreeMap<String, String> = std::fs::read_to_string("BENCH_flow.json")
        .ok()
        .map(|doc| parse_top_level(&doc))
        .unwrap_or_default();
    // Run metadata under the reserved `_meta` key (sorts ahead of every
    // suite name): the worker-thread cap the run saw and the git revision
    // it was built from, so a merged file records the provenance of its
    // freshest entries.
    suites.insert(
        "_meta".to_string(),
        format!(
            "{{\n\"threads\": {},\n\"git_rev\": \"{}\"\n}}",
            rotary_solver::par::default_max_threads(),
            git_rev(),
        ),
    );
    for (name, r) in &ctx.results {
        suites.insert(
            name.to_string(),
            format!(
                "{{\n\"network_flow\": {},\n\"ilp\": {}\n}}",
                r.nf.telemetry.to_json().trim_end(),
                r.ilp.telemetry.to_json().trim_end(),
            ),
        );
    }
    let mut json = String::from("{\n");
    let n = suites.len();
    for (k, (name, body)) in suites.iter().enumerate() {
        json.push_str(&format!("\"{name}\": {body}{}\n", if k + 1 < n { "," } else { "" }));
    }
    json.push_str("}\n");
    match std::fs::write("BENCH_flow.json", &json) {
        Ok(()) => println!("(telemetry JSON merged into BENCH_flow.json)"),
        Err(e) => eprintln!("could not write BENCH_flow.json: {e}"),
    }
}

/// Short git revision of the working tree, `"unknown"` when git (or the
/// repository) is unavailable — metadata only, never load-bearing.
fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

/// Splits a `BENCH_flow.json` document into its top-level
/// `"suite": { ... }` entries by brace counting. The file is
/// machine-written — no string value ever contains a brace — so counting
/// is exact; a malformed document simply yields fewer entries, which the
/// merge then overwrites.
fn parse_top_level(doc: &str) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    let mut i = match doc.find('{') {
        Some(p) => p + 1,
        None => return out,
    };
    while i < doc.len() {
        let Some(q1) = doc[i..].find('"') else { break };
        let key_start = i + q1 + 1;
        let Some(q2) = doc[key_start..].find('"') else { break };
        let key = doc[key_start..key_start + q2].to_string();
        let after_key = key_start + q2 + 1;
        let Some(ob) = doc[after_key..].find('{') else { break };
        let start = after_key + ob;
        let mut depth = 0usize;
        let mut end = start;
        for (off, c) in doc[start..].char_indices() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = start + off + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        if end == start {
            break;
        }
        out.insert(key, doc[start..end].to_string());
        i = end;
    }
    out
}

fn header(title: &str) {
    println!("\n==== {title} ====");
}

/// Table I: IG of greedy rounding vs a time-bounded generic ILP solver.
fn table1(ctx: &mut Ctx) {
    header("TABLE I — integrality gap: greedy rounding vs generic ILP (B&B)");
    println!("{:<8} | {:>8} {:>9} | {:>10} {:>9}", "Circuit", "IG", "CPU(s)", "IG", "CPU");
    println!("{:<8} | {:^18} | {:^20}", "", "Greedy Rounding", "ILP-Solver (B&B)");
    for suite in ctx.suites.clone() {
        let row = table1_row(suite, ctx.bnb_budget);
        let bnb_ig = row.bnb_ig.map(|g| format!("{g:.2}")).unwrap_or_else(|| "—".into());
        let bnb_cpu = if REDACT_CPU.load(Ordering::Relaxed) {
            "-".into()
        } else if row.bnb_timed_out {
            format!("> {:.0}s", ctx.bnb_budget.as_secs_f64())
        } else {
            format!("{:.2}", row.bnb_cpu)
        };
        println!(
            "{:<8} | {:>8.2} {:>9} | {:>10} {:>9}",
            suite.name(),
            row.greedy_ig,
            cpu(row.greedy_cpu, 2),
            bnb_ig,
            bnb_cpu
        );
    }
    println!("(B&B budget {:?}; the paper bounded GLPK to 10 h)", ctx.bnb_budget);
}

/// Table II: benchmark characteristics.
fn table2(ctx: &mut Ctx) {
    header("TABLE II — test cases");
    println!(
        "{:<8} {:>7} {:>12} {:>7} {:>9} {:>8}",
        "Circuit", "#Cells", "#Flip-flops", "#Nets", "PL(µm)", "#Rings"
    );
    for suite in ctx.suites.clone() {
        let r = table2_row(suite);
        println!(
            "{:<8} {:>7} {:>12} {:>7} {:>9.0} {:>8}",
            suite.name(),
            r.cells,
            r.flip_flops,
            r.nets,
            r.pl,
            r.rings
        );
    }
}

/// Table III: base case.
fn table3(ctx: &mut Ctx) {
    header("TABLE III — base case (stages 1-3, network flow)");
    println!(
        "{:<8} {:>7} {:>9} {:>10} {:>10} {:>7} {:>7} {:>7} {:>8}",
        "Circuit", "AFD", "Tap.WL", "SignalWL", "Tot.WL", "ClkP", "SigP", "TotP", "CPU(s)"
    );
    for suite in ctx.suites.clone() {
        let r = ctx.results_for(suite).clone();
        println!(
            "{:<8} {:>7.1} {:>9.0} {:>10.0} {:>10.0} {:>7.2} {:>7.2} {:>7.2} {:>8}",
            suite.name(),
            r.base.afd,
            r.base.tapping_wl,
            r.base.signal_wl,
            r.base.total_wl(),
            r.base_power.clock_mw,
            r.base_power.signal_mw,
            r.base_power.total(),
            cpu(r.base_cpu, 1)
        );
    }
}

/// Table IV: network-flow optimization with pseudo-net iterations.
fn table4(ctx: &mut Ctx) {
    header("TABLE IV — network-flow based optimization (full Fig. 3 loop)");
    println!(
        "{:<8} {:>7} | {:>9} {:>8} | {:>10} {:>8} | {:>10} {:>8} | {:>8} {:>8}",
        "Circuit",
        "AFD",
        "Tap.WL",
        "Imp",
        "SignalWL",
        "Imp",
        "Tot.WL",
        "Imp",
        "Stg2-5s",
        "Placer-s"
    );
    for suite in ctx.suites.clone() {
        let r = ctx.results_for(suite).clone();
        let f = r.nf.final_snapshot();
        println!(
            "{:<8} {:>7.1} | {:>9.0} {:>8} | {:>10.0} {:>8} | {:>10.0} {:>8} | {:>8} {:>8}",
            suite.name(),
            f.afd,
            f.tapping_wl,
            imp(r.base.tapping_wl, f.tapping_wl),
            f.signal_wl,
            imp(r.base.signal_wl, f.signal_wl),
            f.total_wl(),
            imp(r.base.total_wl(), f.total_wl()),
            cpu(r.nf_cpu.0, 1),
            cpu(r.nf_cpu.1, 1)
        );
    }
    println!("(iterations to convergence ≤ {})", 5);
}

/// Table V: max load capacitance, network flow vs ILP formulation.
fn table5(ctx: &mut Ctx) {
    header("TABLE V — max ring load capacitance: network flow vs ILP formulation");
    println!(
        "{:<8} | {:>7} {:>8} | {:>8} {:>8} {:>7} {:>8} | {:>10} {:>8} | {:>8}",
        "Circuit", "Cap", "AFD", "AFD", "Imp", "Cap", "Imp", "Tot.WL", "Imp", "CPU(s)"
    );
    println!("{:<8} | {:^16} | {:^60}", "", "Network Flow", "ILP Formulation");
    for suite in ctx.suites.clone() {
        let r = ctx.results_for(suite).clone();
        let nf = r.nf.final_snapshot();
        let il = r.ilp.final_snapshot();
        println!(
            "{:<8} | {:>7.3} {:>8.1} | {:>8.1} {:>8} {:>7.3} {:>8} | {:>10.0} {:>8} | {:>8}",
            suite.name(),
            nf.max_ring_cap,
            nf.afd,
            il.afd,
            imp(nf.afd, il.afd),
            il.max_ring_cap,
            imp(nf.max_ring_cap, il.max_ring_cap),
            il.total_wl(),
            imp(nf.total_wl(), il.total_wl()),
            cpu(r.ilp_assign_cpu, 2)
        );
    }
}

/// Table VI: power, network flow and ILP vs base case.
fn table6(ctx: &mut Ctx) {
    header("TABLE VI — power (mW), network flow and ILP formulations vs base");
    println!(
        "{:<8} | {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} | {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "Circuit",
        "Clk",
        "Imp",
        "Sig",
        "Imp",
        "Tot",
        "Imp",
        "Clk",
        "Imp",
        "Sig",
        "Imp",
        "Tot",
        "Imp"
    );
    println!("{:<8} | {:^47} | {:^47}", "", "Network Flow Formulation", "ILP Formulation");
    let mut sums = [0.0f64; 6];
    let mut n = 0usize;
    for suite in ctx.suites.clone() {
        let r = ctx.results_for(suite).clone();
        let b = r.base_power;
        let nf = r.nf_power;
        let il = r.ilp_power;
        println!(
            "{:<8} | {:>7.2} {:>7} {:>7.2} {:>7} {:>7.2} {:>7} | {:>7.2} {:>7} {:>7.2} {:>7} {:>7.2} {:>7}",
            suite.name(),
            nf.clock_mw,
            imp(b.clock_mw, nf.clock_mw),
            nf.signal_mw,
            imp(b.signal_mw, nf.signal_mw),
            nf.total(),
            imp(b.total(), nf.total()),
            il.clock_mw,
            imp(b.clock_mw, il.clock_mw),
            il.signal_mw,
            imp(b.signal_mw, il.signal_mw),
            il.total(),
            imp(b.total(), il.total()),
        );
        sums[0] += (b.clock_mw - nf.clock_mw) / b.clock_mw;
        sums[1] += (b.signal_mw - nf.signal_mw) / b.signal_mw;
        sums[2] += (b.total() - nf.total()) / b.total();
        sums[3] += (b.clock_mw - il.clock_mw) / b.clock_mw;
        sums[4] += (b.signal_mw - il.signal_mw) / b.signal_mw;
        sums[5] += (b.total() - il.total()) / b.total();
        n += 1;
    }
    if n > 0 {
        println!(
            "{:<8} | ave clock {} signal {} total {} | ave clock {} signal {} total {}",
            "Ave",
            pct(sums[0] / n as f64),
            pct(sums[1] / n as f64),
            pct(sums[2] / n as f64),
            pct(sums[3] / n as f64),
            pct(sums[4] / n as f64),
            pct(sums[5] / n as f64),
        );
    }
}

/// Table VII: wirelength-capacitance product.
fn table7(ctx: &mut Ctx) {
    header("TABLE VII — wirelength-capacitance product (µm·pF)");
    println!("{:<8} {:>16} {:>16} {:>8}", "Circuit", "NetworkFlow WCP", "ILP WCP", "Imp");
    for suite in ctx.suites.clone() {
        let r = ctx.results_for(suite).clone();
        let nf = r.nf.final_snapshot();
        let il = r.ilp.final_snapshot();
        let w_nf = wirelength_capacitance_product(nf.total_wl(), nf.max_ring_cap);
        let w_il = wirelength_capacitance_product(il.total_wl(), il.max_ring_cap);
        println!("{:<8} {:>16.0} {:>16.0} {:>8}", suite.name(), w_nf, w_il, imp(w_nf, w_il));
    }
}

/// Fig. 1: ring and ring-array geometry with phases.
fn fig1() {
    header("FIG 1 — rotary ring and array phase map");
    let ring = Ring::new(Point::new(0.0, 0.0), 100.0, RingDirection::Ccw, RingParams::default());
    println!("single ring, side {} µm, ρ = {:.4} ps/µm:", ring.side(), ring.rho() * 1000.0);
    for seg in ring.segments().iter().filter(|s| !s.complementary) {
        println!(
            "  side {}: {} → {}   phase {:.0}° → {:.0}°",
            seg.side,
            seg.start,
            seg.end,
            360.0 * seg.t_start / ring.params().period,
            360.0 * (seg.t_start + 0.25) / ring.params().period,
        );
    }
    let array = RingArray::generate(
        rotary_netlist::geom::Rect::from_size(1000.0, 1000.0),
        4,
        RingParams::default(),
    );
    println!("4×4 array; propagation directions (CCW/CW checkerboard):");
    for j in (0..4).rev() {
        let row: Vec<&str> = (0..4)
            .map(|i| match array.ring(rotary_ring::RingId((j * 4 + i) as u32)).direction() {
                RingDirection::Ccw => "CCW",
                RingDirection::Cw => " CW",
            })
            .collect();
        println!("  {}", row.join(" "));
    }
}

/// Fig. 2: the tapping curve t_f(x) — two joined parabolas.
fn fig2() {
    header("FIG 2 — tapping delay curve t_f(x) (CSV)");
    let ring =
        Ring::new(Point::new(500.0, 500.0), 200.0, RingDirection::Ccw, RingParams::default());
    let ff = Point::new(560.0, 180.0); // below the bottom side
    let cap = 0.012;
    let seg =
        ring.segments().into_iter().find(|s| !s.complementary && s.side == 0).expect("bottom side");
    let (xf, yf) = seg.local_coords(ff);
    println!("x_um,l_um,t_f_ns   (joint at x_f = {xf:.1})");
    let b = seg.length();
    for k in 0..=40 {
        let x = b * k as f64 / 40.0;
        let l = (x - xf).abs() + yf;
        let t = seg.t_start + ring.rho() * x + ring.params().stub_delay(l, cap);
        println!("{x:.1},{l:.1},{t:.5}");
    }
    println!("-- solution cases for four representative targets:");
    for (label, target) in [
        ("t_f1 (below curve)", 0.05),
        ("t_f2 (two roots)", 0.16),
        ("t_f3 (unique)", 0.40),
        ("t_f4 (above curve)", 0.95),
    ] {
        let sol = ring.tap_on_segment(&seg, ff, cap, target).expect("solvable");
        println!(
            "  {label}: target {target:.2} → case {:?}, x = {:.1}, wirelength {:.1} µm, k = {}",
            sol.case,
            seg.local_coords(sol.point).0,
            sol.wirelength,
            sol.periods_borrowed
        );
    }
}

/// Fig. 4: the min-cost flow assignment network, with an optimality check
/// against brute force on a small instance.
fn fig4() {
    header("FIG 4 — min-cost network flow assignment model");
    use rotary_core::assign::assign_network_flow;
    use rotary_core::tapping::CandidateCosts;
    use rotary_netlist::CellId;
    use rotary_ring::RingId;

    // 4 flip-flops × 3 rings with explicit costs.
    let costs_table: Vec<Vec<(u32, f64)>> = vec![
        vec![(0, 12.0), (1, 30.0), (2, 44.0)],
        vec![(0, 14.0), (1, 22.0), (2, 40.0)],
        vec![(0, 35.0), (1, 20.0), (2, 21.0)],
        vec![(0, 50.0), (1, 28.0), (2, 16.0)],
    ];
    let caps = vec![1usize, 2, 2];
    let costs = CandidateCosts {
        flip_flops: (0..4).map(CellId).collect(),
        candidates: costs_table
            .iter()
            .map(|row| row.iter().map(|&(r, c)| (RingId(r), c, 0.1)).collect())
            .collect(),
    };
    println!("source → 4 flip-flop vertices → 3 ring vertices (U = {caps:?}) → target");
    for (i, row) in costs_table.iter().enumerate() {
        let arcs: Vec<String> = row.iter().map(|(r, c)| format!("r{r}:{c}")).collect();
        println!("  f{i}: {}", arcs.join("  "));
    }
    let a = assign_network_flow(&costs, &caps).expect("feasible");
    let total: f64 = a
        .rings
        .iter()
        .enumerate()
        .map(|(i, r)| costs_table[i].iter().find(|&&(j, _)| j == r.0).unwrap().1)
        .sum();
    println!("flow assignment: {:?}, total cost {total}", a.rings);

    // Brute-force verification.
    let mut best = f64::INFINITY;
    for m in 0..81u32 {
        let pick: Vec<u32> = (0..4).map(|i| (m / 3u32.pow(i)) % 3).collect();
        let mut occ = [0usize; 3];
        for &p in &pick {
            occ[p as usize] += 1;
        }
        if occ.iter().zip(&caps).any(|(&o, &u)| o > u) {
            continue;
        }
        let c: f64 = pick
            .iter()
            .enumerate()
            .map(|(i, &p)| costs_table[i].iter().find(|&&(j, _)| j == p).unwrap().1)
            .sum();
        best = best.min(c);
    }
    println!("brute-force optimum: {best}  (network flow is optimal: {})", total == best);
}

/// Extension: the Monte Carlo skew-variation study behind the paper's
/// motivation (conventional trees drift ~25% of nominal skew under
/// interconnect variation \[3\]; rotary test silicon held 5.5 ps \[13\]).
fn variation(ctx: &mut Ctx) {
    use rotary_core::variation::{compare_variation, VariationModel};
    use rotary_ring::RingParams as RP;
    header("VARIATION — Monte Carlo skew variability, tree vs rotary");
    println!(
        "{:<8} {:>14} {:>14} {:>14} {:>14} {:>10}",
        "Circuit", "tree µ (ps)", "tree σ (ps)", "rotary µ (ps)", "rotary σ (ps)", "reduction"
    );
    for suite in ctx.suites.clone() {
        // Re-run the deterministic flow to obtain the tapped circuit state
        // (independent of the cached table batteries).
        let mut circuit = suite.circuit(TABLE_SEED);
        let cfg = rotary_core::flow::FlowConfig::default();
        let out = rotary_core::flow::Flow::new(cfg).run(&mut circuit, suite.ring_grid());
        let params = RP { period: out.schedule.period, ..cfg.ring_params };
        let rep = compare_variation(
            &circuit,
            &out.taps,
            &params,
            &cfg.tech,
            &VariationModel::default(),
            TABLE_SEED,
        );
        println!(
            "{:<8} {:>14.2} {:>14.2} {:>14.2} {:>14.2} {:>9.1}x",
            suite.name(),
            rep.tree_skew_mean * 1e3,
            rep.tree_skew_sigma * 1e3,
            rep.rotary_skew_mean * 1e3,
            rep.rotary_skew_sigma * 1e3,
            rep.reduction_factor()
        );
    }
}

/// Stage-2 scheduling smoke: period search plus max-slack solves, cold
/// then warm across deterministically drifted placements. The warm
/// re-solves go through `SkewContext`'s delta-rebind path — the run
/// aborts if the engine fails to reuse state, so a CI timeout *or* a
/// dead warm path both show up here.
fn stage2(ctx: &mut Ctx) {
    use rotary_core::skew::{self, SkewContext};
    use rotary_timing::SequentialGraph;
    header("STAGE-2 SMOKE — period search + max-slack (cold, then warm drifted re-solves)");
    for suite in ctx.suites.clone() {
        let mut circuit = suite.circuit(TABLE_SEED);
        let tech = rotary_core::flow::FlowConfig::default().tech;
        let mut sctx = SkewContext::new();
        let t0 = std::time::Instant::now();
        let graph = SequentialGraph::extract(&circuit, &tech);
        let (period, pstats) = skew::min_feasible_period_ctx(&graph, &tech, &mut sctx);
        let t_period = t0.elapsed().as_secs_f64();
        let t0 = std::time::Instant::now();
        let (cold, cstats) = skew::max_slack_schedule_ctx(&graph, &tech, &mut sctx);
        let t_cold = t0.elapsed().as_secs_f64();
        // Drift every flip-flop by a few µm (deterministic pattern, the
        // scale of one incremental-placement step) and re-solve warm.
        let mut t_warm = 0.0;
        let (mut reused, mut delta, mut solves) = (0usize, 0usize, 0usize);
        for round in 1..=3usize {
            let ffs: Vec<_> = circuit.flip_flops().to_vec();
            for (k, &ff) in ffs.iter().enumerate() {
                let p = circuit.position(ff);
                let dx = ((k + round) % 5) as f64 - 2.0;
                let dy = ((k * 3 + round) % 5) as f64 - 2.0;
                circuit.set_position(ff, Point::new(p.x + dx, p.y + dy));
            }
            let graph = SequentialGraph::extract(&circuit, &tech);
            let t0 = std::time::Instant::now();
            let (_, st) = skew::max_slack_schedule_ctx(&graph, &tech, &mut sctx);
            t_warm += t0.elapsed().as_secs_f64();
            reused += st.reused_work;
            delta += st.delta_arcs;
            solves += st.solver_iterations;
        }
        assert!(reused > 0, "warm stage-2 re-solves must reuse engine state on {suite}");
        println!(
            "{:<8} period {:.4} ns  slack {:.4} ns | search {}s ({} solves)  cold {}s \
             ({} solves)  3 warm re-solves {}s ({} solves, {} reused, {} Δarcs)",
            suite.name(),
            period,
            cold.slack,
            cpu(t_period, 3),
            pstats.solver_iterations,
            cpu(t_cold, 3),
            cstats.solver_iterations,
            cpu(t_warm, 3),
            solves,
            reused,
            delta,
        );
    }
}

/// Stage-3 smoke: full warm and cold flows, interleaved A/B on the same
/// binary, per assignment route. Prints the assignment-stage wall clock
/// of each (best of two interleaved reps, so both modes see the same
/// machine conditions), asserts the warm flow actually reused assignment
/// work on every suite and route, and asserts the warm outputs are
/// bit-identical to the cold reference — a dead warm path, a slow warm
/// path, and a divergent warm path all fail here.
fn assign_ab(ctx: &mut Ctx) {
    use rotary_core::flow::{AssignmentObjective, Flow, FlowConfig, FlowOutcome};
    use rotary_core::telemetry::Stage;
    header("STAGE-3 SMOKE — assignment warm starts (interleaved warm/cold full flows)");
    for suite in ctx.suites.clone() {
        for (label, objective) in [
            ("network-flow", AssignmentObjective::TappingCost),
            ("ilp", AssignmentObjective::MaxLoadCap),
        ] {
            let run = |warm: bool| -> FlowOutcome {
                let mut c = suite.circuit(TABLE_SEED);
                let cfg = FlowConfig { objective, warm_start: warm, ..FlowConfig::default() };
                Flow::new(cfg).run(&mut c, suite.ring_grid())
            };
            let stage3_secs = |out: &FlowOutcome| {
                out.telemetry
                    .totals_by_stage()
                    .iter()
                    .find(|e| e.0 == Stage::Assignment)
                    .map_or(0.0, |e| e.1)
            };
            let (mut t_warm, mut t_cold) = (f64::INFINITY, f64::INFINITY);
            let (mut warm_out, mut cold_out) = (None, None);
            for _rep in 0..2 {
                let w = run(true);
                t_warm = t_warm.min(stage3_secs(&w));
                warm_out = Some(w);
                let c = run(false);
                t_cold = t_cold.min(stage3_secs(&c));
                cold_out = Some(c);
            }
            let (w, c) = (warm_out.unwrap(), cold_out.unwrap());
            assert_eq!(w.schedule, c.schedule, "warm flow diverged on {suite} [{label}]");
            assert_eq!(w.assignment, c.assignment, "warm flow diverged on {suite} [{label}]");
            assert_eq!(
                w.taps.solutions, c.taps.solutions,
                "warm flow diverged on {suite} [{label}]"
            );
            let (_, reused, delta, _) = *w
                .telemetry
                .reuse_by_stage()
                .iter()
                .find(|e| e.0 == Stage::Assignment)
                .expect("assignment stage is always recorded");
            assert!(reused > 0, "warm assignment must reuse work on {suite} [{label}]");
            let backend = w
                .telemetry
                .records()
                .iter()
                .rfind(|r| r.stage == Stage::Assignment && !r.backend.is_empty())
                .map_or("-", |r| r.backend);
            println!(
                "{:<8} [{label:<12}] assignment warm {:>7}s  cold {:>7}s  speedup {:>5}x  \
                 ({reused} reused, {delta} Δarcs, backend {backend})",
                suite.name(),
                cpu(t_warm, 3),
                cpu(t_cold, 3),
                cpu(t_cold / t_warm.max(1e-12), 2),
            );
        }
    }
}

/// Fig. 5: greedy rounding walk-through.
fn fig5() {
    header("FIG 5 — greedy rounding procedure");
    let fractions = vec![
        vec![(0usize, 1.0), (1, 0.0)],
        vec![(0, 0.35), (1, 0.65)],
        vec![(0, 0.5), (1, 0.3), (2, 0.2)],
    ];
    for (i, row) in fractions.iter().enumerate() {
        println!("  x[{i}][j] from LP: {row:?}");
    }
    let rounded = greedy_round(&fractions);
    println!("rounded choices (step 1.1 keeps integral rows, 1.2 takes argmax): {rounded:?}");
    let _ = TABLE_SEED;
}
