//! Experiment runners shared by the `tables` binary and the criterion
//! benches. Each function reproduces the workload of one table/figure of
//! the paper and returns structured rows.

use rotary_core::assign::{self};
use rotary_core::flow::{AssignmentObjective, Flow, FlowConfig, FlowOutcome};
use rotary_core::metrics::improvement;
use rotary_core::skew::{self};
use rotary_core::tapping::CandidateCosts;
use rotary_cts::ClockTree;
use rotary_netlist::{BenchmarkSuite, Circuit};
use rotary_place::{Placer, PlacerConfig};
use rotary_power::PowerModel;
use rotary_ring::{RingArray, RingParams};
use rotary_timing::{SequentialGraph, Technology};
use std::time::{Duration, Instant};

/// The deterministic seed all paper tables are generated with.
pub const TABLE_SEED: u64 = 2006;

/// Power numbers of one configuration, mW.
#[derive(Debug, Clone, Copy, Default)]
pub struct PowerRow {
    /// Rotary clock-net power (tap wires + flip-flop pins).
    pub clock_mw: f64,
    /// Signal-net power (wire + pins + estimated repeaters).
    pub signal_mw: f64,
}

impl PowerRow {
    /// Total of both components.
    pub fn total(&self) -> f64 {
        self.clock_mw + self.signal_mw
    }
}

/// Everything the per-suite tables (III–VII) need, computed in one pass.
#[derive(Debug, Clone)]
pub struct SuiteResults {
    /// Which benchmark.
    pub suite: BenchmarkSuite,
    /// Base case (stages 1–3, network-flow assignment) — Table III.
    pub base: rotary_core::metrics::CostSnapshot,
    /// Base-case power.
    pub base_power: PowerRow,
    /// Full flow with the network-flow objective — Table IV.
    pub nf: FlowOutcome,
    /// Power of the network-flow result.
    pub nf_power: PowerRow,
    /// Full flow with the min-max-capacitance objective — Table V.
    pub ilp: FlowOutcome,
    /// Power of the ILP-formulation result.
    pub ilp_power: PowerRow,
    /// Base-case CPU seconds (stages 1–3).
    pub base_cpu: f64,
    /// Full-flow CPU: (stages 2–5, placer).
    pub nf_cpu: (f64, f64),
    /// ILP-route CPU: stage-3 assignment time, seconds.
    pub ilp_assign_cpu: f64,
}

/// Runs the complete experiment battery for one suite. Deterministic.
pub fn run_suite(suite: BenchmarkSuite) -> SuiteResults {
    let cfg = FlowConfig::default();
    let model_for = |period: f64| PowerModel::new(Technology { clock_period: period, ..cfg.tech });

    // Network-flow route (also yields the base case).
    let t0 = Instant::now();
    let mut c_nf = suite.circuit(TABLE_SEED);
    let nf = Flow::new(cfg).run(&mut c_nf, suite.ring_grid());
    let nf_cpu = (nf.stage_seconds(), nf.placer_seconds());
    let _ = t0;

    let model = model_for(nf.schedule.period);
    let base_power = PowerRow {
        clock_mw: model.rotary_clock_power(&c_nf, &nf.base_tap_wirelengths).total_mw,
        signal_mw: nf.base_signal_power.total_mw,
    };
    let nf_power = PowerRow {
        clock_mw: model.rotary_clock_power(&c_nf, &nf.taps.wirelengths()).total_mw,
        signal_mw: model.signal_power(&c_nf).total_mw,
    };
    // Base CPU ≈ stage-1 placement + one stage-2/3 pass; we measure it
    // directly with a dedicated (cheap) run below.
    let t_base = Instant::now();
    let mut c_base = suite.circuit(TABLE_SEED);
    {
        let placer = Placer::new(cfg.placer);
        placer.place(&mut c_base);
        let graph = SequentialGraph::extract(&c_base, &cfg.tech);
        let schedule = skew::max_slack_schedule(&graph, &cfg.tech);
        let params = RingParams { period: schedule.period, ..cfg.ring_params };
        let array = RingArray::generate(c_base.die, suite.ring_grid(), params);
        let costs = CandidateCosts::compute(&c_base, &array, &schedule, cfg.candidate_rings);
        let _ = assign::assign_network_flow(&costs, &array.capacities());
    }
    let base_cpu = t_base.elapsed().as_secs_f64();

    // ILP (min-max-cap) route.
    let mut c_ilp = suite.circuit(TABLE_SEED);
    let ilp_cfg = FlowConfig { objective: AssignmentObjective::MaxLoadCap, ..cfg };
    let t_ilp = Instant::now();
    let ilp = Flow::new(ilp_cfg).run(&mut c_ilp, suite.ring_grid());
    let _ilp_total = t_ilp.elapsed().as_secs_f64();
    let model_ilp = model_for(ilp.schedule.period);
    let ilp_power = PowerRow {
        clock_mw: model_ilp.rotary_clock_power(&c_ilp, &ilp.taps.wirelengths()).total_mw,
        signal_mw: model_ilp.signal_power(&c_ilp).total_mw,
    };
    // Time the assignment step alone (the CPU column of Tables I/V).
    let ilp_assign_cpu = {
        let graph = SequentialGraph::extract(&c_ilp, &cfg.tech);
        let schedule = skew::max_slack_schedule(&graph, &cfg.tech);
        let params = RingParams { period: schedule.period, ..cfg.ring_params };
        let array = RingArray::generate(c_ilp.die, suite.ring_grid(), params);
        let costs = CandidateCosts::compute(&c_ilp, &array, &schedule, cfg.candidate_rings);
        let t = Instant::now();
        let _ = assign::assign_min_max_cap(&costs, array.rings().len());
        t.elapsed().as_secs_f64()
    };

    SuiteResults {
        suite,
        base: nf.base,
        base_power,
        nf,
        nf_power,
        ilp,
        ilp_power,
        base_cpu,
        nf_cpu,
        ilp_assign_cpu,
    }
}

/// Table I row: greedy rounding vs generic branch & bound.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Suite name.
    pub suite: BenchmarkSuite,
    /// Integrality gap of greedy rounding.
    pub greedy_ig: f64,
    /// Greedy rounding CPU seconds (LP relaxation + rounding).
    pub greedy_cpu: f64,
    /// Integrality gap of the B&B incumbent, if one was found.
    pub bnb_ig: Option<f64>,
    /// B&B CPU seconds actually used.
    pub bnb_cpu: f64,
    /// Whether B&B hit its budget.
    pub bnb_timed_out: bool,
}

/// Runs the Table I comparison on one suite with the given B&B budget.
pub fn table1_row(suite: BenchmarkSuite, bnb_budget: Duration) -> Table1Row {
    let cfg = FlowConfig::default();
    let mut circuit = suite.circuit(TABLE_SEED);
    Placer::new(PlacerConfig::default()).place(&mut circuit);
    let graph = SequentialGraph::extract(&circuit, &cfg.tech);
    let schedule = skew::max_slack_schedule(&graph, &cfg.tech);
    let params = RingParams { period: schedule.period, ..cfg.ring_params };
    let array = RingArray::generate(circuit.die, suite.ring_grid(), params);
    let costs = CandidateCosts::compute(&circuit, &array, &schedule, cfg.candidate_rings);

    let t = Instant::now();
    let greedy = assign::assign_min_max_cap(&costs, array.rings().len()).expect("relaxation");
    let greedy_cpu = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let (bnb, _) = assign::solve_min_max_cap_bnb(&costs, array.rings().len(), bnb_budget);
    let bnb_cpu = t.elapsed().as_secs_f64();

    Table1Row {
        suite,
        greedy_ig: greedy.integrality_gap,
        greedy_cpu,
        bnb_ig: bnb.integrality_gap,
        bnb_cpu,
        bnb_timed_out: bnb.timed_out,
    }
}

/// Table II row: suite statistics + conventional clock-tree path length.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Suite.
    pub suite: BenchmarkSuite,
    /// Combinational cells.
    pub cells: usize,
    /// Flip-flops.
    pub flip_flops: usize,
    /// Nets.
    pub nets: usize,
    /// Average source–sink path length of a conventional zero-skew tree, µm.
    pub pl: f64,
    /// Rotary rings allocated.
    pub rings: usize,
}

/// Builds Table II for one suite (places the circuit, then builds the
/// conventional tree baseline).
pub fn table2_row(suite: BenchmarkSuite) -> Table2Row {
    let mut circuit = suite.circuit(TABLE_SEED);
    Placer::new(PlacerConfig::default()).place(&mut circuit);
    let tree = ClockTree::build(&circuit, &Technology::default());
    Table2Row {
        suite,
        cells: circuit.combinational_count(),
        flip_flops: circuit.flip_flop_count(),
        nets: circuit.net_count(),
        pl: tree.average_path_length(),
        rings: suite.ring_count(),
    }
}

/// Formats an improvement fraction as the paper's `Imp` percentage.
pub fn pct(x: f64) -> String {
    format!("{:+.1}%", x * 100.0)
}

/// Convenience: improvement of `new` over `base` as a display string.
pub fn imp(base: f64, new: f64) -> String {
    pct(improvement(base, new))
}

/// Builds a placed copy of a suite circuit (shared by several benches).
pub fn placed_circuit(suite: BenchmarkSuite) -> Circuit {
    let mut c = suite.circuit(TABLE_SEED);
    Placer::new(PlacerConfig::default()).place(&mut c);
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_smallest_suite() {
        let row = table2_row(BenchmarkSuite::S9234);
        assert_eq!(row.cells, 1510);
        assert_eq!(row.rings, 16);
        assert!(row.pl > 100.0);
    }

    #[test]
    fn table1_smallest_suite_greedy_beats_or_matches_budgeted_bnb() {
        let row = table1_row(BenchmarkSuite::S9234, Duration::from_millis(100));
        assert!(row.greedy_ig >= 1.0 - 1e-9);
        assert!(row.greedy_cpu < 60.0);
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(pct(0.345), "+34.5%");
        assert_eq!(imp(100.0, 120.0), "-20.0%");
    }

    /// Full-suite version of the toy-flow identity tests in `rotary_core`:
    /// carrying the stage-3 LP basis and the candidate-ring cache across
    /// flow iterations must not change a single output bit on a real
    /// ISCAS89 workload under the min-max-cap objective.
    fn warm_cold_suite_identity(suite: BenchmarkSuite) {
        let warm_cfg =
            FlowConfig { objective: AssignmentObjective::MaxLoadCap, ..FlowConfig::default() };
        let cold_cfg = FlowConfig { warm_start: false, ..warm_cfg };
        let mut a = suite.circuit(TABLE_SEED);
        let mut b = suite.circuit(TABLE_SEED);
        let w = Flow::new(warm_cfg).run(&mut a, suite.ring_grid());
        let c = Flow::new(cold_cfg).run(&mut b, suite.ring_grid());
        assert_eq!(w.schedule, c.schedule);
        assert_eq!(w.assignment, c.assignment);
        assert_eq!(w.base, c.base);
        assert_eq!(w.iterations, c.iterations);
        assert_eq!(w.taps.solutions, c.taps.solutions);
        for (&ff_a, &ff_b) in a.flip_flops().iter().zip(&b.flip_flops()) {
            assert_eq!(a.position(ff_a), b.position(ff_b));
        }
    }

    #[test]
    fn warm_started_flow_is_bit_identical_on_s9234() {
        warm_cold_suite_identity(BenchmarkSuite::S9234);
    }

    #[test]
    fn warm_started_flow_is_bit_identical_on_s5378() {
        warm_cold_suite_identity(BenchmarkSuite::S5378);
    }
}
