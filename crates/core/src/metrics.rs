//! Evaluation metrics used across the paper's tables.

use serde::{Deserialize, Serialize};

/// Wirelength–capacitance product (Table VII): `WCP = total WL × max cap`,
/// in µm·pF. The paper introduces it (by analogy with the power-delay
/// product) to compare the two assignment formulations, which trade
/// wirelength against maximum ring load.
pub fn wirelength_capacitance_product(total_wirelength: f64, max_cap: f64) -> f64 {
    total_wirelength * max_cap
}

/// Relative improvement of `new` over `base` as a fraction
/// (`0.37` = 37% better; negative = degradation). The paper reports this
/// as the `Imp` columns.
pub fn improvement(base: f64, new: f64) -> f64 {
    if base == 0.0 {
        0.0
    } else {
        (base - new) / base
    }
}

/// Metrics snapshot of one flow evaluation (stage 5 of Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostSnapshot {
    /// Average flip-flop distance to the assigned ring, µm.
    pub afd: f64,
    /// Total tapping wirelength, µm.
    pub tapping_wl: f64,
    /// Total signal wirelength (HPWL), µm.
    pub signal_wl: f64,
    /// Maximum ring load capacitance, pF.
    pub max_ring_cap: f64,
}

impl CostSnapshot {
    /// Total wirelength: tapping + signal (the paper's `Tot. WL`).
    pub fn total_wl(&self) -> f64 {
        self.tapping_wl + self.signal_wl
    }

    /// Overall cost as a weighted sum of tapping and signal wirelength —
    /// the stage-5 convergence criterion of Fig. 3.
    pub fn overall_cost(&self, tapping_weight: f64) -> f64 {
        tapping_weight * self.tapping_wl + self.signal_wl
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wcp_is_product() {
        assert_eq!(wirelength_capacitance_product(1000.0, 0.5), 500.0);
    }

    #[test]
    fn improvement_signs() {
        assert!((improvement(100.0, 50.0) - 0.5).abs() < 1e-12);
        assert!(improvement(100.0, 120.0) < 0.0);
        assert_eq!(improvement(0.0, 10.0), 0.0);
    }

    #[test]
    fn snapshot_totals() {
        let s = CostSnapshot { afd: 1.0, tapping_wl: 10.0, signal_wl: 90.0, max_ring_cap: 0.2 };
        assert_eq!(s.total_wl(), 100.0);
        assert_eq!(s.overall_cost(2.0), 110.0);
    }
}
