//! Monte Carlo skew-variation study — the paper's *motivation*, quantified.
//!
//! Section I argues for rotary clocking with two numbers: interconnect
//! process variation alone deflects conventional clock skew by ~25% of
//! nominal (ref. \[3\]), while a rotary test chip measured only 5.5 ps of
//! skew variability at 950 MHz (ref. \[13\]) because the wave's phase is set
//! by the ring's LC product and the junction points average phase across
//! rings. What *does* vary in the rotary scheme is only the short tap stub
//! from the ring to each flip-flop.
//!
//! This module samples per-wire resistance/capacitance multipliers
//! (a global lot component plus independent local components) and compares
//!
//! * the skew spread of a conventional zero-skew tree over the same
//!   flip-flops (every tree edge perturbed, imbalances accumulate along
//!   multi-millimeter root-to-sink paths), against
//! * the skew spread of the rotary taps (only the stub wire varies; ring
//!   phase variation is the measured-on-silicon residual, configurable).

use crate::tapping::TapAssignments;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rotary_cts::ClockTree;
use rotary_netlist::{CellKind, Circuit};
use rotary_ring::RingParams;
use rotary_timing::Technology;
use serde::{Deserialize, Serialize};

/// Variation model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VariationModel {
    /// σ of the chip-global multiplier component (lot/wafer).
    pub sigma_global: f64,
    /// σ of the per-wire local multiplier component.
    pub sigma_local: f64,
    /// Residual per-flip-flop σ of the ring phase, ns. The junction-point
    /// phase averaging of the ring array keeps this around a picosecond;
    /// the resulting *chip-level* spread (max−min over all flip-flops)
    /// then lands near the ~5.5 ps the \[13\] test chip measured.
    pub sigma_ring_phase: f64,
    /// Monte Carlo trials.
    pub trials: usize,
}

impl Default for VariationModel {
    fn default() -> Self {
        Self { sigma_global: 0.05, sigma_local: 0.08, sigma_ring_phase: 0.001, trials: 500 }
    }
}

/// Outcome of a Monte Carlo comparison.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VariationReport {
    /// Trials run.
    pub trials: usize,
    /// Mean of the conventional tree's per-trial skew (max−min sink delay), ns.
    pub tree_skew_mean: f64,
    /// σ of the conventional tree's per-trial skew, ns.
    pub tree_skew_sigma: f64,
    /// Mean of the rotary per-trial skew deviation (max−min tap-delay
    /// deviation across flip-flops), ns.
    pub rotary_skew_mean: f64,
    /// σ of the rotary per-trial skew deviation, ns.
    pub rotary_skew_sigma: f64,
}

impl VariationReport {
    /// How many times smaller the rotary mean skew deviation is.
    pub fn reduction_factor(&self) -> f64 {
        if self.rotary_skew_mean <= 0.0 {
            f64::INFINITY
        } else {
            self.tree_skew_mean / self.rotary_skew_mean
        }
    }
}

/// Standard-normal sample via Box–Muller (rand 0.8 without `rand_distr`).
fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Multiplier `max(0.5, 1 + σg·g + σl·l)` — clamped to keep RC physical.
fn multiplier(rng: &mut StdRng, global: f64, model: &VariationModel) -> f64 {
    (1.0 + global * model.sigma_global + normal(rng) * model.sigma_local).max(0.5)
}

/// Runs the Monte Carlo comparison over a placed circuit with finished tap
/// assignments. Deterministic in `seed`.
///
/// # Panics
///
/// Panics if the circuit has no flip-flops or `model.trials == 0`.
pub fn compare_variation(
    circuit: &Circuit,
    taps: &TapAssignments,
    params: &RingParams,
    tech: &Technology,
    model: &VariationModel,
    seed: u64,
) -> VariationReport {
    assert!(model.trials > 0, "need at least one trial");
    let tree = ClockTree::build(circuit, tech);
    let n_nodes = tree.edge_count() + 1;
    let ff_caps: Vec<f64> = circuit
        .cells
        .iter()
        .filter(|c| c.kind == CellKind::FlipFlop)
        .map(|c| c.input_cap)
        .collect();
    let nominal_stub: Vec<f64> = taps
        .solutions
        .iter()
        .zip(&ff_caps)
        .map(|(s, &cap)| params.stub_delay(s.wirelength, cap))
        .collect();

    let mut rng = StdRng::seed_from_u64(seed ^ 0x7a51_0e11);
    let mut tree_skews = Vec::with_capacity(model.trials);
    let mut rotary_skews = Vec::with_capacity(model.trials);

    for _ in 0..model.trials {
        let g = normal(&mut rng);
        // Conventional tree: every edge perturbed independently.
        let scale: Vec<(f64, f64)> = (0..n_nodes)
            .map(|_| (multiplier(&mut rng, g, model), multiplier(&mut rng, g, model)))
            .collect();
        let delays = tree.sink_delays_perturbed(tech, &scale);
        let max = delays.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = delays.iter().cloned().fold(f64::INFINITY, f64::min);
        tree_skews.push(max - min);

        // Rotary: each tap stub perturbed + the residual ring-phase jitter.
        let mut dev_max = f64::NEG_INFINITY;
        let mut dev_min = f64::INFINITY;
        for ((sol, &cap), &nom) in taps.solutions.iter().zip(&ff_caps).zip(&nominal_stub) {
            let r_mul = multiplier(&mut rng, g, model);
            let c_mul = multiplier(&mut rng, g, model);
            let perturbed = 0.5
                * (params.wire_res * r_mul)
                * (params.wire_cap * c_mul)
                * sol.wirelength
                * sol.wirelength
                + (params.wire_res * r_mul) * sol.wirelength * cap;
            let phase_jitter = normal(&mut rng) * model.sigma_ring_phase;
            let dev = perturbed - nom + phase_jitter;
            dev_max = dev_max.max(dev);
            dev_min = dev_min.min(dev);
        }
        rotary_skews.push(dev_max - dev_min);
    }

    let stats = |v: &[f64]| {
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        let var = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / v.len() as f64;
        (mean, var.sqrt())
    };
    let (tree_skew_mean, tree_skew_sigma) = stats(&tree_skews);
    let (rotary_skew_mean, rotary_skew_sigma) = stats(&rotary_skews);
    VariationReport {
        trials: model.trials,
        tree_skew_mean,
        tree_skew_sigma,
        rotary_skew_mean,
        rotary_skew_sigma,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{Flow, FlowConfig};
    use rotary_netlist::{Generator, GeneratorConfig};

    fn study(seed: u64) -> VariationReport {
        let mut c = Generator::new(GeneratorConfig {
            name: "var".into(),
            combinational: 150,
            flip_flops: 32,
            nets: 165,
            primary_inputs: 8,
            primary_outputs: 8,
            die_side: 1200.0,
            ..GeneratorConfig::default()
        })
        .generate(seed);
        let cfg = FlowConfig::default();
        let out = Flow::new(cfg).run(&mut c, 3);
        let params = RingParams { period: out.schedule.period, ..cfg.ring_params };
        compare_variation(
            &c,
            &out.taps,
            &params,
            &cfg.tech,
            &VariationModel { trials: 200, ..Default::default() },
            99,
        )
    }

    #[test]
    fn rotary_varies_far_less_than_conventional_tree() {
        let r = study(1);
        assert!(
            r.reduction_factor() > 3.0,
            "expected ≥3× lower skew variation, got {:.2}× (tree {:.4} vs rotary {:.4})",
            r.reduction_factor(),
            r.tree_skew_mean,
            r.rotary_skew_mean
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let a = study(2);
        let b = study(2);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_local_sigma_still_produces_tree_skew_from_global() {
        // A purely global multiplier scales wire RC coherently; only the
        // second-order mix of wire-wire vs wire-pin terms can unbalance
        // the tree, so the skew must stay well below the local-variation
        // case — verifies the spatial structure of the model matters.
        let mut c = Generator::new(GeneratorConfig {
            name: "var0".into(),
            combinational: 100,
            flip_flops: 20,
            nets: 112,
            primary_inputs: 6,
            primary_outputs: 6,
            die_side: 900.0,
            ..GeneratorConfig::default()
        })
        .generate(3);
        let cfg = FlowConfig::default();
        let out = Flow::new(cfg).run(&mut c, 2);
        let params = RingParams { period: out.schedule.period, ..cfg.ring_params };
        let model = VariationModel {
            sigma_local: 0.0,
            sigma_ring_phase: 0.0,
            trials: 50,
            ..Default::default()
        };
        let r = compare_variation(&c, &out.taps, &params, &cfg.tech, &model, 5);
        assert!(
            r.tree_skew_mean < 2e-3,
            "global-only variation must be second-order: {}",
            r.tree_skew_mean
        );
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn rejects_zero_trials() {
        let mut c = Generator::new(GeneratorConfig {
            name: "z".into(),
            combinational: 60,
            flip_flops: 12,
            nets: 70,
            primary_inputs: 4,
            primary_outputs: 4,
            ..GeneratorConfig::default()
        })
        .generate(1);
        let cfg = FlowConfig::default();
        let out = Flow::new(cfg).run(&mut c, 2);
        let model = VariationModel { trials: 0, ..Default::default() };
        let _ = compare_variation(&c, &out.taps, &cfg.ring_params, &cfg.tech, &model, 1);
    }
}
