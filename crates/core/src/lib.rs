//! Integrated placement and skew optimization for rotary clocking — the
//! primary contribution of the paper, assembled from the workspace's
//! substrate crates.
//!
//! The chicken-and-egg problem: rotary clock rings carry a distinct clock
//! phase at every point, so a flip-flop's placement constrains its feasible
//! skew and its skew target constrains where it may be placed. The paper
//! breaks the cycle with **flexible tapping** (implemented in
//! [`rotary_ring`]) and the six-stage methodology of Fig. 3, implemented
//! here in [`flow`]:
//!
//! 1. initial placement ([`rotary_place`]),
//! 2. max-slack skew optimization ([`skew::max_slack_schedule`]),
//! 3. flip-flop-to-ring assignment ([`assign`]) — min-cost network flow
//!    (minimize total tapping cost, Section V) or ILP + greedy rounding
//!    (minimize maximum ring load capacitance, Section VI),
//! 4. cost-driven skew optimization ([`skew::minimax_schedule`],
//!    [`skew::weighted_schedule`], Section VII),
//! 5. cost evaluation ([`metrics`]),
//! 6. pseudo-net insertion + stable incremental placement, looping back
//!    until the tapping cost converges.
//!
//! # Examples
//!
//! ```no_run
//! use rotary_core::flow::{Flow, FlowConfig};
//! use rotary_netlist::BenchmarkSuite;
//!
//! let mut circuit = BenchmarkSuite::S9234.circuit(42);
//! let outcome = Flow::new(FlowConfig::default()).run(&mut circuit, 4);
//! println!("tapping WL improved {:.1}%", outcome.tapping_improvement() * 100.0);
//! ```

pub mod assign;
pub mod flow;
pub mod local_tree;
pub mod metrics;
pub mod skew;
pub mod tapping;
pub mod telemetry;
pub mod variation;

pub use assign::{AssignOutcome, Assignment};
pub use flow::{Flow, FlowConfig, FlowOutcome, IterationMetrics, SkewVariant};
pub use local_tree::{build_local_trees, LocalTreeConfig, LocalTreesOutcome};
pub use metrics::{improvement, wirelength_capacitance_product};
pub use skew::SkewSchedule;
pub use tapping::{CandidateCosts, TapAssignments};
pub use telemetry::{FlowTelemetry, Stage, StageRecord};
pub use variation::{compare_variation, VariationModel, VariationReport};
