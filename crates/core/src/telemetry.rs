//! Structured per-stage instrumentation of the Fig. 3 flow.
//!
//! Every pass through a stage of [`crate::flow::Flow::run`] appends one
//! [`StageRecord`] — wall time, dominant problem size, and inner solver
//! iterations — to a [`FlowTelemetry`]. Recording is scope-based: a stage
//! opens a [`StageScope`] (which starts the clock), annotates it while the
//! work runs, and the record is pushed when the scope drops. The aggregate
//! views [`FlowTelemetry::stage_seconds`] / [`FlowTelemetry::placer_seconds`]
//! reproduce the two scalar timers the flow used to expose, so existing
//! consumers (the benchmark tables) keep their split of "optimization" vs
//! "placement" time.
//!
//! [`FlowTelemetry::to_json`] serializes the whole log without any external
//! dependency, for the `tables` binary's `BENCH_flow.json` dump.

use std::fmt;
use std::time::Instant;

/// The six stages of the paper's Fig. 3 methodology, plus the one-off
/// clock-period search that runs before the first stage-2 pass (recorded
/// separately so its cost is not misattributed to skew optimization; it
/// shares stage 2's Fig. 3 number).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Stage 1: initial wirelength-driven placement.
    InitialPlacement,
    /// One-off minimum-feasible-period search after the initial placement
    /// (the rings' period is fixed hardware; found once, before the loop).
    PeriodSearch,
    /// Stage 2: max-slack skew optimization.
    SkewOptimization,
    /// Stage 3: tapping-candidate generation + flip-flop-to-ring assignment.
    Assignment,
    /// Stage 4: cost-driven skew optimization (minimax or weighted).
    CostDrivenSkew,
    /// Stage 5: tap solution + cost evaluation.
    Evaluation,
    /// Stage 6: pseudo-net insertion + incremental placement.
    IncrementalPlacement,
}

/// All stages, in Fig. 3 order (the period search sits between stages 1
/// and 2, where it runs).
pub const STAGES: [Stage; 7] = [
    Stage::InitialPlacement,
    Stage::PeriodSearch,
    Stage::SkewOptimization,
    Stage::Assignment,
    Stage::CostDrivenSkew,
    Stage::Evaluation,
    Stage::IncrementalPlacement,
];

impl Stage {
    /// The stage's number in Fig. 3 (1–6; the period search belongs to the
    /// stage-2 family).
    pub fn number(self) -> usize {
        match self {
            Stage::InitialPlacement => 1,
            Stage::PeriodSearch | Stage::SkewOptimization => 2,
            Stage::Assignment => 3,
            Stage::CostDrivenSkew => 4,
            Stage::Evaluation => 5,
            Stage::IncrementalPlacement => 6,
        }
    }

    /// Position in [`STAGES`] (the rollup index).
    fn index(self) -> usize {
        match self {
            Stage::InitialPlacement => 0,
            Stage::PeriodSearch => 1,
            Stage::SkewOptimization => 2,
            Stage::Assignment => 3,
            Stage::CostDrivenSkew => 4,
            Stage::Evaluation => 5,
            Stage::IncrementalPlacement => 6,
        }
    }

    /// Stable snake_case name (used as the JSON identifier).
    pub fn name(self) -> &'static str {
        match self {
            Stage::InitialPlacement => "initial_placement",
            Stage::PeriodSearch => "period_search",
            Stage::SkewOptimization => "skew_optimization",
            Stage::Assignment => "assignment",
            Stage::CostDrivenSkew => "cost_driven_skew",
            Stage::Evaluation => "evaluation",
            Stage::IncrementalPlacement => "incremental_placement",
        }
    }

    /// Whether this stage is placement work (stages 1 and 6). The
    /// complement (stages 2–5) is the optimization pipeline proper.
    pub fn is_placer(self) -> bool {
        matches!(self, Stage::InitialPlacement | Stage::IncrementalPlacement)
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// One pass through one stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageRecord {
    /// Which stage ran.
    pub stage: Stage,
    /// Flow iteration the pass belongs to (0-based; stage 1 always 0).
    pub iteration: usize,
    /// Wall time of the pass, seconds.
    pub seconds: f64,
    /// Dominant problem size: cells placed, constraints solved, candidate
    /// arcs generated, flip-flops tapped, or pseudo-nets inserted.
    pub problem_size: usize,
    /// Inner solver iterations: simplex pivots, feasibility solves,
    /// augmenting paths, or canceled cycles. Zero for non-solver stages.
    pub solver_iterations: usize,
    /// Work units served from a cross-iteration cache instead of being
    /// recomputed (e.g. candidate ring lists reused by stage 3, LP columns
    /// a carried simplex basis mapped by stable key, flow-arc pairs the
    /// transportation engine carried untouched across the rebind, or
    /// constraint arcs a delta-rebound parametric engine did not have to
    /// re-examine). Zero for stages without a cache.
    pub reused_work: usize,
    /// Constraint arcs (stages 2/4), LP columns (stage 3, eq. 3 route),
    /// or flow-arc pairs (stage 3, network-flow route) whose bounds,
    /// costs, or existence actually changed when a persistent solver
    /// engine was re-targeted at this pass's system — the delta the
    /// incremental path replays. Zero for stages without such an engine.
    pub delta_arcs: usize,
    /// Distinct variables whose labels moved during this pass's
    /// relaxations — the affected region the delta seeding propagated
    /// through; for stage 3 the pivots the warm-started simplex spent
    /// reaching the new optimum (eq. 3 route) or the distinct network
    /// nodes the transportation rebind touched (network-flow route). Zero
    /// for stages without relaxation solves.
    pub affected_vertices: usize,
    /// Stage-4 round histogram, first axis: Dijkstra rounds the
    /// circulation ran across this pass's solves. Zero for other stages.
    pub rounds: usize,
    /// Stage-4 round histogram, second axis: augmenting paths routed.
    /// `paths / rounds` is the mean bulk-augmentation width; rounds ≈
    /// paths is the near-unique-distance regime the quantization ladder
    /// attacks. Zero for other stages.
    pub paths: usize,
    /// Most paths any single Dijkstra round of this pass served — the
    /// widest plateau the admissible subgraph offered. Zero for other
    /// stages.
    pub max_plateau: usize,
    /// Label of the solver backend that served this pass (stage 4: the
    /// circulation engine `"ssp-sequential"`, `"ssp-bucketed"`,
    /// `"cost-scaling"`, or `"quant-ladder"`; stage 3 on the eq. 3 route:
    /// `"lp-cold"`, `"lp-warm"`, or `"lp-dual-repair"`; stage 3 on the
    /// network-flow route: the transportation engine's `"tp-cold"` or
    /// `"tp-warm"`). Empty for stages without a backend choice.
    pub backend: &'static str,
}

/// The full per-stage log of one [`crate::flow::Flow::run`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlowTelemetry {
    records: Vec<StageRecord>,
}

impl FlowTelemetry {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a timed scope for one pass through `stage`; the record is
    /// appended when the scope drops.
    pub fn stage(&mut self, stage: Stage, iteration: usize) -> StageScope<'_> {
        StageScope {
            telemetry: self,
            stage,
            iteration,
            problem_size: 0,
            solver_iterations: 0,
            reused_work: 0,
            delta_arcs: 0,
            affected_vertices: 0,
            rounds: 0,
            paths: 0,
            max_plateau: 0,
            backend: "",
            start: Instant::now(),
        }
    }

    /// All records, in completion order.
    pub fn records(&self) -> &[StageRecord] {
        &self.records
    }

    /// Appends an already-built record (used by tests and by merges).
    pub fn push(&mut self, record: StageRecord) {
        self.records.push(record);
    }

    /// Total seconds spent in the optimization stages 2–5.
    pub fn stage_seconds(&self) -> f64 {
        self.seconds_where(|s| !s.is_placer())
    }

    /// Total seconds spent in the placement stages 1 and 6.
    pub fn placer_seconds(&self) -> f64 {
        self.seconds_where(Stage::is_placer)
    }

    /// Total wall seconds across all recorded stages.
    pub fn total_seconds(&self) -> f64 {
        self.seconds_where(|_| true)
    }

    /// Number of flow iterations the log covers.
    pub fn iterations(&self) -> usize {
        self.records.iter().map(|r| r.iteration + 1).max().unwrap_or(0)
    }

    /// Per-stage rollup in Fig. 3 order: `(stage, seconds, passes,
    /// solver_iterations)`. Stages that never ran report zeros.
    pub fn totals_by_stage(&self) -> [(Stage, f64, usize, usize); 7] {
        let mut out = STAGES.map(|s| (s, 0.0, 0usize, 0usize));
        for r in &self.records {
            let slot = &mut out[r.stage.index()];
            slot.1 += r.seconds;
            slot.2 += 1;
            slot.3 += r.solver_iterations;
        }
        out
    }

    /// Per-stage warm-start rollup in Fig. 3 order: `(stage, reused_work,
    /// delta_arcs, affected_vertices)`. Stages that never ran (or carry no
    /// engine) report zeros.
    pub fn reuse_by_stage(&self) -> [(Stage, usize, usize, usize); 7] {
        let mut out = STAGES.map(|s| (s, 0usize, 0usize, 0usize));
        for r in &self.records {
            let slot = &mut out[r.stage.index()];
            slot.1 += r.reused_work;
            slot.2 += r.delta_arcs;
            slot.3 += r.affected_vertices;
        }
        out
    }

    fn seconds_where(&self, pred: impl Fn(Stage) -> bool) -> f64 {
        self.records.iter().filter(|r| pred(r.stage)).map(|r| r.seconds).sum()
    }

    /// Serializes the log as a self-contained JSON object (no external
    /// serializer: numbers via `f64`'s shortest-roundtrip `Display`,
    /// stage names are fixed identifiers, nothing needs escaping).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(128 + 128 * self.records.len());
        s.push_str("{\n");
        s.push_str(&format!("  \"stage_seconds\": {},\n", json_f64(self.stage_seconds())));
        s.push_str(&format!("  \"placer_seconds\": {},\n", json_f64(self.placer_seconds())));
        s.push_str(&format!("  \"iterations\": {},\n", self.iterations()));
        s.push_str("  \"records\": [\n");
        for (k, r) in self.records.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"stage\": \"{}\", \"fig3_stage\": {}, \"iteration\": {}, \
                 \"seconds\": {}, \"problem_size\": {}, \"solver_iterations\": {}, \
                 \"reused_work\": {}, \"delta_arcs\": {}, \"affected_vertices\": {}, \
                 \"rounds\": {}, \"paths\": {}, \"max_plateau\": {}, \
                 \"backend\": \"{}\"}}{}\n",
                r.stage.name(),
                r.stage.number(),
                r.iteration,
                json_f64(r.seconds),
                r.problem_size,
                r.solver_iterations,
                r.reused_work,
                r.delta_arcs,
                r.affected_vertices,
                r.rounds,
                r.paths,
                r.max_plateau,
                r.backend,
                if k + 1 < self.records.len() { "," } else { "" },
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// JSON-safe float: finite values print via `Display` (shortest roundtrip),
/// non-finite values (not produced by timers, but cheap to guard) as null.
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Live recording handle for one stage pass; see [`FlowTelemetry::stage`].
pub struct StageScope<'a> {
    telemetry: &'a mut FlowTelemetry,
    stage: Stage,
    iteration: usize,
    problem_size: usize,
    solver_iterations: usize,
    reused_work: usize,
    delta_arcs: usize,
    affected_vertices: usize,
    rounds: usize,
    paths: usize,
    max_plateau: usize,
    backend: &'static str,
    start: Instant,
}

impl StageScope<'_> {
    /// Sets the pass's dominant problem size.
    pub fn set_problem_size(&mut self, size: usize) {
        self.problem_size = size;
    }

    /// Accumulates inner solver iterations attributed to this pass.
    pub fn add_solver_iterations(&mut self, iters: usize) {
        self.solver_iterations += iters;
    }

    /// Records work units this pass served from a cache instead of
    /// recomputing.
    pub fn set_reused_work(&mut self, reused: usize) {
        self.reused_work = reused;
    }

    /// Accumulates bound deltas replayed into a persistent solver engine.
    pub fn add_delta_arcs(&mut self, arcs: usize) {
        self.delta_arcs += arcs;
    }

    /// Accumulates the affected-region sizes of this pass's relaxations.
    pub fn add_affected_vertices(&mut self, vertices: usize) {
        self.affected_vertices += vertices;
    }

    /// Accumulates circulation Dijkstra rounds attributed to this pass.
    pub fn add_rounds(&mut self, rounds: usize) {
        self.rounds += rounds;
    }

    /// Accumulates circulation augmenting paths attributed to this pass.
    pub fn add_paths(&mut self, paths: usize) {
        self.paths += paths;
    }

    /// Raises the pass's widest-round watermark (max, not sum).
    pub fn note_max_plateau(&mut self, width: usize) {
        self.max_plateau = self.max_plateau.max(width);
    }

    /// Records the solver backend label that served this pass.
    pub fn set_backend(&mut self, backend: &'static str) {
        self.backend = backend;
    }

    /// Ends the scope now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for StageScope<'_> {
    fn drop(&mut self) {
        self.telemetry.records.push(StageRecord {
            stage: self.stage,
            iteration: self.iteration,
            seconds: self.start.elapsed().as_secs_f64(),
            problem_size: self.problem_size,
            solver_iterations: self.solver_iterations,
            reused_work: self.reused_work,
            delta_arcs: self.delta_arcs,
            affected_vertices: self.affected_vertices,
            rounds: self.rounds,
            paths: self.paths,
            max_plateau: self.max_plateau,
            backend: self.backend,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(stage: Stage, iteration: usize, seconds: f64) -> StageRecord {
        StageRecord {
            stage,
            iteration,
            seconds,
            problem_size: 10,
            solver_iterations: 3,
            reused_work: 0,
            delta_arcs: 0,
            affected_vertices: 0,
            rounds: 0,
            paths: 0,
            max_plateau: 0,
            backend: "",
        }
    }

    #[test]
    fn scope_records_on_drop() {
        let mut t = FlowTelemetry::new();
        {
            let mut scope = t.stage(Stage::Assignment, 2);
            scope.set_problem_size(77);
            scope.add_solver_iterations(5);
            scope.add_solver_iterations(2);
            scope.set_reused_work(13);
            scope.add_delta_arcs(4);
            scope.add_delta_arcs(6);
            scope.add_affected_vertices(21);
            scope.add_rounds(9);
            scope.add_rounds(2);
            scope.add_paths(40);
            scope.note_max_plateau(6);
            scope.note_max_plateau(4);
            scope.set_backend("cost-scaling");
        }
        assert_eq!(t.records().len(), 1);
        let r = t.records()[0];
        assert_eq!(r.stage, Stage::Assignment);
        assert_eq!(r.iteration, 2);
        assert_eq!(r.problem_size, 77);
        assert_eq!(r.solver_iterations, 7);
        assert_eq!(r.reused_work, 13);
        assert_eq!(r.delta_arcs, 10);
        assert_eq!(r.affected_vertices, 21);
        assert_eq!(r.rounds, 11);
        assert_eq!(r.paths, 40);
        assert_eq!(r.max_plateau, 6, "plateau watermark is a max, not a sum");
        assert_eq!(r.backend, "cost-scaling");
        assert!(r.seconds >= 0.0);
    }

    #[test]
    fn aggregates_split_placer_from_optimizer() {
        let mut t = FlowTelemetry::new();
        t.push(record(Stage::InitialPlacement, 0, 1.0));
        t.push(record(Stage::SkewOptimization, 0, 2.0));
        t.push(record(Stage::CostDrivenSkew, 0, 4.0));
        t.push(record(Stage::IncrementalPlacement, 0, 8.0));
        assert!((t.placer_seconds() - 9.0).abs() < 1e-12);
        assert!((t.stage_seconds() - 6.0).abs() < 1e-12);
        assert!((t.total_seconds() - 15.0).abs() < 1e-12);
        assert_eq!(t.iterations(), 1);
    }

    #[test]
    fn totals_by_stage_rolls_up_passes() {
        let mut t = FlowTelemetry::new();
        t.push(record(Stage::Evaluation, 0, 1.0));
        t.push(record(Stage::Evaluation, 1, 2.0));
        let totals = t.totals_by_stage();
        let eval = totals[Stage::Evaluation.index()];
        assert_eq!(eval.0, Stage::Evaluation);
        assert!((eval.1 - 3.0).abs() < 1e-12);
        assert_eq!(eval.2, 2);
        assert_eq!(eval.3, 6);
        assert_eq!(totals[0].2, 0, "initial placement never ran");
        assert_eq!(t.iterations(), 2);
    }

    #[test]
    fn reuse_by_stage_rolls_up_warm_start_fields() {
        let mut t = FlowTelemetry::new();
        let mut a = record(Stage::SkewOptimization, 0, 1.0);
        a.reused_work = 100;
        a.delta_arcs = 7;
        a.affected_vertices = 30;
        let mut b = record(Stage::SkewOptimization, 1, 1.0);
        b.reused_work = 50;
        b.delta_arcs = 3;
        b.affected_vertices = 12;
        t.push(a);
        t.push(b);
        let rollup = t.reuse_by_stage();
        let s2 = rollup[2];
        assert_eq!(s2.0, Stage::SkewOptimization);
        assert_eq!((s2.1, s2.2, s2.3), (150, 10, 42));
        assert_eq!(rollup[4].1, 0, "stage 4 never ran");
    }

    #[test]
    fn json_is_well_formed_and_complete() {
        let mut t = FlowTelemetry::new();
        t.push(record(Stage::InitialPlacement, 0, 0.25));
        let mut s4 = record(Stage::SkewOptimization, 0, 0.5);
        s4.backend = "ssp-bucketed";
        t.push(s4);
        let json = t.to_json();
        assert!(json.contains("\"stage\": \"initial_placement\""));
        assert!(json.contains("\"fig3_stage\": 2"));
        assert!(json.contains("\"stage_seconds\": 0.5"));
        assert!(json.contains("\"placer_seconds\": 0.25"));
        assert!(json.contains("\"iterations\": 1"));
        assert!(json.contains("\"delta_arcs\": 0"));
        assert!(json.contains("\"affected_vertices\": 0"));
        assert!(json.contains("\"rounds\": 0"));
        assert!(json.contains("\"paths\": 0"));
        assert!(json.contains("\"max_plateau\": 0"));
        assert!(json.contains("\"backend\": \"\""), "no-backend stages serialize empty");
        assert!(json.contains("\"backend\": \"ssp-bucketed\""));
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(json.matches('{').count(), json.matches('}').count(),);
        assert_eq!(json.matches('[').count(), json.matches(']').count(),);
        // Exactly one separating comma between the two records.
        assert_eq!(json.matches("}},\n").count() + json.matches("},\n").count(), 1);
    }

    #[test]
    fn stage_metadata_is_consistent() {
        // Fig. 3 numbers are non-decreasing along STAGES and cover 1–6;
        // rollup indices are exactly the array positions.
        let numbers: Vec<usize> = STAGES.iter().map(|s| s.number()).collect();
        assert_eq!(numbers, vec![1, 2, 2, 3, 4, 5, 6]);
        for (k, s) in STAGES.iter().enumerate() {
            assert_eq!(s.index(), k);
        }
        assert!(Stage::InitialPlacement.is_placer());
        assert!(Stage::IncrementalPlacement.is_placer());
        assert!(!Stage::Assignment.is_placer());
        assert!(!Stage::PeriodSearch.is_placer(), "period search is solver work");
        assert_eq!(Stage::CostDrivenSkew.to_string(), "cost_driven_skew");
        assert_eq!(Stage::PeriodSearch.to_string(), "period_search");
    }
}
