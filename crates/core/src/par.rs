//! Deterministic scoped-thread fan-out for embarrassingly parallel
//! per-flip-flop work.
//!
//! [`par_map`] splits an index range into contiguous chunks, one per
//! worker, and each worker writes results into its own slice of the output
//! — so the result vector is *identical* to the sequential
//! `(0..n).map(f).collect()` regardless of how many threads run or how
//! they interleave. The flow's determinism guarantee (same circuit, same
//! seed ⇒ bit-identical outcome) therefore survives parallelization.
//!
//! Small inputs stay sequential: spawning threads for a handful of
//! flip-flops costs more than it saves.

use std::num::NonZeroUsize;
use std::thread;

/// Inputs below this size run sequentially.
const MIN_PARALLEL: usize = 64;

/// Upper bound on worker threads (beyond this the per-item work in the
/// tapping kernels no longer scales).
const MAX_THREADS: usize = 8;

/// Maps `f` over `0..n` with scoped worker threads, returning the same
/// vector as `(0..n).map(f).collect()` — deterministically, independent of
/// thread count and scheduling.
pub fn par_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(MAX_THREADS)
        .min(n.max(1));
    if workers <= 1 || n < MIN_PARALLEL {
        return (0..n).map(f).collect();
    }

    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let chunk = n.div_ceil(workers);
    thread::scope(|s| {
        for (w, slice) in out.chunks_mut(chunk).enumerate() {
            let f = &f;
            s.spawn(move || {
                let base = w * chunk;
                for (k, slot) in slice.iter_mut().enumerate() {
                    *slot = Some(f(base + k));
                }
            });
        }
    });
    out.into_iter().map(|slot| slot.expect("every chunk slot is written by its worker")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn matches_sequential_map_above_threshold() {
        let n = MIN_PARALLEL * 3 + 7;
        let expect: Vec<usize> = (0..n).map(|i| i * i + 1).collect();
        assert_eq!(par_map(n, |i| i * i + 1), expect);
    }

    #[test]
    fn small_and_empty_inputs() {
        assert_eq!(par_map(0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map(3, |i| i + 10), vec![10, 11, 12]);
    }

    #[test]
    fn calls_f_exactly_once_per_index() {
        let n = MIN_PARALLEL * 2;
        let calls = AtomicUsize::new(0);
        let out = par_map(n, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), n);
        assert_eq!(out, (0..n).collect::<Vec<_>>());
    }
}
