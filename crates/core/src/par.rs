//! Deterministic scoped-thread fan-out — re-exported from
//! [`rotary_solver::par`], which owns the implementation so the simplex
//! pricing scan and the per-flip-flop tapping kernels share one set of
//! [`ParConfig`] thresholds. The historical `rotary_core::par::par_map`
//! path keeps working for existing callers.

pub use rotary_solver::par::{par_map, par_map_with, ParConfig};
