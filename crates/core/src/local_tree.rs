//! Local clock trees — the paper's first future-work extension
//! (Section IX): *"this could be improved by creating local trees that
//! connect the ring location to a set of flip-flops … care should be taken
//! of the skew permissible ranges of the flip-flop pairs. Such a scheme
//! could lead to potential benefits in wirelength and power dissipation."*
//!
//! Implementation: flip-flops assigned to the same ring whose delay
//! targets agree within a tolerance are clustered (greedy, radius-bounded);
//! each cluster of two or more is served by **one** tapping point feeding a
//! zero-skew subtree (built with the [`rotary_cts`] merge engine) instead
//! of per-flip-flop tap stubs. A cluster is kept only when it actually
//! shortens the wire.

use crate::skew::SkewSchedule;
use crate::tapping::TapAssignments;
use rotary_cts::ClockTree;
use rotary_netlist::geom::Point;
use rotary_netlist::{CellId, Circuit};
use rotary_ring::{RingArray, RingId};
use rotary_timing::Technology;
use serde::{Deserialize, Serialize};

/// Tuning for [`build_local_trees`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocalTreeConfig {
    /// Max delay-target spread within a cluster, ns. Must not exceed the
    /// schedule's guaranteed slack or the shared tap would violate
    /// permissible ranges.
    pub target_tolerance: f64,
    /// Max Manhattan distance between cluster members, µm.
    pub cluster_radius: f64,
    /// Max flip-flops per cluster.
    pub max_cluster_size: usize,
}

impl Default for LocalTreeConfig {
    fn default() -> Self {
        Self { target_tolerance: 0.01, cluster_radius: 120.0, max_cluster_size: 6 }
    }
}

/// One shared-tap cluster.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LocalTreeCluster {
    /// Ring the cluster taps.
    pub ring: RingId,
    /// Member flip-flops (≥ 2).
    pub members: Vec<CellId>,
    /// Shared tapping point on the ring.
    pub tap: Point,
    /// Total wirelength of the subtree + tap stub, µm.
    pub wirelength: f64,
    /// Wirelength the same members would need with individual taps, µm.
    pub direct_wirelength: f64,
}

impl LocalTreeCluster {
    /// Wire saved by sharing the tap, µm.
    pub fn saving(&self) -> f64 {
        self.direct_wirelength - self.wirelength
    }
}

/// Result of the local-tree post-pass.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LocalTreesOutcome {
    /// Accepted clusters.
    pub clusters: Vec<LocalTreeCluster>,
    /// Total tapping wirelength after the pass, µm (clustered members use
    /// their tree, the rest keep their individual taps).
    pub total_wirelength: f64,
    /// Total tapping wirelength before the pass, µm.
    pub direct_wirelength: f64,
}

impl LocalTreesOutcome {
    /// Fractional wirelength improvement of the pass.
    pub fn improvement(&self) -> f64 {
        crate::metrics::improvement(self.direct_wirelength, self.total_wirelength)
    }
}

/// Runs the local-tree post-pass over finished tap assignments.
///
/// # Panics
///
/// Panics if `taps` and `schedule` disagree in length, or if
/// `config.target_tolerance` is not positive.
pub fn build_local_trees(
    circuit: &Circuit,
    array: &RingArray,
    schedule: &SkewSchedule,
    taps: &TapAssignments,
    tech: &Technology,
    config: &LocalTreeConfig,
) -> LocalTreesOutcome {
    assert!(config.target_tolerance > 0.0, "tolerance must be positive");
    assert_eq!(taps.flip_flops.len(), schedule.targets.len());
    let n = taps.flip_flops.len();
    let direct_wirelength = taps.total_wirelength();

    // Greedy clustering per ring: walk members in target order, open a new
    // cluster when tolerance/radius/size would be violated.
    let mut by_ring: Vec<Vec<usize>> = vec![Vec::new(); array.rings().len()];
    for i in 0..n {
        by_ring[taps.rings[i].index()].push(i);
    }
    let mut clusters = Vec::new();
    let mut clustered = vec![false; n];

    for (ring_idx, members) in by_ring.iter().enumerate() {
        if members.len() < 2 {
            continue;
        }
        let mut sorted = members.clone();
        sorted.sort_by(|&a, &b| {
            schedule.targets[a].partial_cmp(&schedule.targets[b]).expect("finite targets")
        });
        let mut current: Vec<usize> = Vec::new();
        let flush = |group: &mut Vec<usize>,
                     clusters: &mut Vec<LocalTreeCluster>,
                     clustered: &mut Vec<bool>| {
            if group.len() >= 2 {
                if let Some(cl) = try_cluster(
                    circuit,
                    array,
                    RingId(ring_idx as u32),
                    group,
                    schedule,
                    taps,
                    tech,
                ) {
                    for &i in group.iter() {
                        clustered[i] = true;
                    }
                    clusters.push(cl);
                }
            }
            group.clear();
        };
        for &i in &sorted {
            let fits = current.len() < config.max_cluster_size
                && current.iter().all(|&j| {
                    (schedule.targets[i] - schedule.targets[j]).abs() <= config.target_tolerance
                        && circuit
                            .position(taps.flip_flops[i])
                            .manhattan(circuit.position(taps.flip_flops[j]))
                            <= config.cluster_radius
                });
            if fits {
                current.push(i);
            } else {
                flush(&mut current, &mut clusters, &mut clustered);
                current.push(i);
            }
        }
        flush(&mut current, &mut clusters, &mut clustered);
    }

    let mut total = 0.0;
    for cl in &clusters {
        total += cl.wirelength;
    }
    for (done, sol) in clustered.iter().zip(&taps.solutions).take(n) {
        if !done {
            total += sol.wirelength;
        }
    }
    LocalTreesOutcome { clusters, total_wirelength: total, direct_wirelength }
}

/// Builds the shared-tap subtree for one candidate group; `None` when the
/// tree would not beat individual taps.
fn try_cluster(
    circuit: &Circuit,
    array: &RingArray,
    ring: RingId,
    group: &[usize],
    schedule: &SkewSchedule,
    taps: &TapAssignments,
    tech: &Technology,
) -> Option<LocalTreeCluster> {
    let members: Vec<CellId> = group.iter().map(|&i| taps.flip_flops[i]).collect();
    let sinks: Vec<(Point, f64)> =
        members.iter().map(|&ff| (circuit.position(ff), circuit.cell(ff).input_cap)).collect();
    let direct: f64 = group.iter().map(|&i| taps.solutions[i].wirelength).sum();

    // Zero-skew subtree over the members, then one tap for its root with
    // the mean target (all members agree within the tolerance).
    let tree = ClockTree::build_over(&sinks, tech);
    let mean_target = group.iter().map(|&i| schedule.targets[i]).sum::<f64>() / group.len() as f64;
    let centroid = Point::new(
        sinks.iter().map(|s| s.0.x).sum::<f64>() / sinks.len() as f64,
        sinks.iter().map(|s| s.0.y).sum::<f64>() / sinks.len() as f64,
    );
    // The subtree presents its total capacitance at its root; tap for it
    // as a single "super sink" at the centroid.
    let sol = array.ring(ring).tap_for_target(centroid, tree.total_cap(), mean_target);
    let wirelength = tree.total_wirelength() + sol.wirelength;
    if wirelength < direct {
        Some(LocalTreeCluster {
            ring,
            members,
            tap: sol.point,
            wirelength,
            direct_wirelength: direct,
        })
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skew::SkewSchedule;
    use rotary_netlist::geom::Rect;
    use rotary_netlist::{Cell, CellKind, Circuit};
    use rotary_ring::{RingArray, RingParams};

    fn ff_cell() -> Cell {
        Cell {
            kind: CellKind::FlipFlop,
            width: 4.0,
            height: 10.0,
            input_cap: 0.01,
            drive_resistance: 0.5,
            intrinsic_delay: 0.03,
        }
    }

    /// Four flip-flops bunched together + one far away, all on ring 0 with
    /// identical targets: the bunch should cluster, the loner should not.
    fn setup() -> (Circuit, RingArray, SkewSchedule, TapAssignments) {
        let mut c = Circuit::new("lt", Rect::from_size(500.0, 500.0));
        let spots = [
            Point::new(240.0, 300.0),
            Point::new(260.0, 300.0),
            Point::new(250.0, 320.0),
            Point::new(255.0, 310.0),
            Point::new(60.0, 60.0),
        ];
        for p in spots {
            c.add_cell(ff_cell(), p);
        }
        let array = RingArray::generate(c.die, 1, RingParams::default());
        let schedule =
            SkewSchedule { targets: vec![0.30, 0.30, 0.30, 0.30, 0.30], slack: 0.05, period: 1.0 };
        let rings = vec![rotary_ring::RingId(0); 5];
        let taps = TapAssignments::solve(&c, &array, &schedule, &rings);
        (c, array, schedule, taps)
    }

    #[test]
    fn clusters_nearby_same_target_flip_flops() {
        let (c, array, schedule, taps) = setup();
        let tech = Technology::default();
        let out =
            build_local_trees(&c, &array, &schedule, &taps, &tech, &LocalTreeConfig::default());
        assert!(!out.clusters.is_empty(), "expected at least one cluster");
        let cl = &out.clusters[0];
        assert!(cl.members.len() >= 2);
        assert!(cl.saving() > 0.0, "clusters are only kept when they save wire");
    }

    #[test]
    fn pass_never_increases_total_wirelength() {
        let (c, array, schedule, taps) = setup();
        let tech = Technology::default();
        let out =
            build_local_trees(&c, &array, &schedule, &taps, &tech, &LocalTreeConfig::default());
        assert!(out.total_wirelength <= out.direct_wirelength + 1e-9);
        assert!(out.improvement() >= 0.0);
    }

    #[test]
    fn tolerance_zero_like_forbids_mixed_targets() {
        let (c, array, mut schedule, _) = setup();
        // Give everyone wildly different targets: nothing may cluster.
        schedule.targets = vec![0.0, 0.2, 0.4, 0.6, 0.8];
        let rings = vec![rotary_ring::RingId(0); 5];
        let taps = TapAssignments::solve(&c, &array, &schedule, &rings);
        let tech = Technology::default();
        let cfg = LocalTreeConfig { target_tolerance: 0.001, ..Default::default() };
        let out = build_local_trees(&c, &array, &schedule, &taps, &tech, &cfg);
        assert!(out.clusters.is_empty());
        assert!((out.total_wirelength - out.direct_wirelength).abs() < 1e-9);
    }

    #[test]
    fn radius_limits_cluster_membership() {
        let (c, array, schedule, taps) = setup();
        let tech = Technology::default();
        let cfg = LocalTreeConfig { cluster_radius: 5.0, ..Default::default() };
        let out = build_local_trees(&c, &array, &schedule, &taps, &tech, &cfg);
        for cl in &out.clusters {
            for a in &cl.members {
                for b in &cl.members {
                    assert!(c.position(*a).manhattan(c.position(*b)) <= 5.0 + 1e-9);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "tolerance must be positive")]
    fn rejects_nonpositive_tolerance() {
        let (c, array, schedule, taps) = setup();
        let cfg = LocalTreeConfig { target_tolerance: 0.0, ..Default::default() };
        let _ = build_local_trees(&c, &array, &schedule, &taps, &Technology::default(), &cfg);
    }
}
