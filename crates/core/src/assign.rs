//! Flip-flop-to-ring assignment (paper Sections V and VI).
//!
//! Two formulations over the candidate tapping costs:
//!
//! * [`assign_network_flow`] — minimize **total tapping cost** subject to
//!   per-ring capacities `U_j` via the min-cost network flow of Fig. 4
//!   (optimal in polynomial time).
//! * [`assign_min_max_cap`] — minimize the **maximum ring load
//!   capacitance** (eq. 3), an NP-hard ILP solved by LP-relaxation +
//!   greedy rounding (Fig. 5). [`solve_min_max_cap_bnb`] runs the same
//!   formulation through generic branch & bound with a time budget — the
//!   paper's Table I comparison.

use crate::tapping::CandidateCosts;
use rotary_ring::RingId;
use rotary_solver::ilp::{BranchAndBound, IlpOutcome};
use rotary_solver::lp::{LpBasis, LpProblem, LpSolution, LpStatus, RowKind, WarmMode};
use rotary_solver::mcmf::{FlowNetwork, Transportation};
use rotary_solver::rounding::{greedy_round, greedy_round_loaded};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// An assignment of every flip-flop to a ring.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Assignment {
    /// Ring per flip-flop, parallel to [`CandidateCosts::flip_flops`].
    pub rings: Vec<RingId>,
}

/// Diagnostics of the min-max-capacitance solve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AssignOutcome {
    /// The assignment.
    pub assignment: Assignment,
    /// Optimum of the LP relaxation (lower bound on the ILP), pF.
    pub lp_optimum: f64,
    /// Max ring load achieved by the rounded/integral solution, pF.
    pub achieved: f64,
    /// Integrality gap `IG = SOLN(ILP) / OPT(LP)` (eq. 4).
    pub integrality_gap: f64,
    /// Simplex iterations of the relaxation solve.
    pub lp_iterations: usize,
}

/// Error cases of the assignment solvers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AssignError {
    /// Total ring capacity is smaller than the number of flip-flops, or
    /// the candidate pruning disconnected some flip-flop from all rings
    /// with residual capacity.
    InsufficientCapacity,
    /// The LP relaxation failed to reach optimality. Carries the simplex
    /// verdict (iteration limit vs numerical breakdown vs infeasible) and
    /// the iterations spent, so callers can tell "raise the budget" from
    /// "the arithmetic broke down".
    RelaxationFailed {
        /// Terminal status the simplex reported.
        status: LpStatus,
        /// Simplex iterations performed before giving up.
        iterations: usize,
    },
}

impl std::fmt::Display for AssignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InsufficientCapacity => {
                write!(f, "ring capacities cannot accommodate all flip-flops")
            }
            Self::RelaxationFailed { status, iterations } => write!(
                f,
                "LP relaxation did not reach optimality: {status:?} after {iterations} iterations"
            ),
        }
    }
}

impl std::error::Error for AssignError {}

/// Solver-effort statistics from one assignment solve, for flow telemetry
/// (the assignment analogue of `skew::SkewStats`). Written by both stage-3
/// engines: the eq.-3 LP relaxation ([`assign_min_max_cap_ctx`]) and the
/// Section-V transportation engine ([`assign_network_flow_ctx`]) — field
/// docs note the meaning on each route.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AssignStats {
    /// Simplex pivots of the relaxation solve (dual repair + primal); on
    /// the network-flow route, augmenting paths pushed by the
    /// transportation engine.
    pub lp_iterations: usize,
    /// Structural LP columns carried over from the previous pass — either
    /// patched in place (unchanged candidate structure) or remapped into
    /// the rebuilt matrix by stable key. Zero on the first pass. On the
    /// network-flow route: carried flow-arc pairs that survived the warm
    /// rebind untouched.
    pub cols_reused: usize,
    /// Structural LP columns that had to be built fresh because their
    /// flip-flop's candidate ring set changed (or appeared) this pass. On
    /// the network-flow route: arc pairs re-priced, re-capped, or rebuilt.
    pub cols_rebuilt: usize,
    /// Pivots spent inside a warm-started solve (the delta the repair
    /// phase replays); zero when the solve ran cold. On the network-flow
    /// route: distinct nodes touched by the rebind delta.
    pub warm_pivots: usize,
    /// How the simplex actually started ([`WarmMode`]); unused (default)
    /// on the network-flow route.
    pub warm_mode: WarmMode,
    /// Engine label of the solve that produced these stats: `tp-cold` /
    /// `tp-warm` from the transportation engine; `None` from the LP route
    /// (whose label the flow derives from [`WarmMode`]).
    pub backend: Option<&'static str>,
}

/// Reusable state carried across the re-solves of the flow loop (the
/// assignment analogue of `skew::SkewContext`): the optimal basis of the
/// previous relaxation warm-starts the next one, and the previous pass's
/// LP matrix is carried as a keyed column map. When the per-flip-flop
/// candidate ring structure is unchanged (the common case — incremental
/// placement moves flip-flops by fractions of a ring pitch), the next
/// pass *patches* the carried matrix's costs and loads in place instead
/// of rebuilding it, and the carried basis — mapped by stable
/// flip-flop × ring keys — is repaired by the simplex's dual phase
/// instead of being discarded. Solutions are bit-identical to a cold
/// rebuild either way, thanks to the simplex's canonical basis
/// extraction.
#[derive(Debug, Clone, Default)]
pub struct AssignContext {
    basis: Option<LpBasis>,
    cached: Option<CachedLp>,
    /// The incremental transportation engine of the network-flow route,
    /// carried beside the LP basis: flow and dual potentials survive
    /// between passes (and candidate add/drop, keyed by flip-flop × ring
    /// exactly like the LP columns).
    transportation: Option<Transportation>,
    /// Reusable quantized candidate-list scratch for the engine (cleared
    /// and refilled each pass; never reallocated in steady state).
    tp_cands: Vec<Vec<(u32, i64)>>,
    tp_caps: Vec<i64>,
    /// The previous pass's rounded assignment — the seed of the crash
    /// basis used when the candidate structure changed too much for the
    /// carried simplex basis to be worth repairing.
    last_rings: Option<Vec<RingId>>,
    /// When set, a solve with no carried incumbent crash-starts from the
    /// nearest-candidate assignment instead of the all-artificial big-M
    /// start (skips the feasibility phase on the very first pass). Off by
    /// default so one-shot solves keep the classic cold reference path;
    /// survives [`AssignContext::reset`] — it is configuration, not state.
    crash_start: bool,
    stats: AssignStats,
}

/// The previous pass's relaxation, kept for in-place delta patching.
#[derive(Debug, Clone)]
struct CachedLp {
    lp: LpProblem,
    var_of: Vec<Vec<usize>>,
    /// LP row index of each ring's load row (`None` for candidate-less
    /// rings, which get no row).
    ring_row_of: Vec<Option<usize>>,
    /// Per-flip-flop candidate ring ids the matrix was built for.
    structure: Vec<Vec<RingId>>,
}

impl AssignContext {
    /// A context with no carried state (first solve is cold).
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops the carried basis, column map, and transportation engine;
    /// the next solve starts cold from a freshly built matrix/network.
    pub fn reset(&mut self) {
        self.basis = None;
        self.cached = None;
        self.transportation = None;
        self.last_rings = None;
    }

    /// Whether a basis from a previous solve is being carried.
    pub fn has_basis(&self) -> bool {
        self.basis.is_some()
    }

    /// Enables (or disables) crash-starting incumbent-less solves from
    /// the nearest-candidate assignment. See the field doc.
    pub fn set_crash_start(&mut self, on: bool) {
        self.crash_start = on;
    }

    /// Telemetry of the most recent [`assign_min_max_cap_ctx`] or
    /// [`assign_network_flow_ctx`] call.
    pub fn stats(&self) -> AssignStats {
        self.stats
    }
}

/// Cost quantization step of the transportation engine: tapping costs in
/// µm are scaled by 2^40 and rounded once, exactly as the stage-4 skew
/// duals quantize theirs, so optimality (and the canonical extraction) is
/// exact integer arithmetic end to end.
const COST_SCALE: f64 = 1_099_511_627_776.0;

fn quantize(x: f64) -> i64 {
    (x * COST_SCALE).round() as i64
}

/// Section V: min-cost network flow over the Fig. 4 network.
///
/// Vertices: source → one per flip-flop → one per candidate ring → target.
/// Arc costs are the tapping costs `c_ij`; ring→target arcs carry the
/// capacities `U_j`.
///
/// One-shot convenience over [`assign_network_flow_ctx`] (a fresh
/// transportation engine, cold solve); the flow loop carries the context
/// version instead.
///
/// # Errors
///
/// [`AssignError::InsufficientCapacity`] when not all flip-flops can be
/// routed.
pub fn assign_network_flow(
    costs: &CandidateCosts,
    capacities: &[usize],
) -> Result<Assignment, AssignError> {
    let mut ctx = AssignContext::new();
    assign_network_flow_ctx(costs, capacities, false, &mut ctx).map(|(a, _)| a)
}

/// The Section-V assignment through the incremental
/// [`Transportation`] engine carried in `ctx` (the network-flow analogue
/// of [`assign_min_max_cap_ctx`]).
///
/// Candidate tapping costs are quantized once to exact 2^40 integers;
/// with `warm` the engine reuses the carried flow and dual potentials —
/// re-pricing only drifted arcs when the candidate structure is unchanged
/// and re-installing carried flow keyed by flip-flop × ring when it is
/// not. The returned assignment is recovered from the canonical duals and
/// is **bit-identical** between warm and cold solves of the same pass.
/// Returns the assignment and the augmenting-path count (flow telemetry);
/// effort counters land in [`AssignContext::stats`].
///
/// # Errors
///
/// [`AssignError::InsufficientCapacity`] when not all flip-flops can be
/// routed; the engine resets itself and the next solve runs cold.
pub fn assign_network_flow_ctx(
    costs: &CandidateCosts,
    capacities: &[usize],
    warm: bool,
    ctx: &mut AssignContext,
) -> Result<(Assignment, usize), AssignError> {
    let f = costs.len();
    let r = capacities.len();
    let AssignContext { transportation, tp_cands, tp_caps, stats, .. } = ctx;
    let tp = match transportation {
        Some(tp) if tp.dims() == (f, r) => tp,
        _ => transportation.insert(Transportation::new(f, r)),
    };
    tp_cands.truncate(f);
    tp_cands.resize_with(f, Vec::new);
    for (list, cands) in tp_cands.iter_mut().zip(&costs.candidates) {
        list.clear();
        list.extend(cands.iter().map(|&(rid, wl, _)| (rid.0, quantize(wl))));
    }
    tp_caps.clear();
    tp_caps.extend(capacities.iter().map(|&u| u as i64));
    match tp.solve(tp_cands, tp_caps, warm) {
        Ok(tstats) => {
            *stats = AssignStats {
                lp_iterations: tstats.correction_paths,
                cols_reused: tstats.reused_arcs,
                cols_rebuilt: tstats.delta_pairs,
                warm_pivots: tstats.touched_nodes,
                warm_mode: WarmMode::default(),
                backend: Some(tp.backend_label()),
            };
            let rings = tp.assignment().iter().map(|&j| RingId(j)).collect();
            Ok((Assignment { rings }, tstats.correction_paths))
        }
        Err(_) => {
            *stats = AssignStats { backend: Some(tp.backend_label()), ..AssignStats::default() };
            Err(AssignError::InsufficientCapacity)
        }
    }
}

/// [`assign_network_flow`] plus the number of augmenting paths the
/// min-cost-flow solver pushed.
///
/// This is the original one-shot float-cost [`FlowNetwork`] build — kept
/// **off the hot path** as the reference oracle the transportation-engine
/// tests cross-check against (float successive-shortest-paths vs exact
/// quantized integer solve). Flow code goes through
/// [`assign_network_flow_ctx`].
///
/// # Errors
///
/// Same conditions as [`assign_network_flow`].
pub fn assign_network_flow_with_stats(
    costs: &CandidateCosts,
    capacities: &[usize],
) -> Result<(Assignment, usize), AssignError> {
    let f = costs.len();
    let r = capacities.len();
    let mut net = FlowNetwork::new(2 + f + r);
    let source = net.node(0);
    let target = net.node(1);
    let ff_node = |i: usize| i + 2;
    let ring_node = |j: usize| 2 + f + j;
    for i in 0..f {
        net.add_arc(source, net.node(ff_node(i)), 1, 0.0);
    }
    let mut arc_ids = Vec::with_capacity(f);
    for (i, cands) in costs.candidates.iter().enumerate() {
        let mut arcs = Vec::with_capacity(cands.len());
        for &(rid, wl, _) in cands {
            arcs.push((
                rid,
                net.add_arc(net.node(ff_node(i)), net.node(ring_node(rid.index())), 1, wl),
            ));
        }
        arc_ids.push(arcs);
    }
    for (j, &u) in capacities.iter().enumerate() {
        net.add_arc(net.node(ring_node(j)), target, u as i64, 0.0);
    }
    let (flow, _cost) =
        net.min_cost_flow(source, target, f as i64).ok_or(AssignError::InsufficientCapacity)?;
    if flow < f as i64 {
        return Err(AssignError::InsufficientCapacity);
    }
    let rings = arc_ids
        .iter()
        .map(|arcs| {
            arcs.iter()
                .find(|&&(_, a)| net.flow_on(a) > 0)
                .map(|&(rid, _)| rid)
                .expect("saturated flip-flop has exactly one unit arc")
        })
        .collect();
    Ok((Assignment { rings }, net.augmentations()))
}

/// Builds the Section VI LP relaxation: variables `x_ij` (one per
/// candidate pair, column-major by flip-flop) plus the makespan variable
/// `t` (last column); `min t` s.t. `Σ_j x_ij = 1` and
/// `Σ_i C^p_ij·x_ij − t ≤ 0`.
///
/// Public so benchmarks can price the real relaxation under different
/// simplex pricing rules; flow code goes through
/// [`assign_min_max_cap_ctx`].
pub fn min_max_lp(costs: &CandidateCosts, n_rings: usize) -> (LpProblem, Vec<Vec<usize>>) {
    let (lp, var_of, _) = build_min_max_lp(costs, n_rings);
    (lp, var_of)
}

/// Stable simplex key of the `x_ij` column (flip-flop × candidate ring) —
/// what lets a carried basis survive candidate-set changes between flow
/// iterations.
fn col_key(ff: usize, rid: RingId) -> u64 {
    ((ff as u64) << 32) | (u64::from(rid.0) + 1)
}

/// Stable key of the makespan variable `t`.
const T_VAR_KEY: u64 = u64::MAX;

/// Tag distinguishing ring-load row keys from flip-flop row keys.
const RING_ROW_TAG: u64 = 1 << 48;

/// [`min_max_lp`] plus the LP row index of every ring's load row (`None`
/// for rings no flip-flop considers) — the map the in-place patching of
/// [`assign_min_max_cap_ctx`] needs.
fn build_min_max_lp(
    costs: &CandidateCosts,
    n_rings: usize,
) -> (LpProblem, Vec<Vec<usize>>, Vec<Option<usize>>) {
    let f = costs.len();
    let mut var_of = Vec::with_capacity(f);
    let mut n_vars = 0usize;
    for cands in &costs.candidates {
        let vars: Vec<usize> = (0..cands.len()).map(|k| n_vars + k).collect();
        n_vars += cands.len();
        var_of.push(vars);
    }
    let t_var = n_vars;
    // Primary objective: the makespan t. A vanishing wirelength tiebreak
    // (1e-9 µm⁻¹) steers the LP among the many max-cap-equivalent optima
    // toward shorter taps, mirroring the paper's pruned-arc behaviour
    // without measurably changing the achieved maximum load.
    let mut obj = vec![0.0; n_vars + 1];
    obj[t_var] = 1.0;
    let mut col_keys = vec![0u64; n_vars + 1];
    col_keys[t_var] = T_VAR_KEY;
    for (i, cands) in costs.candidates.iter().enumerate() {
        for (k, &(rid, wl, _)) in cands.iter().enumerate() {
            obj[var_of[i][k]] = 1e-9 * wl;
            col_keys[var_of[i][k]] = col_key(i, rid);
        }
    }
    let mut lp = LpProblem::minimize(obj);
    let mut row_keys: Vec<u64> = Vec::with_capacity(f);
    for (i, vars) in var_of.iter().enumerate().take(f) {
        let row: Vec<(usize, f64)> = vars.iter().map(|&v| (v, 1.0)).collect();
        lp.add_row(RowKind::Eq, 1.0, &row);
        row_keys.push(i as u64);
    }
    let mut ring_rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n_rings];
    for (i, cands) in costs.candidates.iter().enumerate() {
        for (k, &(rid, _, load)) in cands.iter().enumerate() {
            ring_rows[rid.index()].push((var_of[i][k], load));
        }
    }
    let mut ring_row_of = vec![None; n_rings];
    for (j, row) in ring_rows.into_iter().enumerate() {
        if row.is_empty() {
            continue;
        }
        let mut row = row;
        row.push((t_var, -1.0));
        ring_row_of[j] = Some(lp.add_row(RowKind::Le, 0.0, &row));
        row_keys.push(RING_ROW_TAG | j as u64);
    }
    lp.set_col_keys(col_keys);
    lp.set_row_keys(row_keys);
    (lp, var_of, ring_row_of)
}

/// Builds the crash basis seeded from the incumbent assignment `last`
/// (see [`assign_min_max_cap_ctx`]): the incumbent's surviving
/// flip-flop × ring columns, the makespan variable, and the slack of every
/// ring-load row except the one carrying the incumbent's peak load (whose
/// row the makespan column pivots). Flip-flops whose incumbent ring is no
/// longer a candidate are left to the solver's artificial fill. `None`
/// when no ring row exists to pivot the makespan against.
fn crash_basis(
    costs: &CandidateCosts,
    n_rings: usize,
    ring_row_of: &[Option<usize>],
    last: &[RingId],
) -> Option<LpBasis> {
    let mut load_of_ring = vec![0.0f64; n_rings];
    let mut structural = vec![(T_VAR_KEY, false)];
    for (i, (cands, &rid)) in costs.candidates.iter().zip(last).enumerate() {
        if let Some(&(_, _, load)) = cands.iter().find(|&&(r, _, _)| r == rid) {
            structural.push((col_key(i, rid), false));
            load_of_ring[rid.index()] += load;
        }
    }
    let tight = (0..n_rings).filter(|&j| ring_row_of[j].is_some()).max_by(|&a, &b| {
        load_of_ring[a].partial_cmp(&load_of_ring[b]).expect("loads are finite").then(b.cmp(&a))
    })?;
    let slacks = (0..n_rings)
        .filter(|&j| j != tight && ring_row_of[j].is_some())
        .map(|j| RING_ROW_TAG | j as u64);
    Some(LpBasis::crash(structural, slacks))
}

/// Max ring load of an integral assignment under the candidate loads.
fn max_load_of(costs: &CandidateCosts, n_rings: usize, rings: &[RingId]) -> f64 {
    let mut loads = vec![0.0; n_rings];
    for (i, &rid) in rings.iter().enumerate() {
        let &(_, _, load) = costs.candidates[i]
            .iter()
            .find(|&&(r, _, _)| r == rid)
            .expect("assigned ring is a candidate");
        loads[rid.index()] += load;
    }
    loads.into_iter().fold(0.0, f64::max)
}

/// Section VI: LP-relaxation + greedy rounding (Fig. 5). Cold solve; see
/// [`assign_min_max_cap_ctx`] for the warm-started flow-loop variant.
///
/// # Errors
///
/// [`AssignError::RelaxationFailed`] if the simplex does not reach
/// optimality.
pub fn assign_min_max_cap(
    costs: &CandidateCosts,
    n_rings: usize,
) -> Result<AssignOutcome, AssignError> {
    assign_min_max_cap_ctx(costs, n_rings, &mut AssignContext::new())
}

/// [`assign_min_max_cap`] with an [`AssignContext`] carried across calls:
/// the optimal basis of the previous relaxation warm-starts the current
/// simplex (dual-simplex repair accepts drifted costs/loads and even
/// changed candidate columns), and when the candidate ring structure is
/// unchanged the previous pass's LP matrix is patched in place instead of
/// rebuilt. The context is updated with this solve's optimal basis and
/// matrix on success and cleared on failure.
///
/// # Errors
///
/// [`AssignError::RelaxationFailed`] if the simplex does not reach
/// optimality.
pub fn assign_min_max_cap_ctx(
    costs: &CandidateCosts,
    n_rings: usize,
    ctx: &mut AssignContext,
) -> Result<AssignOutcome, AssignError> {
    let structure: Vec<Vec<RingId>> =
        costs.candidates.iter().map(|c| c.iter().map(|&(r, _, _)| r).collect()).collect();
    let total_cols: usize = costs.candidates.iter().map(Vec::len).sum();
    let (lp, var_of, ring_row_of, cols_reused, cols_rebuilt) = match ctx.cached.take() {
        // Structure unchanged: carry the matrix, patch the deltas (the
        // wirelength tiebreak costs and the ring-row loads) in place. The
        // patched problem is representationally identical to a fresh
        // build, so downstream results cannot differ.
        Some(mut c) if c.ring_row_of.len() == n_rings && c.structure == structure => {
            for (i, cands) in costs.candidates.iter().enumerate() {
                for (k, &(rid, wl, load)) in cands.iter().enumerate() {
                    let v = c.var_of[i][k];
                    c.lp.set_objective_coeff(v, 1e-9 * wl);
                    let row = c.ring_row_of[rid.index()].expect("candidate ring has a load row");
                    c.lp.update_coeff(v, row, load);
                }
            }
            (c.lp, c.var_of, c.ring_row_of, total_cols, 0)
        }
        // Structure changed (or first pass): rebuild, and count how many
        // flip-flop × ring columns survive by key — those are what the
        // keyed basis resolution can still map.
        prev => {
            let (lp, var_of, ring_row_of) = build_min_max_lp(costs, n_rings);
            let reused = prev
                .map(|c| {
                    structure
                        .iter()
                        .zip(&c.structure)
                        .map(|(now, was)| now.iter().filter(|r| was.contains(r)).count())
                        .sum()
                })
                .unwrap_or(0);
            (lp, var_of, ring_row_of, reused, total_cols - reused.min(total_cols))
        }
    };
    // Warm-start choice. Unchanged structure means small drift: the
    // carried optimal basis is near the new optimum and the dual-simplex
    // repair replays the delta cheaply. Changed structure means the
    // placement moved flip-flops across ring neighborhoods — the old
    // basis is typically hundreds of columns from the new optimum and
    // repairing it costs nearly a cold solve — so instead seed a *crash*
    // basis from the incumbent rounded assignment: one surviving column
    // per flip-flop at its old ring, the makespan column pivoting the
    // tightest ring row, and every other ring row on its slack. That
    // vertex is primal feasible by construction, so the solve skips the
    // big-M feasibility phase and starts the primal simplex from the
    // incumbent instead of from nothing.
    let crash = if cols_rebuilt > 0 {
        match (&ctx.last_rings, ctx.crash_start) {
            (Some(last), _) => crash_basis(costs, n_rings, &ring_row_of, last),
            // No incumbent yet (first pass): crash from a greedy
            // least-peak-load sweep over the candidate lists when enabled —
            // primal feasible like any integral assignment, spares the
            // big-M feasibility phase its ~m artificial evictions, and
            // lands far closer to the min-max optimum than the plain
            // nearest-ring choice (which overloads central rings).
            (None, true) => {
                let mut loads = vec![0.0f64; n_rings];
                let mut greedy: Vec<RingId> = costs
                    .candidates
                    .iter()
                    .map(|cands| {
                        let mut best = 0usize;
                        let mut best_peak = f64::INFINITY;
                        for (k, &(rid, _, load)) in cands.iter().enumerate() {
                            let peak = loads[rid.index()] + load;
                            if peak < best_peak {
                                best = k;
                                best_peak = peak;
                            }
                        }
                        let (rid, _, load) = cands[best];
                        loads[rid.index()] += load;
                        rid
                    })
                    .collect();
                // A couple of deterministic reassignment sweeps: with all
                // loads known, move each flip-flop to the candidate that
                // minimizes its ring's resulting load. Each sweep is
                // O(f·k) and pulls the start vertex visibly closer to the
                // min-max optimum (fewer simplex pivots to pay later).
                for _ in 0..2 {
                    for (i, cands) in costs.candidates.iter().enumerate() {
                        let cur = greedy[i];
                        let cur_load =
                            cands.iter().find(|&&(r, _, _)| r == cur).map_or(0.0, |&(_, _, l)| l);
                        loads[cur.index()] -= cur_load;
                        let mut best = 0usize;
                        let mut best_peak = f64::INFINITY;
                        for (k, &(rid, _, load)) in cands.iter().enumerate() {
                            let peak = loads[rid.index()] + load;
                            if peak < best_peak {
                                best = k;
                                best_peak = peak;
                            }
                        }
                        let (rid, _, load) = cands[best];
                        loads[rid.index()] += load;
                        greedy[i] = rid;
                    }
                }
                crash_basis(costs, n_rings, &ring_row_of, &greedy)
            }
            (None, false) => None,
        }
    } else {
        None
    };
    let warm_basis = crash.as_ref().or(ctx.basis.as_ref());
    let (sol, basis, warm) = lp.solve_with_basis_stats(warm_basis);
    ctx.stats = AssignStats {
        lp_iterations: sol.iterations,
        cols_reused,
        cols_rebuilt,
        warm_pivots: if warm.mode == WarmMode::Cold { 0 } else { sol.iterations },
        warm_mode: warm.mode,
        backend: None,
    };
    if sol.status != LpStatus::Optimal {
        ctx.reset();
        return Err(AssignError::RelaxationFailed {
            status: sol.status,
            iterations: sol.iterations,
        });
    }
    ctx.basis = basis;
    // The crash seed for the next pass is the per-flip-flop *LP argmax*,
    // not the rounded assignment: rounding's load-aware tie steering moves
    // rows off the relaxation vertex, and the crash wants to start as close
    // to the previous optimal basis as an integral vertex can.
    ctx.last_rings = Some(
        costs
            .candidates
            .iter()
            .zip(&var_of)
            .map(|(cands, vars)| {
                let mut best = 0usize;
                for (k, &v) in vars.iter().enumerate().skip(1) {
                    if sol.x[v] > sol.x[vars[best]] {
                        best = k;
                    }
                }
                cands[best].0
            })
            .collect(),
    );
    ctx.cached = Some(CachedLp { lp, var_of: var_of.clone(), ring_row_of, structure });
    let rings = round_assignment(costs, &sol, &var_of, n_rings);
    let achieved = max_load_of(costs, n_rings, &rings);
    let lp_opt = sol.objective.max(1e-12);
    Ok(AssignOutcome {
        assignment: Assignment { rings },
        lp_optimum: sol.objective,
        achieved,
        integrality_gap: achieved / lp_opt,
        lp_iterations: sol.iterations,
    })
}

/// Greedy rounding of the relaxation solution into ring choices.
///
/// Two deterministic heuristics round the same fractions — the paper's
/// plain Fig. 5 argmax ([`greedy_round`]) and the load-aware
/// [`greedy_round_loaded`] (which steers near-tie rows away from the most
/// loaded rings) — and whichever achieves the lower peak ring load wins,
/// with ties going to the paper's rule. Both are cheap next to the LP
/// solve, and the best-of-two is never worse than the paper's rounding on
/// the eq. 3 objective.
fn round_assignment(
    costs: &CandidateCosts,
    sol: &LpSolution,
    var_of: &[Vec<usize>],
    n_rings: usize,
) -> Vec<RingId> {
    let rows: Vec<Vec<(usize, f64, f64)>> = costs
        .candidates
        .iter()
        .zip(var_of)
        .map(|(cands, vars)| {
            cands
                .iter()
                .zip(vars)
                .map(|(&(rid, _, load), &v)| (rid.index(), sol.x[v], load))
                .collect()
        })
        .collect();
    let peak_of = |choice: &[usize]| {
        let mut loads = vec![0.0f64; n_rings];
        for (i, &j) in choice.iter().enumerate() {
            let &(_, _, c) =
                rows[i].iter().find(|&&(r, _, _)| r == j).expect("rounded choice is a candidate");
            loads[j] += c;
        }
        loads.into_iter().fold(0.0, f64::max)
    };
    let flat: Vec<Vec<(usize, f64)>> =
        rows.iter().map(|r| r.iter().map(|&(j, v, _)| (j, v)).collect()).collect();
    let plain = greedy_round(&flat);
    let loaded = greedy_round_loaded(&rows, n_rings);
    let choice = if peak_of(&loaded) < peak_of(&plain) { loaded } else { plain };
    choice.into_iter().map(|j| RingId(j as u32)).collect()
}

/// Result of the generic branch & bound route of Table I.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BnbAssignReport {
    /// Max load achieved by the incumbent, if any, pF.
    pub achieved: Option<f64>,
    /// Integrality gap of the incumbent vs the LP optimum.
    pub integrality_gap: Option<f64>,
    /// Nodes explored before the budget expired.
    pub nodes_explored: usize,
    /// Whether the solver hit its time budget.
    pub timed_out: bool,
}

/// Table I protocol: solve the same min-max formulation with a *generic*
/// branch & bound ILP solver under a wall-clock budget, and report the
/// incumbent (which may not exist — exactly as the paper observed for the
/// three largest circuits within 10 hours).
pub fn solve_min_max_cap_bnb(
    costs: &CandidateCosts,
    n_rings: usize,
    budget: Duration,
) -> (BnbAssignReport, IlpOutcome) {
    let (lp, var_of) = min_max_lp(costs, n_rings);
    let binaries: Vec<usize> = var_of.iter().flatten().copied().collect();
    let lp_opt = lp.solve().objective.max(1e-12);
    let outcome = BranchAndBound::new(lp, binaries).with_budget(budget).run();
    let achieved = outcome.best.as_ref().map(|x| {
        // The incumbent's objective *is* the makespan variable.
        let t_var = x.len() - 1;
        x[t_var]
    });
    let report = BnbAssignReport {
        achieved,
        integrality_gap: achieved.map(|a| a / lp_opt),
        nodes_explored: outcome.nodes_explored,
        timed_out: outcome.timed_out,
    };
    (report, outcome)
}

/// Assignment statistics: how many flip-flops landed on each ring.
pub fn ring_occupancy(assignment: &Assignment, n_rings: usize) -> Vec<usize> {
    let mut occ = vec![0usize; n_rings];
    for &r in &assignment.rings {
        occ[r.index()] += 1;
    }
    occ
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotary_netlist::CellId;

    /// Hand-built candidate costs: `f` flip-flops × candidates.
    fn costs_from(table: Vec<Vec<(u32, f64, f64)>>) -> CandidateCosts {
        CandidateCosts {
            flip_flops: (0..table.len() as u32).map(CellId).collect(),
            candidates: table
                .into_iter()
                .map(|v| v.into_iter().map(|(r, wl, ld)| (RingId(r), wl, ld)).collect())
                .collect(),
        }
    }

    #[test]
    fn network_flow_picks_cheapest_feasible() {
        // Two FFs, two rings; both prefer ring 0 but it only fits one.
        let costs = costs_from(vec![
            vec![(0, 10.0, 0.1), (1, 50.0, 0.1)],
            vec![(0, 20.0, 0.1), (1, 25.0, 0.1)],
        ]);
        let a = assign_network_flow(&costs, &[1, 1]).expect("feasible");
        // Optimal: FF0→ring0 (10), FF1→ring1 (25): total 35.
        assert_eq!(a.rings, vec![RingId(0), RingId(1)]);
    }

    #[test]
    fn network_flow_respects_capacity_zero() {
        let costs = costs_from(vec![vec![(0, 10.0, 0.1), (1, 50.0, 0.1)]]);
        let a = assign_network_flow(&costs, &[0, 1]).expect("feasible");
        assert_eq!(a.rings, vec![RingId(1)]);
    }

    #[test]
    fn network_flow_detects_insufficient_capacity() {
        let costs = costs_from(vec![vec![(0, 1.0, 0.1)], vec![(0, 1.0, 0.1)]]);
        assert_eq!(assign_network_flow(&costs, &[1, 1]), Err(AssignError::InsufficientCapacity));
    }

    #[test]
    fn network_flow_is_globally_optimal_vs_greedy() {
        // Greedy nearest-ring would give total 10 + 90 = 100; flow finds
        // 30 + 20 = 50.
        let costs = costs_from(vec![
            vec![(0, 10.0, 0.1), (1, 30.0, 0.1)],
            vec![(0, 20.0, 0.1), (1, 90.0, 0.1)],
        ]);
        let a = assign_network_flow(&costs, &[1, 1]).expect("feasible");
        assert_eq!(a.rings, vec![RingId(1), RingId(0)]);
    }

    #[test]
    fn min_max_cap_balances_load() {
        // Three identical FFs, two rings with equal candidate loads: the
        // max-load optimum splits 2/1 ⇒ max 0.2.
        let costs = costs_from(vec![
            vec![(0, 1.0, 0.1), (1, 1.0, 0.1)],
            vec![(0, 1.0, 0.1), (1, 1.0, 0.1)],
            vec![(0, 1.0, 0.1), (1, 1.0, 0.1)],
        ]);
        let out = assign_min_max_cap(&costs, 2).expect("solved");
        assert!(out.achieved <= 0.2 + 1e-9, "achieved {}", out.achieved);
        assert!(out.lp_optimum <= out.achieved + 1e-9);
        assert!(out.integrality_gap >= 1.0 - 1e-9);
        let occ = ring_occupancy(&out.assignment, 2);
        assert_eq!(occ.iter().sum::<usize>(), 3);
    }

    #[test]
    fn min_max_cap_prefers_load_balance_over_wirelength() {
        // FF1 slightly prefers ring 0 by wirelength, but ring 0 already
        // carries FF0's large load: the min-max objective moves FF1 away.
        let costs = costs_from(vec![vec![(0, 1.0, 1.0)], vec![(0, 1.0, 0.5), (1, 5.0, 0.6)]]);
        let out = assign_min_max_cap(&costs, 2).expect("solved");
        assert_eq!(out.assignment.rings[1], RingId(1));
        assert!((out.achieved - 1.0).abs() < 1e-6);
    }

    #[test]
    fn bnb_matches_or_beats_rounding_on_small_instance() {
        let costs = costs_from(vec![
            vec![(0, 1.0, 0.30), (1, 2.0, 0.32)],
            vec![(0, 1.0, 0.28), (1, 2.0, 0.30)],
            vec![(0, 1.0, 0.25), (1, 2.0, 0.27)],
            vec![(0, 1.0, 0.20), (1, 2.0, 0.22)],
        ]);
        let greedy = assign_min_max_cap(&costs, 2).expect("greedy");
        let (bnb, _) = solve_min_max_cap_bnb(&costs, 2, Duration::from_secs(10));
        let bnb_val = bnb.achieved.expect("small instance solves in time");
        assert!(bnb_val <= greedy.achieved + 1e-6);
        assert!(!bnb.timed_out);
    }

    #[test]
    fn bnb_with_zero_budget_times_out_without_incumbent() {
        let costs = costs_from(vec![
            vec![(0, 1.0, 0.3), (1, 2.0, 0.3)],
            vec![(0, 1.0, 0.3), (1, 2.0, 0.3)],
        ]);
        let (bnb, _) = solve_min_max_cap_bnb(&costs, 2, Duration::from_millis(0));
        assert!(bnb.timed_out);
        assert!(bnb.achieved.is_none());
    }

    #[test]
    fn occupancy_counts() {
        let a = Assignment { rings: vec![RingId(0), RingId(1), RingId(0)] };
        assert_eq!(ring_occupancy(&a, 3), vec![2, 1, 0]);
    }
}
