//! The integrated methodology flow of Fig. 3.
//!
//! ```text
//! 1. initial placement                      (rotary-place)
//! 2. skew optimization (max slack)          (skew::max_slack_schedule)
//! 3. flip-flop assignment to rings          (assign::*)
//! 4. cost-driven skew optimization          (skew::minimax / weighted)
//! 5. evaluate overall cost  ──converged──▶  done
//! 6. pseudo-net insertion + incremental placement, back to 2
//! ```
//!
//! The loop re-runs skew optimization after every incremental placement
//! because the combinational delays (and therefore the permissible ranges)
//! move with the cells — this is precisely the cyclic dependency the
//! flexible-tapping relaxation makes tractable.
//!
//! Every pass through a stage is recorded into the outcome's
//! [`FlowTelemetry`]: wall time, dominant problem size, and inner solver
//! iterations (simplex pivots, feasibility solves, augmenting paths,
//! canceled cycles), keyed by stage and flow iteration.

use crate::assign::{self, Assignment};
use crate::metrics::CostSnapshot;
use crate::skew::{self, SkewSchedule, SkewStats};
use crate::tapping::{CandidateCache, CandidateCosts, TapAssignments};
use crate::telemetry::{FlowTelemetry, Stage};
use rotary_netlist::Circuit;
use rotary_place::{Placer, PlacerConfig, PseudoNet};
use rotary_ring::{RingArray, RingParams};
use rotary_solver::lp::WarmMode;
use rotary_solver::mcmf::CirculationBackend;
use rotary_solver::par::{par_map_with, ParConfig};
use rotary_timing::{SequentialGraph, Technology};
use serde::{Deserialize, Serialize};

/// Which cost-driven skew formulation stage 4 uses (Section VII offers
/// both).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SkewVariant {
    /// Minimize the maximum deviation Δ (the first formulation).
    Minimax,
    /// Minimize `Σ w_i δ_i` with `w_i = l_i` (the paper's "natural
    /// choice"); solved via the min-cost-circulation dual.
    WeightedSum,
}

/// Which assignment objective stage 3 optimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AssignmentObjective {
    /// Minimize total tapping cost via min-cost network flow (Section V).
    TappingCost,
    /// Minimize maximum ring load capacitance via LP-relaxation + greedy
    /// rounding (Section VI) — for speed-critical designs.
    MaxLoadCap,
}

/// Configuration of the integrated flow.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowConfig {
    /// Placer tuning.
    pub placer: PlacerConfig,
    /// Rotary ring electrical parameters.
    pub ring_params: RingParams,
    /// Technology constants for timing/power.
    pub tech: Technology,
    /// Candidate rings per flip-flop (arc pruning of Section V).
    pub candidate_rings: usize,
    /// Pseudo-net weight in the first iteration.
    pub pseudo_weight: f64,
    /// Multiplicative pseudo-net weight growth per iteration.
    pub pseudo_weight_growth: f64,
    /// Maximum stage 2–6 iterations (the paper converges within five).
    pub max_iterations: usize,
    /// Relative overall-cost improvement below which the flow stops.
    pub convergence_tol: f64,
    /// Weight of tapping cost in the stage-5 overall cost.
    pub tapping_weight: f64,
    /// Fraction of the max slack `M*` reserved as the prespecified slack
    /// `M` of the cost-driven formulations.
    pub slack_fraction: f64,
    /// Stage-4 formulation.
    pub skew_variant: SkewVariant,
    /// Stage-3 objective.
    pub objective: AssignmentObjective,
    /// Carry feasibility potentials across skew solves (period search,
    /// stage 2, stage 4) so each parametric probe relaxes from the previous
    /// iteration's labels instead of a cold start. Schedules are
    /// bit-identical either way — the warm seed only accelerates the
    /// feasibility verdicts — so this is off only for diagnostics.
    #[serde(default = "default_true")]
    pub warm_start: bool,
    /// Min-cost-circulation engine behind the stage-4 weighted dual.
    /// Schedules are bit-identical across backends (both recover the
    /// canonical residual distances); `Auto` currently resolves to
    /// successive shortest paths, which beats cost scaling on every
    /// measured suite, so cost scaling is an explicit opt-in. The
    /// `ROTARY_MCMF_BACKEND` environment variable overrides this at the
    /// solver level.
    #[serde(default)]
    pub circulation_backend: CirculationBackend,
}

// Referenced by the `#[serde(default)]` attribute; the offline serde shim
// parses but ignores field attributes, so the function looks unused there.
#[allow(dead_code)]
fn default_true() -> bool {
    true
}

impl Default for FlowConfig {
    fn default() -> Self {
        Self {
            placer: PlacerConfig::default(),
            ring_params: RingParams::default(),
            tech: Technology::default(),
            candidate_rings: 6,
            pseudo_weight: 16.0,
            pseudo_weight_growth: 1.8,
            max_iterations: 5,
            convergence_tol: 0.01,
            tapping_weight: 10.0,
            slack_fraction: 0.25,
            skew_variant: SkewVariant::WeightedSum,
            objective: AssignmentObjective::TappingCost,
            warm_start: true,
            circulation_backend: CirculationBackend::Auto,
        }
    }
}

/// Metrics of one stage 2–6 iteration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IterationMetrics {
    /// Stage-5 evaluation after the cost-driven skew optimization.
    pub snapshot: CostSnapshot,
    /// Max slack `M*` found by stage 2 this iteration, ns.
    pub max_slack: f64,
    /// Mean cell displacement of the incremental placement that followed
    /// (0 for the final iteration).
    pub placement_displacement: f64,
}

/// Complete result of a flow run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlowOutcome {
    /// The stage 1–3 **base case** (Table III): network-flow assignment at
    /// the stage-2 schedule, before any cost-driven optimization or
    /// pseudo-net iteration.
    pub base: CostSnapshot,
    /// Per-iteration metrics.
    pub iterations: Vec<IterationMetrics>,
    /// Final skew schedule.
    pub schedule: SkewSchedule,
    /// Final assignment.
    pub assignment: Assignment,
    /// Final tap solutions.
    pub taps: TapAssignments,
    /// Per-stage instrumentation: wall time, problem sizes, and solver
    /// iteration counts for every pass through every Fig. 3 stage.
    pub telemetry: FlowTelemetry,
    /// Per-flip-flop tapping wirelengths of the base case, µm (for the
    /// Table III/VI power evaluation).
    pub base_tap_wirelengths: Vec<f64>,
    /// Signal-net power at the initial placement, mW.
    pub base_signal_power: rotary_power::PowerBreakdown,
}

impl FlowOutcome {
    /// Final evaluation snapshot.
    pub fn final_snapshot(&self) -> CostSnapshot {
        self.iterations.last().map(|it| it.snapshot).unwrap_or(self.base)
    }

    /// Fractional tapping-wirelength improvement over the base case
    /// (the paper's headline 33–53%).
    pub fn tapping_improvement(&self) -> f64 {
        crate::metrics::improvement(self.base.tapping_wl, self.final_snapshot().tapping_wl)
    }

    /// Fractional total-wirelength improvement over the base case.
    pub fn total_wl_improvement(&self) -> f64 {
        crate::metrics::improvement(self.base.total_wl(), self.final_snapshot().total_wl())
    }

    /// Fractional signal-wirelength change (negative = increase, the
    /// expected small penalty).
    pub fn signal_wl_improvement(&self) -> f64 {
        crate::metrics::improvement(self.base.signal_wl, self.final_snapshot().signal_wl)
    }

    /// Wall-clock seconds spent in the optimization stages 2–5.
    pub fn stage_seconds(&self) -> f64 {
        self.telemetry.stage_seconds()
    }

    /// Wall-clock seconds spent in the placer (stages 1 and 6).
    pub fn placer_seconds(&self) -> f64 {
        self.telemetry.placer_seconds()
    }
}

/// The integrated flow driver.
#[derive(Debug, Clone, Default)]
pub struct Flow {
    config: FlowConfig,
}

impl Flow {
    /// Creates a flow with the given configuration.
    pub fn new(config: FlowConfig) -> Self {
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &FlowConfig {
        &self.config
    }

    /// Runs the full Fig. 3 flow on `circuit` with a `ring_grid × ring_grid`
    /// rotary array. Mutates the circuit's placement.
    ///
    /// # Panics
    ///
    /// Panics if the circuit has no flip-flops or the timing constraints
    /// are infeasible at the technology's clock period.
    pub fn run(&self, circuit: &mut Circuit, ring_grid: usize) -> FlowOutcome {
        let cfg = &self.config;
        let placer = Placer::new(cfg.placer);
        let mut telemetry = FlowTelemetry::new();

        // Stage 1: initial placement.
        {
            let mut stage = telemetry.stage(Stage::InitialPlacement, 0);
            stage.set_problem_size(circuit.cell_count());
            placer.place(circuit);
        }

        // Potentials carried across every skew-feasibility solve of the run
        // (period search, stage 2, stage 4). Cleared before each use when
        // warm starting is disabled.
        let mut skew_ctx = skew::SkewContext::new();
        skew_ctx.set_circulation_backend(cfg.circulation_backend);
        // Optimal LP basis carried across the stage-3 relaxation solves,
        // and the candidate ring lists carried across stage-3 cost
        // computations — both cleared per pass when warm starting is off.
        let mut assign_ctx = assign::AssignContext::new();
        assign_ctx.set_crash_start(cfg.warm_start);
        let mut cand_cache = CandidateCache::new();

        // Determine the effective clock period once, after the initial
        // placement: rings are physical hardware whose period cannot change
        // between flow iterations. A 15% margin keeps later iterations
        // (whose delays drift with incremental placement) feasible. The
        // search is a parametric feasibility solve and books under its own
        // stage label (it is not a stage-2 pass — there is no schedule yet).
        let (graph0, tech, ring_params) = {
            let mut stage = telemetry.stage(Stage::PeriodSearch, 0);
            let graph0 = SequentialGraph::extract(circuit, &cfg.tech);
            stage.set_problem_size(2 * graph0.pairs().len().max(1));
            let period = {
                let (min_p, stats) =
                    skew::min_feasible_period_ctx(&graph0, &cfg.tech, &mut skew_ctx);
                stage.add_solver_iterations(stats.solver_iterations);
                stage.set_reused_work(stats.reused_work);
                stage.add_delta_arcs(stats.delta_arcs);
                stage.add_affected_vertices(stats.affected_vertices);
                if min_p > cfg.tech.clock_period {
                    1.15 * min_p
                } else {
                    min_p
                }
            };
            let tech = Technology { clock_period: period, ..cfg.tech };
            let ring_params = rotary_ring::RingParams { period, ..cfg.ring_params };
            (graph0, tech, ring_params)
        };

        let array = RingArray::generate(circuit.die, ring_grid, ring_params);
        let capacities = array.capacities();

        let mut base: Option<(CostSnapshot, Vec<f64>, rotary_power::PowerBreakdown)> = None;
        let mut iterations = Vec::new();
        let mut schedule = SkewSchedule::zero(circuit.flip_flop_count());
        let mut assignment = Assignment { rings: Vec::new() };
        let mut prev_cost = f64::INFINITY;

        for iter in 0..cfg.max_iterations {
            // Stage 2: max-slack skew optimization on the current placement.
            let (graph, stage2) = {
                let mut stage = telemetry.stage(Stage::SkewOptimization, iter);
                let graph = if iter == 0 {
                    graph0.clone()
                } else {
                    SequentialGraph::extract(circuit, &tech)
                };
                if !cfg.warm_start {
                    skew_ctx = skew::SkewContext::new();
                    skew_ctx.set_circulation_backend(cfg.circulation_backend);
                }
                let (stage2, stats) = skew::max_slack_schedule_ctx(&graph, &tech, &mut skew_ctx);
                stage.set_problem_size(stats.constraints);
                stage.add_solver_iterations(stats.solver_iterations);
                stage.set_reused_work(stats.reused_work);
                stage.add_delta_arcs(stats.delta_arcs);
                stage.add_affected_vertices(stats.affected_vertices);
                (graph, stage2)
            };
            let m = cfg.slack_fraction * stage2.slack;

            // Stage 3: flip-flop assignment at the stage-2 schedule.
            {
                let mut stage = telemetry.stage(Stage::Assignment, iter);
                if !cfg.warm_start {
                    assign_ctx.reset();
                    cand_cache.reset();
                }
                let reused_before = cand_cache.reused();
                let costs = CandidateCosts::compute_cached(
                    circuit,
                    &array,
                    &stage2,
                    cfg.candidate_rings,
                    &mut cand_cache,
                );
                stage.set_problem_size(costs.total_candidates());
                let cache_delta = cand_cache.reused() - reused_before;
                let (a, solver_iters) =
                    self.assign(&costs, &capacities, array.rings().len(), &mut assign_ctx);
                stage.add_solver_iterations(solver_iters);
                // Reuse telemetry mirrors stages 2/4: reused_work counts
                // candidate-cache hits plus LP columns carried over,
                // delta_arcs the columns rebuilt, affected_vertices the
                // warm pivots the repair phase spent.
                let astats = assign_ctx.stats();
                stage.set_reused_work(cache_delta + astats.cols_reused);
                stage.add_delta_arcs(astats.cols_rebuilt);
                stage.add_affected_vertices(astats.warm_pivots);
                match self.config.objective {
                    AssignmentObjective::MaxLoadCap => {
                        stage.set_backend(match astats.warm_mode {
                            WarmMode::Cold => "lp-cold",
                            WarmMode::Primal => "lp-warm",
                            WarmMode::DualRepair => "lp-dual-repair",
                        });
                    }
                    AssignmentObjective::TappingCost => {
                        // The transportation engine reports its own start
                        // label (`tp-cold` / `tp-warm`).
                        if let Some(backend) = astats.backend {
                            stage.set_backend(backend);
                        }
                    }
                }
                assignment = a;
            }

            // Base case snapshot: first pass, stage-2 schedule.
            if base.is_none() {
                let mut stage = telemetry.stage(Stage::Evaluation, iter);
                stage.set_problem_size(circuit.flip_flop_count());
                let taps0 = TapAssignments::solve(circuit, &array, &stage2, &assignment.rings);
                base = Some((
                    self.snapshot(circuit, &array, &taps0),
                    taps0.wirelengths(),
                    rotary_power::PowerModel::new(tech).signal_power(circuit),
                ));
            }

            // Stage 4: cost-driven skew optimization on the assignment.
            {
                let mut stage = telemetry.stage(Stage::CostDrivenSkew, iter);
                let (sched, stats) = self.cost_driven(
                    circuit,
                    &array,
                    &graph,
                    &assignment,
                    &tech,
                    m,
                    stage2.period,
                    &mut skew_ctx,
                );
                stage.set_problem_size(stats.constraints);
                stage.add_solver_iterations(stats.solver_iterations);
                stage.set_reused_work(stats.reused_work);
                stage.add_delta_arcs(stats.delta_arcs);
                stage.add_affected_vertices(stats.affected_vertices);
                stage.add_rounds(stats.rounds);
                stage.add_paths(stats.paths);
                stage.note_max_plateau(stats.max_plateau);
                if let Some(backend) = stats.backend {
                    stage.set_backend(backend);
                }
                schedule = sched;
            }

            // Stage 5: evaluate.
            let taps;
            let snapshot;
            {
                let mut stage = telemetry.stage(Stage::Evaluation, iter);
                stage.set_problem_size(circuit.flip_flop_count());
                taps = TapAssignments::solve(circuit, &array, &schedule, &assignment.rings);
                snapshot = self.snapshot(circuit, &array, &taps);
            }

            let cost = snapshot.overall_cost(cfg.tapping_weight);
            let converged =
                prev_cost.is_finite() && (prev_cost - cost) <= cfg.convergence_tol * prev_cost;
            let last = converged || iter + 1 == cfg.max_iterations;

            let mut displacement = 0.0;
            if !last {
                // Stage 6: pseudo-nets toward tap points + incremental place.
                let mut stage = telemetry.stage(Stage::IncrementalPlacement, iter);
                let weight = cfg.pseudo_weight * cfg.pseudo_weight_growth.powi(iter as i32);
                let pulls: Vec<PseudoNet> = taps
                    .flip_flops
                    .iter()
                    .zip(&taps.solutions)
                    .map(|(&ff, sol)| PseudoNet::new(ff, sol.point, weight))
                    .collect();
                stage.set_problem_size(pulls.len());
                let rep = placer.place_incremental(circuit, &pulls);
                displacement = rep.mean_displacement;
            }

            iterations.push(IterationMetrics {
                snapshot,
                max_slack: stage2.slack,
                placement_displacement: displacement,
            });
            prev_cost = cost;
            if last {
                break;
            }
        }

        let taps = TapAssignments::solve(circuit, &array, &schedule, &assignment.rings);
        let (base, base_tap_wirelengths, base_signal_power) =
            base.expect("at least one iteration ran");
        FlowOutcome {
            base,
            iterations,
            schedule,
            assignment,
            taps,
            telemetry,
            base_tap_wirelengths,
            base_signal_power,
        }
    }

    /// Ring-count selection — the paper's second future-work extension
    /// (Section IX: "a better approach would be to integrate the number of
    /// rings as a variable … as it increases the solution space").
    ///
    /// Runs the full flow once per candidate grid on a fresh copy of
    /// `circuit` and returns all outcomes plus the index of the grid with
    /// the lowest stage-5 overall cost. The winning placement is written
    /// back into `circuit`.
    ///
    /// # Panics
    ///
    /// Panics if `grids` is empty.
    pub fn sweep_ring_grids(
        &self,
        circuit: &mut Circuit,
        grids: &[usize],
    ) -> (usize, Vec<(usize, FlowOutcome)>) {
        assert!(!grids.is_empty(), "need at least one candidate grid");
        let mut runs = Vec::with_capacity(grids.len());
        let mut best: Option<(usize, f64, Circuit)> = None;
        for (k, &grid) in grids.iter().enumerate() {
            let mut trial = circuit.clone();
            let outcome = self.run(&mut trial, grid);
            let cost = outcome.final_snapshot().overall_cost(self.config.tapping_weight);
            if best.as_ref().is_none_or(|&(_, c, _)| cost < c) {
                best = Some((k, cost, trial));
            }
            runs.push((grid, outcome));
        }
        let (best_idx, _, best_circuit) = best.expect("at least one grid ran");
        *circuit = best_circuit;
        (best_idx, runs)
    }

    /// Stage-3 dispatcher; also returns the solver's iteration count
    /// (augmenting paths or simplex pivots) for telemetry.
    fn assign(
        &self,
        costs: &CandidateCosts,
        capacities: &[usize],
        n_rings: usize,
        ctx: &mut assign::AssignContext,
    ) -> (Assignment, usize) {
        match self.config.objective {
            AssignmentObjective::TappingCost => {
                // Warm-start whenever the context carries an engine; the
                // flow's warm_start=false path resets the context each
                // iteration, which downgrades this to a cold solve.
                match assign::assign_network_flow_ctx(costs, capacities, true, ctx) {
                    Ok(pair) => pair,
                    Err(_) => {
                        // Fall back to nearest-candidate (always feasible
                        // without capacities) — exercised only when ring
                        // capacity is configured below the flip-flop count.
                        let a =
                            Assignment { rings: costs.candidates.iter().map(|c| c[0].0).collect() };
                        (a, 0)
                    }
                }
            }
            AssignmentObjective::MaxLoadCap => {
                let out = assign::assign_min_max_cap_ctx(costs, n_rings, ctx)
                    .expect("LP relaxation solves");
                (out.assignment, out.lp_iterations)
            }
        }
    }

    /// Stage-4 dispatcher.
    ///
    /// `stage2_period` is the period the stage-2 schedule was computed at.
    /// Incremental placement can push a circuit's minimum feasible period
    /// above the flow-level period fixed at stage 1; stage 2 then raises
    /// its period internally, and its slack — from which `m` is derived —
    /// is only guaranteed feasible at that raised period. The cost-driven
    /// solve must therefore run at `max(period, stage2_period)`.
    #[allow(clippy::too_many_arguments)]
    fn cost_driven(
        &self,
        circuit: &Circuit,
        array: &RingArray,
        graph: &SequentialGraph,
        assignment: &Assignment,
        tech: &Technology,
        m: f64,
        stage2_period: f64,
        ctx: &mut skew::SkewContext,
    ) -> (SkewSchedule, SkewStats) {
        let cfg = &self.config;
        let tech = &if stage2_period > tech.clock_period {
            Technology { clock_period: stage2_period, ..*tech }
        } else {
            *tech
        };
        let ffs = circuit.flip_flops();
        // The per-FF anchor precompute (nearest ring point, ring delay at
        // it, stub delay over the tap distance) is independent across
        // flip-flops, so it fans out over scoped worker threads like the
        // candidate-cost kernel; the result is bit-identical to the
        // sequential loop.
        let per_ff: Vec<(f64, f64, f64)> = par_map_with(&ParConfig::default(), ffs.len(), |i| {
            let ring = array.ring(assignment.rings[i]);
            let pos = circuit.position(ffs[i]);
            let (c_point, l) = ring.nearest_point(pos);
            let a = ring.delay_at(c_point, false);
            let b = array.params().stub_delay(l, circuit.cell(ffs[i]).input_cap);
            (a, b, l)
        });
        let mut ring_delay = Vec::with_capacity(ffs.len());
        let mut stub_delay = Vec::with_capacity(ffs.len());
        let mut distance = Vec::with_capacity(ffs.len());
        for (a, b, l) in per_ff {
            ring_delay.push(a);
            stub_delay.push(b);
            distance.push(l);
        }
        match cfg.skew_variant {
            SkewVariant::Minimax => {
                // The same phase re-wrapping as the weighted path below: a
                // deviation of k·T/2 from the anchor `a_i + b_i` is free for
                // tapping, so after each solve the ring-delay anchor is
                // re-expressed as the equivalent value closest to the solved
                // target. Without this, targets get pulled toward absolute
                // ring delays whole periods away from the cheap tap and the
                // minimax variant *loses* to the base case.
                let half = 0.5 * tech.clock_period;
                let solve = |rd: &[f64], sd: &[f64], ctx: &mut skew::SkewContext| {
                    if !self.config.warm_start {
                        *ctx = skew::SkewContext::new();
                        ctx.set_circulation_backend(self.config.circulation_backend);
                    }
                    skew::minimax_schedule_ctx(graph, tech, rd, sd, m, ctx)
                };
                let (mut sched, mut stats) = solve(&ring_delay, &stub_delay, ctx);
                for _ in 0..3 {
                    let mut changed = false;
                    for (a, (&b, &t)) in
                        ring_delay.iter_mut().zip(stub_delay.iter().zip(&sched.targets))
                    {
                        let k = ((t - (*a + b)) / half).round();
                        if k != 0.0 {
                            *a += k * half;
                            changed = true;
                        }
                    }
                    if !changed {
                        break;
                    }
                    let (s, st) = solve(&ring_delay, &stub_delay, ctx);
                    sched = s;
                    stats.absorb_rewrap(&st);
                }
                (sched, stats)
            }
            SkewVariant::WeightedSum => {
                let mut ideal: Vec<f64> =
                    ring_delay.iter().zip(&stub_delay).map(|(&a, &b)| a + b).collect();
                // Phase re-wrapping: a deviation of exactly k·T is free for
                // tapping (case 1 of Section III borrows whole periods), and
                // k·T/2 is equally free because the complementary loop
                // carries the opposite phase at the same location (served by
                // flipping the flip-flop's polarity, Section III). After a
                // first solve each ideal is re-expressed as the equivalent
                // `ideal + k·T/2` closest to the solved target and the
                // schedule is re-optimized; a few rounds converge.
                let half = 0.5 * tech.clock_period;
                let solve = |id: &[f64], rewrapped: Option<&[u32]>, ctx: &mut skew::SkewContext| {
                    if !self.config.warm_start {
                        *ctx = skew::SkewContext::new();
                        ctx.set_circulation_backend(self.config.circulation_backend);
                    }
                    match rewrapped {
                        // Converged-FF dropout: between re-wrap rounds only
                        // the re-wrapped flip-flops' ideals move (same
                        // graph, technology, slack, and weights), so the
                        // solve carries that certificate and the frozen
                        // complement never enters the rebind scan.
                        Some(r) => skew::weighted_schedule_rewrap_ctx(
                            graph, tech, id, &distance, m, ctx, r,
                        ),
                        None => skew::weighted_schedule_ctx(graph, tech, id, &distance, m, ctx),
                    }
                };
                let (mut sched, mut stats) = solve(&ideal, None, ctx);
                let mut rewrapped: Vec<u32> = Vec::new();
                for _ in 0..3 {
                    rewrapped.clear();
                    for (i, (id, &t)) in ideal.iter_mut().zip(&sched.targets).enumerate() {
                        let k = ((t - *id) / half).round();
                        if k != 0.0 {
                            *id += k * half;
                            rewrapped.push(i as u32);
                        }
                    }
                    if rewrapped.is_empty() {
                        break;
                    }
                    let (s, st) = solve(&ideal, Some(&rewrapped), ctx);
                    sched = s;
                    stats.absorb_rewrap(&st);
                }
                (sched, stats)
            }
        }
    }

    fn snapshot(
        &self,
        circuit: &Circuit,
        array: &RingArray,
        taps: &TapAssignments,
    ) -> CostSnapshot {
        CostSnapshot {
            afd: taps.average_flip_flop_distance(circuit, array),
            tapping_wl: taps.total_wirelength(),
            signal_wl: circuit.total_hpwl(),
            max_ring_cap: taps.max_ring_load(circuit, array),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotary_netlist::{Generator, GeneratorConfig};

    fn toy(seed: u64) -> Circuit {
        Generator::new(GeneratorConfig {
            name: "flow".into(),
            combinational: 220,
            flip_flops: 48,
            nets: 240,
            primary_inputs: 10,
            primary_outputs: 10,
            die_side: 900.0,
            ..GeneratorConfig::default()
        })
        .generate(seed)
    }

    #[test]
    fn flow_reduces_tapping_cost() {
        let mut c = toy(1);
        let out = Flow::new(FlowConfig::default()).run(&mut c, 3);
        assert!(
            out.tapping_improvement() > 0.10,
            "expected >10% tapping improvement, got {:.1}% (base {} → final {})",
            out.tapping_improvement() * 100.0,
            out.base.tapping_wl,
            out.final_snapshot().tapping_wl
        );
    }

    #[test]
    fn flow_converges_within_max_iterations() {
        let mut c = toy(2);
        let cfg = FlowConfig { max_iterations: 5, ..FlowConfig::default() };
        let out = Flow::new(cfg).run(&mut c, 3);
        assert!(!out.iterations.is_empty());
        assert!(out.iterations.len() <= 5);
    }

    #[test]
    fn final_schedule_respects_timing() {
        let mut c = toy(3);
        let cfg = FlowConfig::default();
        let out = Flow::new(cfg).run(&mut c, 3);
        // Check at the period the flow actually scheduled for.
        let tech = Technology { clock_period: out.schedule.period, ..cfg.tech };
        let graph = SequentialGraph::extract(&c, &tech);
        assert!(
            graph.check_schedule(&out.schedule.targets, &tech, 0.0, 1e-5).is_none(),
            "final schedule violates permissible ranges"
        );
    }

    #[test]
    fn minimax_variant_also_improves() {
        let mut c = toy(4);
        let cfg = FlowConfig { skew_variant: SkewVariant::Minimax, ..FlowConfig::default() };
        let out = Flow::new(cfg).run(&mut c, 3);
        assert!(out.tapping_improvement() > 0.0);
    }

    #[test]
    fn max_load_cap_objective_lowers_max_cap() {
        let mut a = toy(5);
        let mut b = toy(5);
        let flow_nf = Flow::new(FlowConfig::default());
        let flow_ilp = Flow::new(FlowConfig {
            objective: AssignmentObjective::MaxLoadCap,
            ..FlowConfig::default()
        });
        let out_nf = flow_nf.run(&mut a, 3);
        let out_ilp = flow_ilp.run(&mut b, 3);
        assert!(
            out_ilp.final_snapshot().max_ring_cap <= out_nf.final_snapshot().max_ring_cap + 1e-9,
            "ILP formulation should not worsen max cap: {} vs {}",
            out_ilp.final_snapshot().max_ring_cap,
            out_nf.final_snapshot().max_ring_cap
        );
    }

    #[test]
    fn sweep_picks_the_cheapest_grid_and_writes_back_placement() {
        let mut c = toy(8);
        let flow = Flow::new(FlowConfig::default());
        let (best, runs) = flow.sweep_ring_grids(&mut c, &[2, 3]);
        assert_eq!(runs.len(), 2);
        let w = flow.config().tapping_weight;
        let best_cost = runs[best].1.final_snapshot().overall_cost(w);
        for (_, out) in &runs {
            assert!(best_cost <= out.final_snapshot().overall_cost(w) + 1e-9);
        }
        c.validate().expect("winning placement is applied and valid");
    }

    #[test]
    fn telemetry_tracks_every_stage() {
        let mut c = toy(6);
        let out = Flow::new(FlowConfig::default()).run(&mut c, 3);
        assert!(out.placer_seconds() > 0.0);
        assert!(out.stage_seconds() > 0.0);
        let totals = out.telemetry.totals_by_stage();
        // The period search plus stages 1–5 always run at least once;
        // per-record fields are set.
        for (stage, _, passes, _) in totals.iter().take(6) {
            assert!(*passes > 0, "stage {stage} never recorded");
        }
        for r in out.telemetry.records() {
            assert!(r.seconds >= 0.0);
            assert!(r.problem_size > 0, "{} has no problem size", r.stage);
        }
        // The period search runs exactly one pre-pass, with real probes.
        assert_eq!(totals[1].2, 1, "period search should record one pass");
        assert!(totals[1].3 > 0, "period search reported no feasibility solves");
        // Stage 2 and 4 drive iterative solvers.
        assert!(totals[2].3 > 0, "stage 2 reported no feasibility solves");
        assert_eq!(out.telemetry.iterations(), out.iterations.len());
        // The JSON dump reflects the same aggregates.
        let json = out.telemetry.to_json();
        assert!(json.contains("\"stage\": \"assignment\""));
        assert!(json.contains("\"stage\": \"period_search\""));
        assert!(json.contains(&format!("\"iterations\": {}", out.iterations.len())));
    }

    /// A circuit large enough that the per-flip-flop tapping kernels take
    /// their scoped-thread path (≥ 64 flip-flops).
    fn parallel_toy(seed: u64) -> Circuit {
        Generator::new(GeneratorConfig {
            name: "flow-par".into(),
            combinational: 400,
            flip_flops: 96,
            nets: 430,
            primary_inputs: 12,
            primary_outputs: 12,
            die_side: 1200.0,
            ..GeneratorConfig::default()
        })
        .generate(seed)
    }

    /// Warm-started potentials only accelerate feasibility probes — every
    /// returned solution comes from a canonical cold solve at the final
    /// parameter — so disabling warm starts must not change a single bit
    /// of the outcome.
    fn assert_warm_matches_cold(variant: SkewVariant, seed: u64) {
        assert_warm_matches_cold_objective(variant, AssignmentObjective::TappingCost, seed);
    }

    fn assert_warm_matches_cold_objective(
        variant: SkewVariant,
        objective: AssignmentObjective,
        seed: u64,
    ) {
        let mut a = toy(seed);
        let mut b = toy(seed);
        let warm =
            Flow::new(FlowConfig { skew_variant: variant, objective, ..FlowConfig::default() });
        let cold = Flow::new(FlowConfig {
            skew_variant: variant,
            objective,
            warm_start: false,
            ..FlowConfig::default()
        });
        let out_w = warm.run(&mut a, 3);
        let out_c = cold.run(&mut b, 3);
        assert_eq!(out_w.schedule, out_c.schedule);
        assert_eq!(out_w.assignment, out_c.assignment);
        assert_eq!(out_w.base, out_c.base);
        assert_eq!(out_w.iterations, out_c.iterations);
        assert_eq!(out_w.taps.solutions, out_c.taps.solutions);
        for (&ff_a, &ff_b) in a.flip_flops().iter().zip(&b.flip_flops()) {
            assert_eq!(a.position(ff_a), b.position(ff_b));
        }
    }

    #[test]
    fn warm_start_is_bit_identical_to_cold_weighted_sum() {
        assert_warm_matches_cold(SkewVariant::WeightedSum, 9);
    }

    #[test]
    fn warm_start_is_bit_identical_to_cold_minimax() {
        assert_warm_matches_cold(SkewVariant::Minimax, 10);
    }

    /// The stage-3 LP warm start (carried optimal basis) and the candidate
    /// ring-list cache must not change a single bit of the outcome either:
    /// the simplex's canonical basis extraction makes the reported solution
    /// a function of (problem data, optimal basis set) only, and the
    /// 1e-9·wl objective tiebreak makes that optimum unique in practice.
    #[test]
    fn warm_start_is_bit_identical_to_cold_max_load_cap() {
        assert_warm_matches_cold_objective(
            SkewVariant::WeightedSum,
            AssignmentObjective::MaxLoadCap,
            11,
        );
    }

    #[test]
    fn warm_start_is_bit_identical_to_cold_max_load_cap_minimax() {
        assert_warm_matches_cold_objective(
            SkewVariant::Minimax,
            AssignmentObjective::MaxLoadCap,
            12,
        );
    }

    #[test]
    fn flow_outcome_is_deterministic_across_runs() {
        let mut a = parallel_toy(7);
        let mut b = parallel_toy(7);
        let flow = Flow::new(FlowConfig::default());
        let out_a = flow.run(&mut a, 3);
        let out_b = flow.run(&mut b, 3);
        // Bit-identical results and placements despite the scoped-thread
        // fan-out in stages 3 and 5 (wall times differ, so telemetry is
        // compared structurally, not by seconds).
        assert_eq!(out_a.schedule, out_b.schedule);
        assert_eq!(out_a.assignment, out_b.assignment);
        assert_eq!(out_a.base, out_b.base);
        assert_eq!(out_a.iterations, out_b.iterations);
        assert_eq!(out_a.taps.solutions, out_b.taps.solutions);
        assert_eq!(out_a.base_tap_wirelengths, out_b.base_tap_wirelengths);
        assert_eq!(out_a.telemetry.records().len(), out_b.telemetry.records().len());
        for (&ff_a, &ff_b) in a.flip_flops().iter().zip(&b.flip_flops()) {
            assert_eq!(a.position(ff_a), b.position(ff_b));
        }
    }
}
