//! Tapping-cost computation: the bridge between skew targets and ring
//! geometry.
//!
//! For every flip-flop and every candidate ring, the tapping cost `c_ij`
//! is the wirelength of the flexible-tapping solution (Section III) that
//! realizes the flip-flop's delay target on that ring. These costs feed
//! both assignment formulations; the chosen ring's solution also yields the
//! load capacitance `C_p^ij = c·l + C_ff` of Section VI.

use crate::skew::SkewSchedule;
use rotary_netlist::{CellId, Circuit, Point};
use rotary_ring::{RingArray, RingId, TapSolution};
use rotary_solver::par::par_map;
use serde::{Deserialize, Serialize};

/// Cross-iteration cache of the per-flip-flop nearest-`k` candidate ring
/// lists — the geometric half of [`CandidateCosts::compute`]. The tap
/// solves depend on the skew schedule and are always recomputed; the ring
/// list only depends on the flip-flop position, so it is reused whenever
/// the cached list provably still holds: either the position is
/// bit-identical to the cached anchor, or the flip-flop has drifted less
/// than half the list's stability margin from it
/// ([`RingArray::candidate_rings_with_margin`]). Incremental placement
/// moves most flip-flops by a fraction of a ring pitch per iteration, so
/// the margin rule is what makes the warm path fire on real circuits —
/// while staying exact: a reused list is mathematically identical to what
/// the fresh query would return.
#[derive(Debug, Clone, Default)]
pub struct CandidateCache {
    k: usize,
    entries: Vec<CacheEntry>,
    reused: usize,
    stable_misses: usize,
}

/// One flip-flop's cached nearest-`k` query: the position it was computed
/// at, the drift margin it tolerates, and the ordered ring list. The
/// anchor and margin are kept (not re-centered) on reuse so drift
/// accumulates against the original query point.
#[derive(Debug, Clone)]
struct CacheEntry {
    anchor: Point,
    margin: f64,
    rings: Vec<RingId>,
}

impl CandidateCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Forgets all cached ring lists.
    pub fn reset(&mut self) {
        self.entries.clear();
        self.reused = 0;
        self.stable_misses = 0;
    }

    /// Ring lists served from cache (telemetry: geometry queries saved)
    /// since construction or the last [`CandidateCache::reset`].
    pub fn reused(&self) -> usize {
        self.reused
    }

    /// Misses whose fresh nearest-`k` query returned the *same* ring list
    /// as the cached one: the flip-flop drifted past the certificate but
    /// its candidate structure held. These are exactly the flip-flops
    /// whose LP columns survive keyed basis reuse downstream
    /// ([`crate::assign::AssignContext`]), so this counter bounds how much
    /// of the drift radius the 1-Lipschitz margin is leaving on the table.
    pub fn stable_misses(&self) -> usize {
        self.stable_misses
    }
}

/// Per-flip-flop candidate rings with tapping costs and load capacitances.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CandidateCosts {
    /// Flip-flops in circuit order (parallel to the outer index).
    pub flip_flops: Vec<CellId>,
    /// For each flip-flop: `(ring, tapping wirelength µm, load cap pF)`.
    pub candidates: Vec<Vec<(RingId, f64, f64)>>,
}

impl CandidateCosts {
    /// Computes tapping costs for the `k` nearest rings of every flip-flop
    /// at the given skew schedule.
    ///
    /// The per-FF×ring tapping solves are independent, so they fan out
    /// over scoped worker threads ([`rotary_solver::par::par_map`]); the
    /// result is bit-identical to the sequential computation.
    ///
    /// # Panics
    ///
    /// Panics if `schedule.targets` is not parallel to the circuit's
    /// flip-flop list.
    pub fn compute(
        circuit: &Circuit,
        array: &RingArray,
        schedule: &SkewSchedule,
        k: usize,
    ) -> Self {
        Self::compute_cached(circuit, array, schedule, k, &mut CandidateCache::new())
    }

    /// [`CandidateCosts::compute`] with a [`CandidateCache`] carried across
    /// calls: flip-flops whose position is unchanged *or* has drifted less
    /// than half its cached list's stability margin reuse the nearest-`k`
    /// ring list and only re-solve the taps at the new position and
    /// schedule. Results are bit-identical to the uncached computation
    /// (the margin rule is a proof, not a heuristic — see
    /// [`RingArray::candidate_rings_with_margin`]).
    pub fn compute_cached(
        circuit: &Circuit,
        array: &RingArray,
        schedule: &SkewSchedule,
        k: usize,
        cache: &mut CandidateCache,
    ) -> Self {
        let flip_flops = circuit.flip_flops();
        assert_eq!(flip_flops.len(), schedule.targets.len(), "one skew target per flip-flop");
        if cache.k != k || cache.entries.len() != flip_flops.len() {
            cache.reset();
            cache.k = k;
        }
        let wire_cap = array.params().wire_cap;
        let cached: &[CacheEntry] = &cache.entries;
        // (costed candidates, freshly computed entry on a miss, cache hit)
        type PerFf = (Vec<(RingId, f64, f64)>, Option<(Vec<RingId>, f64)>, bool);
        let per_ff: Vec<PerFf> = par_map(flip_flops.len(), |i| {
            let ff = flip_flops[i];
            let target = schedule.targets[i];
            let pos = circuit.position(ff);
            let cap = circuit.cell(ff).input_cap;
            let (rings, fresh, hit) = match cached.get(i) {
                Some(e) if e.anchor == pos || 2.0 * e.anchor.manhattan(pos) < e.margin => {
                    (e.rings.clone(), None, true)
                }
                _ => {
                    let (rings, margin) = array.candidate_rings_with_margin(pos, k);
                    (rings.clone(), Some((rings, margin)), false)
                }
            };
            let costed = rings
                .into_iter()
                .map(|rid| {
                    let sol = array.ring(rid).tap_for_target(pos, cap, target);
                    let load = wire_cap * sol.wirelength + cap;
                    (rid, sol.wirelength, load)
                })
                .collect();
            (costed, fresh, hit)
        });
        let mut candidates = Vec::with_capacity(per_ff.len());
        let mut entries = Vec::with_capacity(per_ff.len());
        for (i, (costed, fresh, hit)) in per_ff.into_iter().enumerate() {
            if hit {
                cache.reused += 1;
                entries.push(cache.entries[i].clone());
            } else {
                let anchor = circuit.position(flip_flops[i]);
                let (rings, margin) = fresh.expect("miss carries the fresh query");
                if cache.entries.get(i).is_some_and(|e| e.rings == rings) {
                    cache.stable_misses += 1;
                }
                entries.push(CacheEntry { anchor, margin, rings });
            }
            candidates.push(costed);
        }
        cache.entries = entries;
        Self { flip_flops, candidates }
    }

    /// Total candidate arcs across all flip-flops (the assignment
    /// network's problem size).
    pub fn total_candidates(&self) -> usize {
        self.candidates.iter().map(Vec::len).sum()
    }

    /// Number of flip-flops covered.
    pub fn len(&self) -> usize {
        self.flip_flops.len()
    }

    /// Whether there are no flip-flops.
    pub fn is_empty(&self) -> bool {
        self.flip_flops.is_empty()
    }

    /// The tapping cost of assigning flip-flop `i` (by index) to `ring`,
    /// if `ring` is among its candidates.
    pub fn cost(&self, i: usize, ring: RingId) -> Option<f64> {
        self.candidates[i].iter().find(|&&(r, _, _)| r == ring).map(|&(_, wl, _)| wl)
    }
}

/// Finalized tap solutions for an assignment: one per flip-flop.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TapAssignments {
    /// Flip-flops in circuit order.
    pub flip_flops: Vec<CellId>,
    /// Assigned ring per flip-flop.
    pub rings: Vec<RingId>,
    /// Tap solution per flip-flop.
    pub solutions: Vec<TapSolution>,
}

impl TapAssignments {
    /// Solves the tapping equation for every flip-flop on its assigned
    /// ring at the given schedule. Fans out over scoped worker threads
    /// like [`CandidateCosts::compute`], with identical results.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths disagree.
    pub fn solve(
        circuit: &Circuit,
        array: &RingArray,
        schedule: &SkewSchedule,
        rings: &[RingId],
    ) -> Self {
        let flip_flops = circuit.flip_flops();
        assert_eq!(flip_flops.len(), rings.len());
        assert_eq!(flip_flops.len(), schedule.targets.len());
        let solutions = par_map(flip_flops.len(), |i| {
            let ff = flip_flops[i];
            array.ring(rings[i]).tap_for_target(
                circuit.position(ff),
                circuit.cell(ff).input_cap,
                schedule.targets[i],
            )
        });
        Self { flip_flops, rings: rings.to_vec(), solutions }
    }

    /// Total tapping wirelength (the paper's **tapping cost**), µm.
    pub fn total_wirelength(&self) -> f64 {
        self.solutions.iter().map(|s| s.wirelength).sum()
    }

    /// Per-flip-flop tapping wirelengths, µm.
    pub fn wirelengths(&self) -> Vec<f64> {
        self.solutions.iter().map(|s| s.wirelength).collect()
    }

    /// Average flip-flop distance (**AFD**): the mean tap-wire length per
    /// flip-flop. This matches the paper's tables, where AFD is exactly
    /// `Tap.WL / #flip-flops` (e.g. Table III s9234: 38550/135 = 285.6);
    /// it measures how far each flip-flop effectively sits from its clock
    /// source, the quantity compared against the conventional tree's
    /// source–sink path length `PL`.
    pub fn average_flip_flop_distance(&self, _circuit: &Circuit, _array: &RingArray) -> f64 {
        if self.flip_flops.is_empty() {
            return 0.0;
        }
        self.total_wirelength() / self.flip_flops.len() as f64
    }

    /// Mean *geometric* Manhattan distance from each flip-flop to the
    /// nearest point of its assigned ring (a lower bound on AFD; the gap
    /// between the two is the phase-matching wander the cost-driven skew
    /// optimization removes).
    pub fn mean_ring_distance(&self, circuit: &Circuit, array: &RingArray) -> f64 {
        if self.flip_flops.is_empty() {
            return 0.0;
        }
        let sum: f64 = self
            .flip_flops
            .iter()
            .zip(&self.rings)
            .map(|(&ff, &rid)| array.ring(rid).nearest_point(circuit.position(ff)).1)
            .sum();
        sum / self.flip_flops.len() as f64
    }

    /// Load capacitance per ring: `Σ_i (c·l_i + C_ff,i)` over assigned
    /// flip-flops, pF. Indexed by ring id.
    pub fn ring_loads(&self, circuit: &Circuit, array: &RingArray) -> Vec<f64> {
        let mut loads = vec![0.0; array.rings().len()];
        let c = array.params().wire_cap;
        for ((&ff, &rid), sol) in self.flip_flops.iter().zip(&self.rings).zip(&self.solutions) {
            loads[rid.index()] += c * sol.wirelength + circuit.cell(ff).input_cap;
        }
        loads
    }

    /// Maximum ring load capacitance, pF (Section VI objective).
    pub fn max_ring_load(&self, circuit: &Circuit, array: &RingArray) -> f64 {
        self.ring_loads(circuit, array).into_iter().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotary_netlist::{Generator, GeneratorConfig};
    use rotary_ring::RingParams;

    fn setup() -> (Circuit, RingArray, SkewSchedule) {
        let c = Generator::new(GeneratorConfig {
            name: "tap".into(),
            combinational: 100,
            flip_flops: 20,
            nets: 110,
            primary_inputs: 6,
            primary_outputs: 6,
            die_side: 800.0,
            ..GeneratorConfig::default()
        })
        .generate(5);
        let array = RingArray::generate(c.die, 3, RingParams::default());
        let n = c.flip_flop_count();
        let schedule = SkewSchedule {
            targets: (0..n).map(|i| 0.07 * i as f64).collect(),
            slack: 0.0,
            period: 1.0,
        };
        (c, array, schedule)
    }

    #[test]
    fn candidates_are_sorted_by_distance_and_costed() {
        let (c, array, s) = setup();
        let cc = CandidateCosts::compute(&c, &array, &s, 4);
        assert_eq!(cc.len(), 20);
        for cands in &cc.candidates {
            assert_eq!(cands.len(), 4);
            for &(_, wl, load) in cands {
                assert!(wl >= 0.0);
                assert!(load > 0.0, "load includes the FF pin cap");
            }
        }
    }

    #[test]
    fn cache_reuses_ring_lists_within_the_drift_margin() {
        let (mut c, array, s) = setup();
        let mut cache = CandidateCache::new();
        let cold = CandidateCosts::compute_cached(&c, &array, &s, 4, &mut cache);
        assert_eq!(cache.reused(), 0, "first pass has nothing to reuse");

        // Same placement, new schedule: every ring list is reused, and the
        // recomputed tap costs match the uncached computation bit for bit.
        let s2 =
            SkewSchedule { targets: s.targets.iter().map(|t| t + 0.11).collect(), ..s.clone() };
        let warm = CandidateCosts::compute_cached(&c, &array, &s2, 4, &mut cache);
        assert_eq!(cache.reused(), c.flip_flop_count());
        let reference = CandidateCosts::compute(&c, &array, &s2, 4);
        assert_eq!(warm.candidates, reference.candidates);
        assert_eq!(cold.flip_flops, warm.flip_flops);

        // Drift one flip-flop by a quarter of its tolerated margin: the
        // cached list still provably holds, so every entry reuses — and the
        // costs (computed at the *new* position) still match a fresh run
        // bit for bit.
        let ff = c.flip_flops()[3];
        let pos = c.position(ff);
        let (_, margin) = array.candidate_rings_with_margin(pos, 4);
        assert!(margin.is_finite() && margin > 0.0, "fixture should have a usable margin");
        c.set_position(ff, rotary_netlist::Point { x: pos.x + margin / 8.0, y: pos.y });
        let before = cache.reused();
        let drifted = CandidateCosts::compute_cached(&c, &array, &s2, 4, &mut cache);
        assert_eq!(cache.reused() - before, c.flip_flop_count(), "drift within margin reuses");
        assert_eq!(drifted.candidates, CandidateCosts::compute(&c, &array, &s2, 4).candidates);

        // Move it across the die (the nearest-ring list genuinely changes,
        // so the margin certificate cannot hold): exactly that entry
        // misses and gets a fresh query.
        let far = rotary_netlist::Point { x: c.die.hi.x - pos.x, y: c.die.hi.y - pos.y };
        assert_ne!(array.candidate_rings(far, 4), array.candidate_rings(pos, 4));
        c.set_position(ff, far);
        let before = cache.reused();
        let moved = CandidateCosts::compute_cached(&c, &array, &s2, 4, &mut cache);
        assert_eq!(cache.reused() - before, c.flip_flop_count() - 1);
        assert_eq!(moved.candidates, CandidateCosts::compute(&c, &array, &s2, 4).candidates);

        // Changing k invalidates everything.
        let _ = CandidateCosts::compute_cached(&c, &array, &s2, 3, &mut cache);
        assert_eq!(cache.reused(), 0);
    }

    /// Drift accumulates against the original anchor: repeated small moves
    /// must not leapfrog the margin certificate by re-centering it.
    #[test]
    fn cache_drift_accumulates_against_the_anchor() {
        let (mut c, array, s) = setup();
        let mut cache = CandidateCache::new();
        let _ = CandidateCosts::compute_cached(&c, &array, &s, 4, &mut cache);
        let ff = c.flip_flops()[0];
        let anchor = c.position(ff);
        let (_, margin) = array.candidate_rings_with_margin(anchor, 4);
        assert!(margin.is_finite() && margin > 0.0);
        // Each step is well inside the margin, but their *sum* crosses it:
        // the fourth pass must re-query even though the last single step
        // was tiny.
        let step = margin / 5.0;
        let mut hits = Vec::new();
        for k in 1..=4 {
            c.set_position(
                ff,
                rotary_netlist::Point { x: anchor.x + step * k as f64, y: anchor.y },
            );
            let before = cache.reused();
            let got = CandidateCosts::compute_cached(&c, &array, &s, 4, &mut cache);
            hits.push(cache.reused() - before == c.flip_flop_count());
            assert_eq!(got.candidates, CandidateCosts::compute(&c, &array, &s, 4).candidates);
        }
        assert!(hits[0], "drift 1/5 of margin: certificate holds");
        assert!(hits[1], "drift 2/5 of margin: certificate still holds");
        assert!(!hits[2], "accumulated drift of 3/5 margin (2δ > margin) must re-query");
    }

    #[test]
    fn cost_lookup_roundtrip() {
        let (c, array, s) = setup();
        let cc = CandidateCosts::compute(&c, &array, &s, 3);
        let (rid, wl, _) = cc.candidates[0][1];
        assert_eq!(cc.cost(0, rid), Some(wl));
        // A ring not in the candidate set yields None.
        let absent = (0..array.rings().len())
            .map(|i| RingId(i as u32))
            .find(|r| !cc.candidates[0].iter().any(|&(cr, _, _)| cr == *r));
        if let Some(r) = absent {
            assert_eq!(cc.cost(0, r), None);
        }
    }

    #[test]
    fn nearest_ring_assignment_meets_targets() {
        let (c, array, s) = setup();
        let rings: Vec<RingId> =
            c.flip_flops().iter().map(|&ff| array.nearest_ring(c.position(ff))).collect();
        let taps = TapAssignments::solve(&c, &array, &s, &rings);
        let period = array.params().period;
        for ((&ff, sol), (&rid, &target)) in
            taps.flip_flops.iter().zip(&taps.solutions).zip(taps.rings.iter().zip(&s.targets))
        {
            let got = array.ring(rid).delay_through_tap(sol, c.cell(ff).input_cap);
            let tau = target.rem_euclid(period);
            let err = (got - tau).abs().min(period - (got - tau).abs());
            assert!(err < 1e-6, "ff {ff}: target {tau} got {got}");
        }
    }

    #[test]
    fn ring_loads_sum_to_total_load() {
        let (c, array, s) = setup();
        let rings: Vec<RingId> =
            c.flip_flops().iter().map(|&ff| array.nearest_ring(c.position(ff))).collect();
        let taps = TapAssignments::solve(&c, &array, &s, &rings);
        let loads = taps.ring_loads(&c, &array);
        let total: f64 = loads.iter().sum();
        let expect: f64 = taps
            .flip_flops
            .iter()
            .zip(&taps.solutions)
            .map(|(&ff, sol)| array.params().wire_cap * sol.wirelength + c.cell(ff).input_cap)
            .sum();
        assert!((total - expect).abs() < 1e-9);
        assert!(taps.max_ring_load(&c, &array) <= total);
    }

    #[test]
    fn afd_uses_assigned_ring_not_nearest() {
        let (c, array, s) = setup();
        let nearest: Vec<RingId> =
            c.flip_flops().iter().map(|&ff| array.nearest_ring(c.position(ff))).collect();
        // Deliberately bad assignment: everything to ring 0.
        let all_zero = vec![RingId(0); nearest.len()];
        let good = TapAssignments::solve(&c, &array, &s, &nearest);
        let bad = TapAssignments::solve(&c, &array, &s, &all_zero);
        assert!(
            bad.average_flip_flop_distance(&c, &array)
                > good.average_flip_flop_distance(&c, &array)
        );
    }
}
