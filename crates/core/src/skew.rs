//! Skew scheduling (paper Section VII).
//!
//! Three schedulers, all over the sequential-adjacency constraint graph:
//!
//! * [`max_slack_schedule`] — the classic Fishburn max-slack formulation
//!   (eqs. 5–7), solved by binary search on the slack `M` with
//!   Bellman–Ford feasibility (the graph-based route of \[23\], \[24\]).
//! * [`minimax_schedule`] — cost-driven: minimize the maximum deviation `Δ`
//!   between each flip-flop's delay target and the delay achievable through
//!   the *closest* point of its ring, subject to the timing constraints at
//!   a prespecified slack `M`.
//! * [`weighted_schedule`] — cost-driven: minimize `Σ w_i·δ_i` with
//!   `δ_i ≥ |t̂_i − t_i|`; solved exactly through the min-cost-circulation
//!   dual (the LP's network structure), with `w_i = l_i` as the paper
//!   suggests.

use rotary_solver::mcmf::{effective_backend, Circulation, CirculationBackend, CirculationStats};
use rotary_solver::{DifferenceSystem, ParametricSystem};
use rotary_timing::{SequentialGraph, Technology};
use serde::{Deserialize, Serialize};

/// A clock-delay target per flip-flop, indexed like
/// [`SequentialGraph::flip_flops`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SkewSchedule {
    /// Delay target `t̂_i` per flip-flop, ns.
    pub targets: Vec<f64>,
    /// The timing slack `M` this schedule guarantees, ns.
    pub slack: f64,
    /// The clock period the schedule was computed for, ns. Equals the
    /// technology period when the circuit meets it; otherwise the minimum
    /// feasible period (the paper notes that high skew uncertainty "might
    /// need to run the clock at a lower speed").
    pub period: f64,
}

impl SkewSchedule {
    /// A zero-skew schedule over `n` flip-flops (all targets 0) at a
    /// 1 ns period.
    pub fn zero(n: usize) -> Self {
        Self { targets: vec![0.0; n], slack: 0.0, period: 1.0 }
    }
}

/// Solver-effort statistics from a scheduling call, for flow telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SkewStats {
    /// Difference constraints in the timing system that was solved.
    pub constraints: usize,
    /// Inner solver iterations: feasibility solves of the binary search
    /// (max-slack / minimax) or correction paths routed (weighted).
    pub solver_iterations: usize,
    /// Work carried over from the warm-start context instead of being
    /// recomputed: constraint arcs and potential labels a delta-rebound
    /// parametric engine kept intact (parametric schedulers) or arc pairs
    /// whose circulation flow survived a re-solve (weighted). Zero on cold
    /// solves.
    pub reused_work: usize,
    /// Constraint bounds (parametric schedulers) or circulation arc pairs
    /// (weighted dual) that actually changed when the context's engine was
    /// re-targeted at this call's system — the delta the incremental
    /// machinery replays. Zero on cold solves.
    pub delta_arcs: usize,
    /// Distinct variables whose potentials moved across this call's
    /// relaxations, or — for the weighted dual's circulation — the
    /// endpoint nodes of the changed arc pairs (the affected region).
    pub affected_vertices: usize,
    /// Dijkstra rounds the weighted dual's circulation ran (the round
    /// histogram's first axis; zero for schedulers without a circulation
    /// and on memo-replayed probes).
    pub rounds: usize,
    /// Augmenting paths the circulation routed. `paths / rounds` is the
    /// mean bulk-augmentation width; rounds ≈ paths is the near-unique-
    /// distance regime the quantization ladder attacks.
    pub paths: usize,
    /// Most paths any single Dijkstra round served — the widest plateau
    /// the admissible subgraph offered this call.
    pub max_plateau: usize,
    /// Label of the circulation engine variant that served this call
    /// (`"ssp-sequential"`, `"ssp-bucketed"`, `"cost-scaling"`, or
    /// `"quant-ladder"`); `None` for schedulers that run no circulation.
    pub backend: Option<&'static str>,
}

impl SkewStats {
    /// Folds a re-wrap round's stats into an accumulator: effort counters
    /// add up, `constraints` is a property of the system (max, not sum),
    /// `max_plateau` is a max over solves, and the backend label of the
    /// latest round wins. Shared by every re-solve loop in
    /// `Flow::cost_driven` so new telemetry fields cannot drift between
    /// the scheduler variants again.
    pub fn absorb_rewrap(&mut self, st: &SkewStats) {
        self.constraints = self.constraints.max(st.constraints);
        self.solver_iterations += st.solver_iterations;
        self.reused_work += st.reused_work;
        self.delta_arcs += st.delta_arcs;
        self.affected_vertices += st.affected_vertices;
        self.rounds += st.rounds;
        self.paths += st.paths;
        self.max_plateau = self.max_plateau.max(st.max_plateau);
        self.backend = st.backend.or(self.backend);
    }
}

/// Warm-start state carried across scheduling calls within one flow run.
///
/// The timing-graph *topology* is fixed over the Fig. 3 loop — only the
/// bounds drift as incremental placement moves the cells — so each
/// scheduler family keeps its whole [`ParametricSystem`] engine (CSR
/// graph, optimal potentials, critical cycle) in its own slot and
/// re-targets it at the next iteration's system via
/// [`ParametricSystem::rebind`]: only the bounds that actually changed are
/// replayed, and the next solve seeds relaxation from those arcs alone.
/// Warm state is purely an accelerator: every returned schedule comes from
/// a canonical cold solve at the final parameter, so results are
/// bit-identical with or without a context.
#[derive(Debug, Clone, Default)]
pub struct SkewContext {
    /// Engine of the period-search parametrization.
    period: Option<ParametricSystem>,
    /// Engine of the stage-2 max-slack system.
    stage2: Option<ParametricSystem>,
    /// Engine of the minimax system (`n + 1` variables).
    minimax: Option<ParametricSystem>,
    /// Engine of the weighted-schedule feasibility pre-check.
    weighted: Option<ParametricSystem>,
    /// Persistent min-cost-circulation engine of the weighted-sum dual
    /// (flow + integer potentials), reused while the arc topology matches.
    circulation: Option<CirculationState>,
    /// Which circulation engine the weighted dual should run
    /// ([`CirculationBackend::Auto`] picks by instance size); applied to
    /// the leased engine on every call, so a config change takes effect
    /// even on a warm engine.
    backend: CirculationBackend,
}

impl SkewContext {
    /// An empty context (first iteration: all solves start cold).
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects the circulation backend the weighted dual will use. The
    /// schedule is bit-identical across backends (both end in the same
    /// canonical-distance recovery); only the route to the optimal flow
    /// differs.
    pub fn set_circulation_backend(&mut self, backend: CirculationBackend) {
        self.backend = backend;
    }
}

/// The weighted-sum dual's circulation engine plus the `(from, to)` pairs
/// it was built over. The timing-graph topology is fixed across phase
/// re-wrap rounds (only reference-arc costs move by `k·T/2`) and across
/// Fig. 3 iterations (only bounds and weights drift), so one engine
/// serves the whole flow run; the stored pairs gate reuse — an engine
/// built for a different system is discarded, never warm-started.
#[derive(Debug, Clone)]
struct CirculationState {
    engine: Circulation,
    pairs: Vec<(u32, u32)>,
    /// Ring of the last few certified solves: caps/costs plus their
    /// canonical distances, oldest first. Two uses:
    ///
    /// * **Exact replay** — a Dinkelbach probe sequence frequently
    ///   re-evaluates a recent parameter (the re-wrap loop's phase
    ///   assignments settle and oscillate between a couple of fixed
    ///   points), and the canonical distances are a pure function of
    ///   `(pairs, caps, costs)`, so a matching entry answers the probe
    ///   with no solve at all.
    /// * **Nearest-neighbor potential seeding** — when no entry matches
    ///   exactly but one is much closer (fewer differing pairs) to the
    ///   incoming problem than the engine's carried state, its canonical
    ///   distances seed the Johnson potentials via
    ///   [`Circulation::seed_potentials`] (quant-ladder backend only;
    ///   exactness is unaffected, see there).
    memo: Vec<MemoEntry>,
    /// Caps/costs the *engine* last actually solved (memo replays skip
    /// the engine, so this can lag the newest memo entry). This is the
    /// baseline both the dropout hint and the seeding distance are
    /// measured against.
    solved_caps: Vec<i64>,
    solved_costs: Vec<i64>,
    /// Pair indices that may have changed since the engine's last solve —
    /// the union of caller dropout hints accumulated across memo-replayed
    /// calls. `None` = unknown (an unhinted call intervened since the
    /// last solve); hinting resumes after the next engine solve.
    hint: Option<Vec<u32>>,
}

/// One certified solve in the [`CirculationState`] memo ring.
#[derive(Debug, Clone)]
struct MemoEntry {
    caps: Vec<i64>,
    costs: Vec<i64>,
    dist: Vec<i64>,
}

/// Memo ring depth: the re-wrap fixed points plus the latest Dinkelbach
/// probes fit in a handful of entries, and each entry is three
/// instance-sized vectors — deep rings would cost more in `Vec` clones
/// than a re-solve.
const MEMO_RING: usize = 4;

/// A memo entry seeds the potentials only when it is at least this many
/// times closer (in differing pairs) to the incoming problem than the
/// engine's carried state: seeding voids the engine's per-pair rebind
/// certificate and forces a full-slot saturation scan, so a marginal
/// improvement is a net loss.
const SEED_ADVANTAGE: usize = 2;

/// Takes the slot's engine and re-targets it at `sys`/`tighten` when the
/// shape matches (patching only the changed bounds), or builds a fresh
/// engine otherwise (first iteration, or a different circuit across a
/// ring-grid sweep). Returns `(engine, reused_work, delta_arcs)`:
/// `reused_work` counts the labels plus unchanged constraint arcs the warm
/// path kept, zero on a cold build.
fn lease_engine(
    slot: &mut Option<ParametricSystem>,
    sys: &DifferenceSystem,
    tighten: &[f64],
) -> (ParametricSystem, usize, usize) {
    if let Some(mut par) = slot.take() {
        if let Some(delta) = par.rebind(sys, tighten) {
            let reused = par.num_vars() + (par.num_constraints() - delta);
            return (par, reused, delta);
        }
    }
    (ParametricSystem::new(sys, tighten), 0, 0)
}

/// The smallest clock period at which the skew constraints admit any
/// schedule. Never smaller than `tech.clock_period`.
///
/// Both skew bounds are affine in the period `T` — the long-path bound
/// `T − D_max − t_setup` grows with it, the short-path bound is
/// independent — so one parametric system built at `tech.clock_period`
/// with the long-path rows *loosening* (`tighten = −1`) covers every
/// candidate period as `bound + m`; the exact minimum excess `m` is the
/// cycle-ratio solve of [`ParametricSystem::min_feasible`]. No
/// per-probe system rebuilds, no `Technology` clones.
pub fn min_feasible_period(graph: &SequentialGraph, tech: &Technology) -> f64 {
    min_feasible_period_ctx(graph, tech, &mut SkewContext::new()).0
}

/// [`min_feasible_period`] with warm-start context and solver stats.
///
/// # Panics
///
/// Panics if the constraints are infeasible at any period (a negative
/// short-path-only cycle).
pub fn min_feasible_period_ctx(
    graph: &SequentialGraph,
    tech: &Technology,
    ctx: &mut SkewContext,
) -> (f64, SkewStats) {
    if graph.pairs().is_empty() {
        return (tech.clock_period, SkewStats::default());
    }
    let (sys, timing_rows) = timing_system(graph, tech, 0.0, 0);
    let mut tighten = vec![0.0; sys.constraints().len()];
    // timing_system pushes rows in (long-path, short-path) pairs; only the
    // long-path rows carry the period.
    for (k, &row) in timing_rows.iter().enumerate() {
        if k % 2 == 0 {
            tighten[row] = -1.0;
        }
    }
    let (mut par, reused, delta) = lease_engine(&mut ctx.period, &sys, &tighten);
    // Engines persist across calls, so their lifetime counters must be
    // snapshot-diffed to get this call's share.
    let solves0 = par.solves();
    let affected0 = par.affected_vertices();
    let excess = par.min_feasible(1e6).expect("timing constraints infeasible at any period");
    let stats = SkewStats {
        constraints: sys.constraints().len(),
        solver_iterations: par.solves() - solves0,
        reused_work: reused,
        delta_arcs: delta,
        affected_vertices: par.affected_vertices() - affected0,
        ..SkewStats::default()
    };
    ctx.period = Some(par);
    (tech.clock_period + excess, stats)
}

/// Builds the timing difference-constraint system at slack `m`:
/// long path `t̂_i − t̂_j ≤ T − D_max − t_setup − m` and short path
/// `t̂_j − t̂_i ≤ D_min − t_hold − m` for every `i ↦ j`, over
/// `n_extra` additional variables appended after the flip-flops.
fn timing_system(
    graph: &SequentialGraph,
    tech: &Technology,
    m: f64,
    n_extra: usize,
) -> (DifferenceSystem, Vec<usize>) {
    let ffs = graph.flip_flops();
    let index_of = |id| ffs.binary_search(&id).expect("flip-flop in graph");
    let mut sys = DifferenceSystem::new(ffs.len() + n_extra);
    let mut timing_rows = Vec::new();
    for p in graph.pairs() {
        let (i, j) = (index_of(p.from), index_of(p.to));
        timing_rows.push(sys.constraints().len());
        sys.add(i, j, p.skew_upper(tech) - m);
        timing_rows.push(sys.constraints().len());
        sys.add(j, i, -(p.skew_lower(tech) + m));
    }
    (sys, timing_rows)
}

/// Stage-2 skew optimization: maximize the slack `M` (eqs. 5–7).
///
/// Returns the schedule anchored so that the minimum target is 0.
///
/// # Panics
///
/// Panics if even `M = 0` is infeasible (the circuit cannot run at the
/// technology's clock period).
pub fn max_slack_schedule(graph: &SequentialGraph, tech: &Technology) -> SkewSchedule {
    max_slack_schedule_with_stats(graph, tech).0
}

/// [`max_slack_schedule`] plus its [`SkewStats`].
///
/// # Panics
///
/// Same conditions as [`max_slack_schedule`].
pub fn max_slack_schedule_with_stats(
    graph: &SequentialGraph,
    tech: &Technology,
) -> (SkewSchedule, SkewStats) {
    max_slack_schedule_ctx(graph, tech, &mut SkewContext::new())
}

/// [`max_slack_schedule_with_stats`] with warm-start context: the slack
/// maximization runs as an exact parametric cycle-ratio solve (Newton on
/// the violated cycles) instead of a tolerance-bounded bisection, seeded
/// from the previous iteration's potentials. The returned targets come
/// from a canonical cold solve at the optimum.
///
/// # Panics
///
/// Same conditions as [`max_slack_schedule`].
pub fn max_slack_schedule_ctx(
    graph: &SequentialGraph,
    tech: &Technology,
    ctx: &mut SkewContext,
) -> (SkewSchedule, SkewStats) {
    let n = graph.flip_flops().len();
    if graph.pairs().is_empty() {
        let schedule = SkewSchedule { period: tech.clock_period, ..SkewSchedule::zero(n) };
        return (schedule, SkewStats::default());
    }
    // If the circuit cannot run at the nominal period, schedule at the
    // minimum feasible period (with a small margin so the cost-driven
    // stage keeps room to move).
    let (period, period_stats) = min_feasible_period_ctx(graph, tech, ctx);
    let period = if period > tech.clock_period { 1.05 * period } else { period };
    let tech_eff = Technology { clock_period: period, ..*tech };
    let (sys, _) = timing_system(graph, &tech_eff, 0.0, 0);
    let tighten = vec![1.0; sys.constraints().len()];
    let (mut par, reused, delta) = lease_engine(&mut ctx.stage2, &sys, &tighten);
    let solves0 = par.solves();
    let affected0 = par.affected_vertices();
    let (slack, mut targets) = par
        .maximize_slack_exact(period)
        .expect("base system must be feasible for slack maximization");
    let stats = SkewStats {
        constraints: sys.constraints().len(),
        solver_iterations: period_stats.solver_iterations + (par.solves() - solves0),
        reused_work: period_stats.reused_work + reused,
        delta_arcs: period_stats.delta_arcs + delta,
        affected_vertices: period_stats.affected_vertices + (par.affected_vertices() - affected0),
        ..SkewStats::default()
    };
    ctx.stage2 = Some(par);
    normalize(&mut targets);
    (SkewSchedule { targets, slack, period }, stats)
}

/// Stage-4 cost-driven skew optimization, minimax form: minimize `Δ` s.t.
///
/// ```text
/// t_ref + t_ref,c + 2·t_c,i − t̂_i ≤ Δ       (∀ i)
/// t̂_i − t_ref − t_ref,c ≤ Δ                 (∀ i)
/// ```
///
/// plus the timing constraints at slack `m`. `ring_delay[i]` is
/// `t_ref + t_ref,c` (the clock delay at the closest ring point `c` of
/// flip-flop `i`) and `stub_delay[i]` is `t_c,i`.
///
/// # Panics
///
/// Panics if the timing system at slack `m` is infeasible, or if input
/// slices disagree in length with the graph.
pub fn minimax_schedule(
    graph: &SequentialGraph,
    tech: &Technology,
    ring_delay: &[f64],
    stub_delay: &[f64],
    m: f64,
) -> SkewSchedule {
    minimax_schedule_with_stats(graph, tech, ring_delay, stub_delay, m).0
}

/// [`minimax_schedule`] plus its [`SkewStats`].
///
/// # Panics
///
/// Same conditions as [`minimax_schedule`].
pub fn minimax_schedule_with_stats(
    graph: &SequentialGraph,
    tech: &Technology,
    ring_delay: &[f64],
    stub_delay: &[f64],
    m: f64,
) -> (SkewSchedule, SkewStats) {
    minimax_schedule_ctx(graph, tech, ring_delay, stub_delay, m, &mut SkewContext::new())
}

/// [`minimax_schedule_with_stats`] with warm-start context (exact
/// parametric solve; canonical cold solution at the optimum).
///
/// # Panics
///
/// Same conditions as [`minimax_schedule`].
pub fn minimax_schedule_ctx(
    graph: &SequentialGraph,
    tech: &Technology,
    ring_delay: &[f64],
    stub_delay: &[f64],
    m: f64,
    ctx: &mut SkewContext,
) -> (SkewSchedule, SkewStats) {
    let n = graph.flip_flops().len();
    assert_eq!(ring_delay.len(), n);
    assert_eq!(stub_delay.len(), n);
    // Variable n is the reference (pinned to 0 implicitly: all window
    // constraints are expressed against it; the solution is later shifted
    // so that the reference variable reads 0).
    let (mut sys, _) = timing_system(graph, tech, m, 1);
    let reference = n;
    // Upper bound on Δ: every target can always sit within one period of
    // its ring point.
    let delta_max: f64 = ring_delay
        .iter()
        .zip(stub_delay)
        .map(|(&a, &b)| a.abs() + 2.0 * b + tech.clock_period)
        .fold(tech.clock_period, f64::max);
    let mut tighten = vec![0.0; sys.constraints().len()];
    for i in 0..n {
        // t̂_i − ref ≤ a_i + Δ   where Δ = delta_max − s
        sys.add(i, reference, ring_delay[i] + delta_max);
        tighten.push(1.0);
        // ref − t̂_i ≤ Δ − a_i − 2 b_i
        sys.add(reference, i, delta_max - ring_delay[i] - 2.0 * stub_delay[i]);
        tighten.push(1.0);
    }
    let (mut par, reused, delta) = lease_engine(&mut ctx.minimax, &sys, &tighten);
    let solves0 = par.solves();
    let affected0 = par.affected_vertices();
    let (s, mut sol) = par
        .maximize_slack_exact(delta_max)
        .unwrap_or_else(|| panic!("timing constraints infeasible at slack {m}"));
    let _delta = delta_max - s;
    // Shift so the reference variable is exactly 0.
    let r = sol[reference];
    sol.truncate(n);
    for v in &mut sol {
        *v -= r;
    }
    let stats = SkewStats {
        constraints: sys.constraints().len(),
        solver_iterations: par.solves() - solves0,
        reused_work: reused,
        delta_arcs: delta,
        affected_vertices: par.affected_vertices() - affected0,
        ..SkewStats::default()
    };
    ctx.minimax = Some(par);
    (SkewSchedule { targets: sol, slack: m, period: tech.clock_period }, stats)
}

/// Stage-4 cost-driven skew optimization, weighted-sum form:
/// minimize `Σ_i w_i·|t̂_i − ideal_i|` subject to the timing constraints at
/// slack `m`, solved exactly via the min-cost-circulation dual of the LP.
///
/// `ideal[i]` is the delay `t_i` through the closest ring point
/// (`t_c + t_{c,i}`), and `weight[i] ≥ 0` its priority (the paper uses the
/// flip-flop-to-ring distance `l_i`).
///
/// # Panics
///
/// Panics if the timing system at slack `m` is infeasible or slice lengths
/// disagree.
pub fn weighted_schedule(
    graph: &SequentialGraph,
    tech: &Technology,
    ideal: &[f64],
    weight: &[f64],
    m: f64,
) -> SkewSchedule {
    weighted_schedule_with_stats(graph, tech, ideal, weight, m).0
}

/// [`weighted_schedule`] plus its [`SkewStats`].
///
/// # Panics
///
/// Same conditions as [`weighted_schedule`].
pub fn weighted_schedule_with_stats(
    graph: &SequentialGraph,
    tech: &Technology,
    ideal: &[f64],
    weight: &[f64],
    m: f64,
) -> (SkewSchedule, SkewStats) {
    weighted_schedule_ctx(graph, tech, ideal, weight, m, &mut SkewContext::new())
}

/// Fixed-point scale for the circulation's integer arc costs: 2^40.
///
/// A power of two keeps quantization and recovery exact in `f64`:
/// `(cost · 2^40).round()` introduces at most 2^−41 ns ≈ 4.5e−13 of error
/// per arc — far below every feasibility tolerance in the flow — and the
/// final division of an integer dual difference by 2^40 is an exact
/// floating-point operation (the differences are schedule-sized, well
/// under 2^53 scaled units). Exact integer costs are what make warm and
/// cold solves bit-identical: the engine's canonical duals depend only on
/// the quantized problem, not on which optimal circulation a solve found.
const COST_SCALE: f64 = 1_099_511_627_776.0;

/// [`weighted_schedule_with_stats`] with warm-start context: the timing
/// feasibility pre-check relaxes from the previous iteration's potentials,
/// and the min-cost-circulation dual re-solves incrementally on the
/// engine carried in the context — flow and potentials persist across
/// phase re-wrap rounds and flow iterations, so only the arcs whose costs
/// or bounds actually moved are de/re-saturated and the resulting small
/// imbalances routed. The recovered schedule comes from the engine's
/// canonical integer duals, which are a constant of the quantized problem
/// (see [`COST_SCALE`]), so warm and cold schedules are bit-identical.
///
/// # Panics
///
/// Same conditions as [`weighted_schedule`].
pub fn weighted_schedule_ctx(
    graph: &SequentialGraph,
    tech: &Technology,
    ideal: &[f64],
    weight: &[f64],
    m: f64,
    ctx: &mut SkewContext,
) -> (SkewSchedule, SkewStats) {
    weighted_schedule_hinted(graph, tech, ideal, weight, m, ctx, None)
}

/// [`weighted_schedule_ctx`] with the converged-FF dropout hint of the
/// phase re-wrap loop: `rewrapped` lists the flip-flop indices whose
/// `ideal` moved since the previous call on this context, certifying the
/// rest of the problem — every other flip-flop's parameters and the whole
/// constraint system (same graph, technology, slack, and weights) — as
/// byte-identical to that call's. The certified complement is frozen out
/// of the circulation's rebind scan ([`Circulation::solve_hinted`];
/// surfaced as nonzero frozen-pair reuse), and the certificate survives
/// memo-replayed probes in between. The hint is a pure accelerator:
/// schedules are byte-identical with or without it.
///
/// # Panics
///
/// Same conditions as [`weighted_schedule`]; debug builds additionally
/// panic if the caller's certificate is violated.
pub fn weighted_schedule_rewrap_ctx(
    graph: &SequentialGraph,
    tech: &Technology,
    ideal: &[f64],
    weight: &[f64],
    m: f64,
    ctx: &mut SkewContext,
    rewrapped: &[u32],
) -> (SkewSchedule, SkewStats) {
    weighted_schedule_hinted(graph, tech, ideal, weight, m, ctx, Some(rewrapped))
}

fn weighted_schedule_hinted(
    graph: &SequentialGraph,
    tech: &Technology,
    ideal: &[f64],
    weight: &[f64],
    m: f64,
    ctx: &mut SkewContext,
    ff_hint: Option<&[u32]>,
) -> (SkewSchedule, SkewStats) {
    let n = graph.flip_flops().len();
    assert_eq!(ideal.len(), n);
    assert_eq!(weight.len(), n);
    let (sys, _) = timing_system(graph, tech, m, 0);
    let (pre_reused, pre_delta, pre_solves, pre_affected) = {
        // The pre-check system is all-zero tighten, so the rebound engine's
        // delta seeding applies at any probe parameter: after the first
        // converged probe, subsequent calls relax only from changed arcs —
        // across re-wrap rounds with unchanged bounds that is zero seeds
        // and an instant re-certification.
        let tighten = vec![0.0; sys.constraints().len()];
        let (mut par, reused, delta) = lease_engine(&mut ctx.weighted, &sys, &tighten);
        let solves0 = par.solves();
        let affected0 = par.affected_vertices();
        assert!(par.probe(0.0), "timing constraints infeasible at slack {m}");
        let out = (reused, delta, par.solves() - solves0, par.affected_vertices() - affected0);
        ctx.weighted = Some(par);
        out
    };

    // Dual network: node per flip-flop + reference node R = n.
    // Constraint y_i − y_j ≤ b  ⇒ arc i → j, cost b, cap ∞.
    // Objective term w_i·|y_i − t_i| ⇒ arcs i → R and R → i with
    // cost −t_i / +t_i and capacity w_i (scaled to integers).
    //
    // With flows f on those arcs, LP duality gives
    //   min Σ w|y−t| = −min-cost circulation,
    // and an optimal y is recovered from the circulation's duals:
    //   y_i = −d_i (up to a common shift), where d are shortest distances
    // in the optimal residual network.
    //
    // The arc *topology* is fixed for the whole flow run — constraint arcs
    // follow the timing graph, and every flip-flop gets its R-arc pair
    // (capacity 0 when its weight rounds to 0, which keeps the pair inert
    // without changing the node/arc layout) — so the engine in the context
    // is rebuilt only when the topology genuinely differs (e.g. across a
    // ring-grid sweep) and warm-starts otherwise.
    const W_SCALE: f64 = 64.0;
    let quantize = |x: f64| (x * COST_SCALE).round() as i64;
    // Every negative-cost simple cycle crosses R (cycles of constraint
    // arcs alone sum ≥ 0 — the system is feasible), so circulation flow on
    // any constraint arc is bounded by the total R-arc capacity. A finite
    // cap lets the solver saturate negative-bound constraint arcs without
    // overflow while changing no optimum.
    let w_caps: Vec<i64> = weight.iter().map(|&w| ((w * W_SCALE).round() as i64).max(0)).collect();
    let total_w: i64 = w_caps.iter().sum::<i64>().max(1);
    let n_arcs = sys.constraints().len() + 2 * n;
    let mut pairs = Vec::with_capacity(n_arcs);
    let mut caps = Vec::with_capacity(n_arcs);
    let mut costs = Vec::with_capacity(n_arcs);
    for c in sys.constraints() {
        pairs.push((c.i as u32, c.j as u32));
        caps.push(total_w);
        costs.push(quantize(c.bound));
    }
    for (i, &cap) in w_caps.iter().enumerate() {
        let q = quantize(ideal[i]);
        pairs.push((i as u32, n as u32));
        caps.push(cap);
        costs.push(q);
        pairs.push((n as u32, i as u32));
        caps.push(cap);
        costs.push(-q);
    }
    let (mut state, warm) = match ctx.circulation.take() {
        Some(s) if s.pairs == pairs => (s, true),
        _ => (
            CirculationState {
                engine: Circulation::new(n + 1, &pairs),
                pairs,
                memo: Vec::new(),
                solved_caps: Vec::new(),
                solved_costs: Vec::new(),
                hint: None,
            },
            false,
        ),
    };
    state.engine.set_backend(ctx.backend);
    // Fold the caller's dropout hint into the carried certificate: the
    // union of hinted pairs since the engine's *last actual solve* stays
    // valid across memo-replayed probes in between; an unhinted call
    // makes the delta unknown until the next solve re-anchors it.
    let n_constraints = sys.constraints().len();
    match (ff_hint, &mut state.hint) {
        (Some(rewrapped), Some(pending)) => {
            for &i in rewrapped {
                let fwd = (n_constraints + 2 * i as usize) as u32;
                pending.push(fwd);
                pending.push(fwd + 1);
            }
        }
        (None, pending) => *pending = None,
        (Some(_), None) => {}
    }
    // The dropout hint and nearest-neighbor seeding ride only the
    // quantization-ladder backend: both are pure accelerators (results
    // are byte-identical), but keeping the other backends' solve paths
    // untouched keeps every A/B attribution clean.
    let assist = effective_backend(ctx.backend) == CirculationBackend::QuantLadder;
    let memo_hit =
        warm.then(|| state.memo.iter().find(|e| e.caps == caps && e.costs == costs)).flatten();
    let (circ_stats, d) = if let Some(entry) = memo_hit {
        // Duplicate Dinkelbach probe: same caps and costs as a recent
        // certified solve, so the memoized canonical distances are the
        // answer. Credit the whole instance as reused, no delta.
        let stats =
            CirculationStats { reused_arcs: state.pairs.len(), ..CirculationStats::default() };
        (stats, entry.dist.clone())
    } else {
        let differing = |mcaps: &[i64], mcosts: &[i64]| {
            mcaps
                .iter()
                .zip(mcosts)
                .zip(caps.iter().zip(&costs))
                .filter(|((ec, ek), (c, k))| ec != c || ek != k)
                .count()
        };
        if warm && assist && !state.memo.is_empty() {
            // Cross-probe potential sharing: when a memoized probe is
            // decisively closer to the incoming parameter than the
            // engine's carried state — and the carried rebind is dense
            // enough that the forced full-slot scan is being paid anyway
            // — its canonical duals seed the Johnson potentials.
            let engine_diff = differing(&state.solved_caps, &state.solved_costs);
            let best = state.memo.iter().min_by_key(|e| differing(&e.caps, &e.costs));
            if let Some(best) = best {
                let best_diff = differing(&best.caps, &best.costs);
                if best_diff * SEED_ADVANTAGE <= engine_diff
                    && best_diff < engine_diff
                    && engine_diff * 8 >= state.pairs.len()
                {
                    state.engine.seed_potentials(&best.dist);
                }
            }
        }
        let hint = match (&state.hint, warm && assist) {
            (Some(pending), true) => {
                let mut h = pending.clone();
                h.sort_unstable();
                h.dedup();
                Some(h)
            }
            _ => None,
        };
        let stats = state.engine.solve_hinted(&caps, &costs, warm, hint.as_deref());
        let d = state.engine.canonical_distances();
        state.solved_caps = caps.clone();
        state.solved_costs = costs.clone();
        state.hint = Some(Vec::new());
        if state.memo.len() == MEMO_RING {
            state.memo.remove(0);
        }
        state.memo.push(MemoEntry { caps, costs, dist: d.clone() });
        (stats, d)
    };
    let backend_label = state.engine.backend_label();
    ctx.circulation = Some(state);
    // Shift so the reference node maps to 0 (pure normalization; all
    // constraints are differences). Integer subtraction, then one exact
    // power-of-two division.
    let shift = d[n];
    let targets: Vec<f64> = (0..n).map(|i| (shift - d[i]) as f64 / COST_SCALE).collect();
    debug_assert!(sys.check(&targets, 1e-6), "dual recovery violated timing");
    let stats = SkewStats {
        constraints: sys.constraints().len(),
        solver_iterations: circ_stats.correction_paths + pre_solves,
        // Frozen pairs are carried work too: the dropout hint certified
        // them unchanged, so the rebind scan never even read them.
        reused_work: circ_stats.reused_arcs + circ_stats.frozen_pairs + pre_reused,
        // Warm-rebind delta of the circulation (arc pairs whose caps or
        // costs actually changed, and their endpoint nodes) plus the
        // pre-check engine's replayed bounds — so the reuse columns mean
        // "work replayed this iteration" here exactly as in the
        // parametric stages, instead of flapping to the full arc count.
        delta_arcs: pre_delta + circ_stats.delta_pairs,
        affected_vertices: pre_affected + circ_stats.touched_nodes,
        rounds: circ_stats.rounds,
        paths: circ_stats.correction_paths,
        max_plateau: circ_stats.max_round_paths,
        backend: Some(backend_label),
    };
    (SkewSchedule { targets, slack: m, period: tech.clock_period }, stats)
}

/// Shifts targets so their minimum is 0.
fn normalize(targets: &mut [f64]) {
    if let Some(min) = targets.iter().cloned().reduce(f64::min) {
        for t in targets.iter_mut() {
            *t -= min;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotary_netlist::geom::{Point, Rect};
    use rotary_netlist::{Cell, CellKind, Circuit, Net};
    use rotary_solver::lp::{LpProblem, LpStatus, RowKind};

    fn cell(kind: CellKind) -> Cell {
        Cell {
            kind,
            width: 2.0,
            height: 8.0,
            input_cap: 0.005,
            drive_resistance: 2.0,
            intrinsic_delay: 0.05,
        }
    }

    /// A 4-stage ring pipeline of flip-flops with gates in between.
    fn pipeline(n: usize) -> Circuit {
        let mut c = Circuit::new("pipe", Rect::from_size(2000.0, 2000.0));
        let mut ffs = Vec::new();
        for k in 0..n {
            ffs.push(
                c.add_cell(cell(CellKind::FlipFlop), Point::new(100.0 + 150.0 * k as f64, 100.0)),
            );
        }
        for k in 0..n {
            let g = c.add_cell(
                cell(CellKind::Combinational),
                Point::new(150.0 + 150.0 * k as f64, 120.0),
            );
            c.add_net(Net { driver: ffs[k], sinks: vec![g] });
            c.add_net(Net { driver: g, sinks: vec![ffs[(k + 1) % n]] });
        }
        c
    }

    fn graph(c: &Circuit) -> SequentialGraph {
        SequentialGraph::extract(c, &Technology::default())
    }

    #[test]
    fn max_slack_schedule_is_feasible_and_positive() {
        let c = pipeline(5);
        let tech = Technology::default();
        let g = graph(&c);
        let s = max_slack_schedule(&g, &tech);
        assert!(s.slack > 0.0, "pipeline at 1 GHz must have slack");
        assert!(g.check_schedule(&s.targets, &tech, s.slack - 1e-4, 1e-6).is_none());
    }

    #[test]
    fn max_slack_matches_lp_solution() {
        // Cross-check the graph-based search against the explicit LP
        // (maximize M ⇔ minimize −M).
        let c = pipeline(4);
        let tech = Technology::default();
        let g = graph(&c);
        let s = max_slack_schedule(&g, &tech);

        let n = g.flip_flops().len();
        let mut lp =
            LpProblem::minimize((0..=n).map(|k| if k == n { -1.0 } else { 0.0 }).collect());
        for j in 0..n {
            lp.set_free(j);
        }
        let idx = |id| g.flip_flops().binary_search(&id).unwrap();
        for p in g.pairs() {
            let (i, j) = (idx(p.from), idx(p.to));
            // t_i − t_j + M ≤ upper
            lp.add_row(RowKind::Le, p.skew_upper(&tech), &[(i, 1.0), (j, -1.0), (n, 1.0)]);
            // t_i − t_j − ... ≥ lower + M  ⇔  −t_i + t_j + M ≤ −lower
            lp.add_row(RowKind::Le, -p.skew_lower(&tech), &[(i, -1.0), (j, 1.0), (n, 1.0)]);
        }
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        let lp_slack = -sol.objective;
        assert!((lp_slack - s.slack).abs() < 1e-3, "graph {} vs LP {}", s.slack, lp_slack);
    }

    #[test]
    fn minimax_schedule_respects_timing() {
        let c = pipeline(6);
        let tech = Technology::default();
        let g = graph(&c);
        let n = g.flip_flops().len();
        let ring_delay: Vec<f64> = (0..n).map(|i| 0.1 * i as f64).collect();
        let stub = vec![0.01; n];
        let s = minimax_schedule(&g, &tech, &ring_delay, &stub, 0.02);
        assert!(g.check_schedule(&s.targets, &tech, 0.02 - 1e-6, 1e-6).is_none());
    }

    #[test]
    fn minimax_pulls_targets_toward_ring_delays() {
        let c = pipeline(6);
        let tech = Technology::default();
        let g = graph(&c);
        let n = g.flip_flops().len();
        // All rings want delay 0.4; unconstrained pipeline can satisfy all.
        let ring_delay = vec![0.4; n];
        let stub = vec![0.0; n];
        let s = minimax_schedule(&g, &tech, &ring_delay, &stub, 0.0);
        for &t in &s.targets {
            assert!((t - 0.4).abs() < 0.05, "target {t} should be near 0.4");
        }
    }

    #[test]
    fn weighted_schedule_matches_lp_on_small_instance() {
        let c = pipeline(5);
        let tech = Technology::default();
        let g = graph(&c);
        let n = g.flip_flops().len();
        let ideal: Vec<f64> = (0..n).map(|i| 0.05 + 0.13 * i as f64).collect();
        let weight: Vec<f64> = (0..n).map(|i| 1.0 + (i % 3) as f64).collect();
        let m = 0.01;
        let s = weighted_schedule(&g, &tech, &ideal, &weight, m);
        assert!(g.check_schedule(&s.targets, &tech, m - 1e-6, 1e-5).is_none());
        let dual_obj: f64 =
            s.targets.iter().zip(&ideal).zip(&weight).map(|((t, i), w)| w * (t - i).abs()).sum();

        // Reference LP: min Σ w δ, δ ≥ ±(t̂ − ideal), timing constraints.
        let mut obj = vec![0.0; n];
        obj.extend(weight.iter().cloned());
        let mut lp = LpProblem::minimize(obj);
        for j in 0..n {
            lp.set_free(j);
        }
        let idx = |id| g.flip_flops().binary_search(&id).unwrap();
        for p in g.pairs() {
            let (i, j) = (idx(p.from), idx(p.to));
            lp.add_row(RowKind::Le, p.skew_upper(&tech) - m, &[(i, 1.0), (j, -1.0)]);
            lp.add_row(RowKind::Le, -(p.skew_lower(&tech) + m), &[(i, -1.0), (j, 1.0)]);
        }
        for (i, &t_ideal) in ideal.iter().enumerate() {
            // t̂_i − δ_i ≤ ideal_i and −t̂_i − δ_i ≤ −ideal_i
            lp.add_row(RowKind::Le, t_ideal, &[(i, 1.0), (n + i, -1.0)]);
            lp.add_row(RowKind::Le, -t_ideal, &[(i, -1.0), (n + i, -1.0)]);
        }
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!(
            (dual_obj - sol.objective).abs() < 0.05 * sol.objective.abs().max(0.1),
            "dual {} vs LP {}",
            dual_obj,
            sol.objective
        );
    }

    #[test]
    fn duplicate_probe_replays_memoized_distances() {
        // A repeated probe at identical parameters must hit the memo:
        // same caps and costs as the last certified solve, so the second
        // call replays the stored canonical distances — bit-identical
        // schedule, full-instance reuse, and no delta anywhere.
        let c = pipeline(5);
        let tech = Technology::default();
        let g = graph(&c);
        let n = g.flip_flops().len();
        let ideal: Vec<f64> = (0..n).map(|i| 0.05 + 0.13 * i as f64).collect();
        let weight: Vec<f64> = (0..n).map(|i| 1.0 + (i % 3) as f64).collect();
        let mut ctx = SkewContext::new();
        let (first, _) = weighted_schedule_ctx(&g, &tech, &ideal, &weight, 0.01, &mut ctx);
        let (second, stats) = weighted_schedule_ctx(&g, &tech, &ideal, &weight, 0.01, &mut ctx);
        for (a, b) in first.targets.iter().zip(&second.targets) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let arc_pairs = ctx.circulation.as_ref().unwrap().pairs.len();
        assert!(stats.reused_work >= arc_pairs, "memo hit must credit the whole instance");
        assert_eq!(stats.delta_arcs, 0, "nothing changed, nothing replayed");

        // A different parameter invalidates the memo and re-solves.
        let moved: Vec<f64> = ideal.iter().map(|t| t + 0.02).collect();
        let (third, _) = weighted_schedule_ctx(&g, &tech, &moved, &weight, 0.01, &mut ctx);
        assert!(g.check_schedule(&third.targets, &tech, 0.01 - 1e-6, 1e-5).is_none());
    }

    #[test]
    fn weighted_schedule_with_zero_weights_is_still_feasible() {
        let c = pipeline(4);
        let tech = Technology::default();
        let g = graph(&c);
        let n = g.flip_flops().len();
        let s = weighted_schedule(&g, &tech, &vec![0.3; n], &vec![0.0; n], 0.0);
        assert!(g.check_schedule(&s.targets, &tech, 0.0, 1e-5).is_none());
    }

    #[test]
    fn empty_graph_yields_zero_schedule() {
        let mut c = Circuit::new("lonely", Rect::from_size(100.0, 100.0));
        c.add_cell(cell(CellKind::FlipFlop), Point::new(10.0, 10.0));
        let tech = Technology::default();
        let g = graph(&c);
        let s = max_slack_schedule(&g, &tech);
        assert_eq!(s.targets, vec![0.0]);
    }
}
