//! Property-based equivalence tests for the shared kernel layer.
//!
//! The sparse-LU revised simplex (`lp` on top of `sparse`) and the SPFA
//! shortest-path kernel (`graph`) replaced, respectively, a dense
//! basis-inverse simplex and three hand-rolled Bellman–Ford loops. These
//! properties pin the new kernels against straightforward textbook
//! reference implementations (re-implemented here, dense and queue-free)
//! on random instances, so a regression in pivoting, eta-file updates,
//! refactorization, or negative-cycle detection shows up as a direct
//! disagreement rather than a subtle downstream metric shift.

use proptest::prelude::*;
use rotary_solver::graph::{Source, SpfaGraph, SpfaResult};
use rotary_solver::lp::{LpProblem, LpStatus, Pricing, RowKind};
use rotary_solver::rounding::greedy_round;

/// Quantizes to multiples of 1/8 so reference and kernel do bit-exact
/// dyadic-rational arithmetic (no tolerance games in the comparisons).
fn q8(x: f64) -> f64 {
    (x * 8.0).round() / 8.0
}

// ---------------------------------------------------------------------------
// Dense reference simplex
// ---------------------------------------------------------------------------

/// Reference solver for `min c·x  s.t.  A x ≤ b, x ≥ 0` with `b ≥ 0`:
/// a classic dense-tableau primal simplex with Bland's rule. The slack
/// basis is feasible by construction, so no phase 1 is needed. Instances
/// are generated bounded (explicit box rows), so termination is optimal.
fn dense_simplex_objective(a: &[Vec<f64>], b: &[f64], c: &[f64]) -> f64 {
    let m = a.len();
    let n = c.len();
    let cols = n + m; // structural + slack
    let mut tab: Vec<Vec<f64>> = (0..m)
        .map(|i| {
            let mut row = vec![0.0; cols + 1];
            row[..n].copy_from_slice(&a[i]);
            row[n + i] = 1.0;
            row[cols] = b[i];
            row
        })
        .collect();
    let mut cost = vec![0.0; cols];
    cost[..n].copy_from_slice(c);
    let mut basis: Vec<usize> = (n..cols).collect();

    for _ in 0..10_000 {
        // Bland: entering = lowest-index column with negative reduced cost.
        let Some(e) = (0..cols).find(|&j| cost[j] < -1e-9) else {
            let mut x = vec![0.0; n];
            for (i, &bj) in basis.iter().enumerate() {
                if bj < n {
                    x[bj] = tab[i][cols];
                }
            }
            return x.iter().zip(c).map(|(xi, ci)| xi * ci).sum();
        };
        // Bland: leaving = min ratio, ties by lowest basis variable index.
        let mut leave: Option<usize> = None;
        for i in 0..m {
            if tab[i][e] > 1e-9 {
                let ratio = tab[i][cols] / tab[i][e];
                let better = match leave {
                    None => true,
                    Some(l) => {
                        let lr = tab[l][cols] / tab[l][e];
                        ratio < lr - 1e-12 || (ratio < lr + 1e-12 && basis[i] < basis[l])
                    }
                };
                if better {
                    leave = Some(i);
                }
            }
        }
        let l = leave.expect("box rows keep every instance bounded");
        let piv = tab[l][e];
        for v in tab[l].iter_mut() {
            *v /= piv;
        }
        let pivot_row = tab[l].clone();
        for (i, row) in tab.iter_mut().enumerate() {
            if i != l && row[e].abs() > 0.0 {
                let f = row[e];
                for (dst, &p) in row.iter_mut().zip(&pivot_row) {
                    *dst -= f * p;
                }
            }
        }
        let f = cost[e];
        for (cj, &p) in cost.iter_mut().zip(&pivot_row) {
            *cj -= f * p;
        }
        basis[l] = e;
    }
    panic!("dense reference simplex failed to terminate");
}

proptest! {
    /// The sparse-LU revised simplex and the dense tableau reference agree
    /// on the optimal objective of random bounded-feasible LPs
    /// (`min c·x, A x ≤ b` with `b ≥ 0` plus a box on every variable).
    #[test]
    fn sparse_lu_simplex_matches_dense_reference(
        n in 2usize..=5,
        m in 1usize..=7,
        raw in prop::collection::vec(-2.0f64..2.0, 64),
    ) {
        let mut next = {
            let mut k = 0usize;
            move || {
                let v = raw[k % raw.len()];
                k += 1;
                v
            }
        };
        // Objective: mixed signs so the optimum is not always the origin.
        let c: Vec<f64> = (0..n).map(|_| q8(1.5 * next())).collect();
        // General rows: coefficients in [−2, 2], rhs ≥ 0 keeps x = 0 feasible.
        let mut a: Vec<Vec<f64>> = (0..m)
            .map(|_| (0..n).map(|_| q8(next())).collect())
            .collect();
        let mut b: Vec<f64> = (0..m).map(|_| q8(next().abs() + 0.5)).collect();
        // Box rows x_j ≤ u_j make every instance bounded for any objective.
        for j in 0..n {
            let mut row = vec![0.0; n];
            row[j] = 1.0;
            a.push(row);
            b.push(q8(next().abs() + 0.5));
        }

        let mut lp = LpProblem::minimize(c.clone());
        for (row, &rhs) in a.iter().zip(&b) {
            let coeffs: Vec<(usize, f64)> =
                row.iter().enumerate().filter(|(_, v)| **v != 0.0).map(|(j, v)| (j, *v)).collect();
            lp.add_row(RowKind::Le, rhs, &coeffs);
        }
        let s = lp.solve();
        prop_assert_eq!(s.status, LpStatus::Optimal);

        let reference = dense_simplex_objective(&a, &b, &c);
        let scale = 1.0_f64.max(reference.abs());
        prop_assert!(
            (s.objective - reference).abs() <= 1e-6 * scale,
            "objective mismatch: sparse-LU {} vs dense reference {}",
            s.objective,
            reference
        );
        // The reported x must actually be feasible and attain the objective.
        for (row, &rhs) in a.iter().zip(&b) {
            let lhs: f64 = row.iter().zip(&s.x).map(|(aij, xj)| aij * xj).sum();
            prop_assert!(lhs <= rhs + 1e-7, "row violated: {} > {}", lhs, rhs);
        }
        let cx: f64 = c.iter().zip(&s.x).map(|(ci, xi)| ci * xi).sum();
        prop_assert!((cx - s.objective).abs() <= 1e-7 * scale);
    }
}

// ---------------------------------------------------------------------------
// Devex partial pricing vs full Dantzig pricing
// ---------------------------------------------------------------------------

/// Builds the eq. 3 min-max-capacitance relaxation for a random
/// assignment instance: `x_ik` per (item, candidate bin) arc plus the
/// makespan `t` (last column); `min t + tiebreak·wl` s.t. `Σ_k x_ik = 1`
/// and `Σ_i load·x − t ≤ 0` per bin. Returns the LP and the per-item
/// `(bin, column)` lists for rounding.
#[allow(clippy::type_complexity)]
fn min_max_instance(
    items: usize,
    bins: usize,
    raw: &[f64],
) -> (LpProblem, Vec<Vec<(usize, usize)>>) {
    let mut k = 0usize;
    let mut next = move |raw: &[f64]| {
        let v = raw[k % raw.len()];
        k += 1;
        v
    };
    let mut var_of: Vec<Vec<(usize, usize)>> = Vec::with_capacity(items);
    let mut obj = Vec::new();
    let mut loads: Vec<(usize, usize, f64)> = Vec::new(); // (bin, col, load)
    for _ in 0..items {
        let cands = 2 + (((next(raw) + 2.0) * 10.0) as usize) % 3;
        let mut row = Vec::with_capacity(cands);
        for c in 0..cands {
            let bin = (((next(raw) + 2.0) * 7.0) as usize + c) % bins;
            if row.iter().any(|&(b, _)| b == bin) {
                continue;
            }
            let col = obj.len();
            let wl = q8((next(raw) + 2.0).abs());
            // Strictly distinct per-column costs, comfortably above the
            // simplex's reduced-cost tolerance: without them eq. 3
            // instances have alternate optimal vertices, and the two
            // pricing rules legitimately stop at different corners. The
            // jitter must be hash-like, not linear in `col` — a linear
            // term cancels exactly when two items with identical draws
            // swap bins (their column indices shift in lockstep).
            let jitter = ((col as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 52) as f64;
            obj.push(1e-4 * wl + 1e-7 * (jitter + 1.0));
            loads.push((bin, col, q8(0.25 + (next(raw) + 2.0) / 4.0)));
            row.push((bin, col));
        }
        var_of.push(row);
    }
    let t_var = obj.len();
    obj.push(1.0);
    let mut lp = LpProblem::minimize(obj);
    for row in &var_of {
        let coeffs: Vec<(usize, f64)> = row.iter().map(|&(_, col)| (col, 1.0)).collect();
        lp.add_row(RowKind::Eq, 1.0, &coeffs);
    }
    for bin in 0..bins {
        let mut coeffs: Vec<(usize, f64)> =
            loads.iter().filter(|&&(b, _, _)| b == bin).map(|&(_, col, l)| (col, l)).collect();
        if coeffs.is_empty() {
            continue;
        }
        coeffs.push((t_var, -1.0));
        lp.add_row(RowKind::Le, 0.0, &coeffs);
    }
    (lp, var_of)
}

proptest! {
    /// Devex reference weights with the partial-pricing candidate list
    /// reach the same optimum as the full Dantzig scan (the pricing rule
    /// changes the pivot path, never the optimum), and the greedily
    /// rounded integral assignment is identical on eq. 3 instances.
    #[test]
    fn devex_partial_pricing_matches_dantzig(
        items in 3usize..=14,
        bins in 2usize..=5,
        raw in prop::collection::vec(-2.0f64..2.0, 96),
    ) {
        let (mut lp_a, var_of) = min_max_instance(items, bins, &raw);
        let (mut lp_b, _) = min_max_instance(items, bins, &raw);
        lp_a.set_pricing(Pricing::Dantzig);
        lp_b.set_pricing(Pricing::DevexPartial);
        let sa = lp_a.solve();
        let sb = lp_b.solve();
        prop_assert_eq!(sa.status, LpStatus::Optimal);
        prop_assert_eq!(sb.status, LpStatus::Optimal);
        prop_assert!(
            (sa.objective - sb.objective).abs() < 1e-6,
            "optimum mismatch: Dantzig {} vs Devex {}",
            sa.objective,
            sb.objective
        );
        let fractions_of = |x: &[f64]| -> Vec<Vec<(usize, f64)>> {
            var_of
                .iter()
                .map(|row| row.iter().map(|&(bin, col)| (bin, x[col])).collect())
                .collect()
        };
        prop_assert_eq!(
            greedy_round(&fractions_of(&sa.x)),
            greedy_round(&fractions_of(&sb.x))
        );
    }
}

/// [`min_max_instance`] with stable item×bin column keys and row keys —
/// the shape `core::assign` hands the solver, where a basis carried from
/// one instance can be resolved against another whose candidate columns
/// only partially overlap.
fn keyed_min_max_instance(
    items: usize,
    bins: usize,
    raw: &[f64],
) -> (LpProblem, Vec<Vec<(usize, usize)>>) {
    let (mut lp, var_of) = min_max_instance(items, bins, raw);
    let n_vars = lp.num_vars();
    let mut col_keys = vec![0u64; n_vars];
    for (item, row) in var_of.iter().enumerate() {
        for &(bin, col) in row {
            col_keys[col] = ((item as u64) << 32) | (bin as u64 + 1);
        }
    }
    col_keys[n_vars - 1] = u64::MAX; // the makespan t
    let mut row_keys: Vec<u64> = (0..items as u64).collect();
    let mut present = vec![false; bins];
    for row in &var_of {
        for &(bin, _) in row {
            present[bin] = true;
        }
    }
    for (bin, p) in present.iter().enumerate() {
        if *p {
            row_keys.push((1 << 48) | bin as u64);
        }
    }
    lp.set_col_keys(col_keys);
    lp.set_row_keys(row_keys);
    (lp, var_of)
}

proptest! {
    /// Warm-starting from a *different* instance's optimal basis is
    /// bit-identical to the cold Dantzig solve. The two instances share
    /// only their shape (items × bins): costs and loads are redrawn and
    /// the candidate bin sets differ, so the keyed resolution exercises
    /// surviving, added, and dropped columns together; triage then takes
    /// whichever of the primal / dual-repair / cold paths applies. The
    /// tiebreak-polish termination makes the optimal vertex a function of
    /// the problem alone, so `x` must match bit for bit, not just in
    /// objective.
    #[test]
    fn warm_started_resolve_is_bit_identical_to_cold(
        items in 3usize..=14,
        bins in 2usize..=5,
        raw_a in prop::collection::vec(-2.0f64..2.0, 96),
        raw_b in prop::collection::vec(-2.0f64..2.0, 96),
    ) {
        let (lp_a, _) = keyed_min_max_instance(items, bins, &raw_a);
        let (sol_a, basis_a) = lp_a.solve_with_basis(None);
        prop_assert_eq!(sol_a.status, LpStatus::Optimal);
        let basis_a = basis_a.expect("optimal solve returns a basis");

        let (lp_b, _) = keyed_min_max_instance(items, bins, &raw_b);
        let cold = lp_b.solve();
        let (warm, _, _stats) = lp_b.solve_with_basis_stats(Some(&basis_a));
        prop_assert_eq!(cold.status, LpStatus::Optimal);
        prop_assert_eq!(warm.status, LpStatus::Optimal);
        prop_assert!(
            warm.x == cold.x,
            "warm x diverged from cold x: warm obj {} cold obj {}",
            warm.objective,
            cold.objective
        );
        prop_assert_eq!(warm.objective, cold.objective);
    }

    /// Same property under pure cost/bound drift: the instance keeps its
    /// matrix but every objective coefficient is redrawn. The carried
    /// basis maps fully (no added or dropped columns), which pins the
    /// primal-restart triage arm specifically.
    #[test]
    fn warm_cost_drift_is_bit_identical_to_cold(
        items in 3usize..=14,
        bins in 2usize..=5,
        raw in prop::collection::vec(-2.0f64..2.0, 96),
        scale in 0.25f64..4.0,
    ) {
        let (lp_a, var_of) = keyed_min_max_instance(items, bins, &raw);
        let (sol_a, basis_a) = lp_a.solve_with_basis(None);
        prop_assert_eq!(sol_a.status, LpStatus::Optimal);
        let basis_a = basis_a.expect("optimal solve returns a basis");

        let mut lp_b = lp_a;
        for row in &var_of {
            for &(_, col) in row {
                // Redraw every cost with the generator's two-term lattice
                // structure (dyadic 1e-4·wl + integer·1e-7 jitter) under a
                // fresh hash multiplier. The lattice is what rules out
                // near-ties: any basis-exchange circuit sums to exactly 0
                // or to ≥ 1e-7 ≫ EPS in each term independently, so an
                // exact alternate optimum needs both sums to vanish at
                // once. A single constant-plus-jitter term admits zero-sum
                // circuits far too often, and warm/cold then legitimately
                // stop at different corners of the tied face.
                let h = (col as u64).wrapping_mul(0xD1B5_4A32_D192_ED03);
                let wl = q8(scale * ((h >> 52) as f64) / 512.0);
                let jitter = ((h >> 20) & 0xFFF) as f64;
                lp_b.set_objective_coeff(col, 1e-4 * wl + 1e-7 * (jitter + 1.0));
            }
        }
        let cold = lp_b.solve();
        let (warm, _, _stats) = lp_b.solve_with_basis_stats(Some(&basis_a));
        prop_assert_eq!(cold.status, LpStatus::Optimal);
        prop_assert_eq!(warm.status, LpStatus::Optimal);
        prop_assert!(warm.x == cold.x, "cost-drift warm x diverged from cold x");
        prop_assert_eq!(warm.objective, cold.objective);
    }
}

// ---------------------------------------------------------------------------
// Textbook Bellman–Ford reference
// ---------------------------------------------------------------------------

/// `n` full relaxation passes from a virtual super-source (every node
/// starts at 0, the standard difference-constraint setup); pass `n`
/// still improving ⇒ negative cycle (`None`).
fn bellman_ford_virtual(n: usize, arcs: &[(usize, usize, f64)], eps: f64) -> Option<Vec<f64>> {
    let mut dist = vec![0.0; n];
    for pass in 0..=n {
        let mut changed = false;
        for &(f, t, w) in arcs {
            if dist[f] + w < dist[t] - eps {
                dist[t] = dist[f] + w;
                changed = true;
            }
        }
        if !changed {
            return Some(dist);
        }
        if pass == n {
            return None;
        }
    }
    unreachable!()
}

/// Single-source variant: unreached nodes stay at `+∞`.
fn bellman_ford_from(n: usize, src: usize, arcs: &[(usize, usize, f64)], eps: f64) -> Vec<f64> {
    let mut dist = vec![f64::INFINITY; n];
    dist[src] = 0.0;
    for _ in 0..n {
        for &(f, t, w) in arcs {
            if dist[f].is_finite() && dist[f] + w < dist[t] - eps {
                dist[t] = dist[f] + w;
            }
        }
    }
    dist
}

/// Decodes a flat `raw` sample into a random arc list over `n` nodes with
/// weights quantized to 1/8 in `[lo, hi)`.
fn decode_arcs(n: usize, m: usize, raw: &[f64], lo: f64, hi: f64) -> Vec<(usize, usize, f64)> {
    let mut k = 0usize;
    let mut next = move |raw: &[f64]| {
        let v = raw[k % raw.len()];
        k += 1;
        v
    };
    (0..m)
        .map(|_| {
            let f = ((next(raw) + 2.0) / 4.0 * n as f64) as usize % n;
            let t = ((next(raw) + 2.0) / 4.0 * n as f64) as usize % n;
            let w = q8(lo + (next(raw) + 2.0) / 4.0 * (hi - lo));
            (f, t, w)
        })
        .collect()
}

proptest! {
    /// On random difference-constraint graphs (virtual super-source,
    /// weights of both signs), SPFA and textbook Bellman–Ford agree on
    /// feasibility, and on the exact distance labels when feasible.
    /// Weights are dyadic rationals, so agreement is bit-exact.
    #[test]
    fn spfa_matches_bellman_ford_on_difference_graphs(
        n in 3usize..=8,
        m in 4usize..=20,
        raw in prop::collection::vec(-2.0f64..2.0, 64),
    ) {
        // Bias toward small negative tails: feasible and infeasible systems
        // both occur across the case set.
        let arcs = decode_arcs(n, m, &raw, -0.75, 2.0);
        let mut g = SpfaGraph::new(n);
        for &(f, t, w) in &arcs {
            g.add_arc(f, t, w);
        }
        let eps = 1e-12;
        let reference = bellman_ford_virtual(n, &arcs, eps);
        match (g.run(Source::Virtual, eps), reference) {
            (SpfaResult::Shortest(sp), Some(dist)) => {
                prop_assert_eq!(sp.dist, dist);
            }
            (SpfaResult::NegativeCycle(nc), None) => {
                // The reported cycle must actually close and sum negative.
                prop_assert!(!nc.arcs.is_empty());
                let mut total = 0.0;
                for window in nc.arcs.windows(2) {
                    let (_, t0, _) = g.arc(window[0]);
                    let (f1, _, _) = g.arc(window[1]);
                    prop_assert!(t0 == f1, "cycle arcs do not chain: {} vs {}", t0, f1);
                }
                let (first_from, _, _) = g.arc(nc.arcs[0]);
                let (_, last_to, _) = g.arc(*nc.arcs.last().unwrap());
                prop_assert!(last_to == first_from, "cycle does not close");
                for &id in &nc.arcs {
                    total += g.arc(id).2;
                }
                prop_assert!(total < 0.0, "reported cycle sums to {}", total);
            }
            (SpfaResult::Shortest(_), None) => {
                prop_assert!(false, "SPFA converged but reference found a negative cycle");
            }
            (SpfaResult::NegativeCycle(_), Some(_)) => {
                prop_assert!(false, "SPFA reported a cycle on a feasible system");
            }
        }
    }

    /// Single-source shortest paths on non-negative-weight graphs:
    /// SPFA from `Node(0)` matches Bellman–Ford, including `+∞` labels
    /// on nodes unreachable from the source.
    #[test]
    fn spfa_single_source_matches_bellman_ford(
        n in 3usize..=8,
        m in 3usize..=16,
        raw in prop::collection::vec(-2.0f64..2.0, 64),
    ) {
        let arcs = decode_arcs(n, m, &raw, 0.0, 2.0);
        let mut g = SpfaGraph::new(n);
        for &(f, t, w) in &arcs {
            g.add_arc(f, t, w);
        }
        let eps = 1e-12;
        let sp = g
            .run(Source::Node(0), eps)
            .shortest()
            .expect("non-negative weights admit no negative cycle");
        let reference = bellman_ford_from(n, 0, &arcs, eps);
        prop_assert_eq!(sp.dist, reference);
    }
}
