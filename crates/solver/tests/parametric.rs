//! Property-based tests for the warm-started parametric engine.
//!
//! [`ParametricSystem`] answers feasibility probes by relaxing from
//! whatever potentials the previous probe left behind, and finds optimal
//! parameters by Newton (Dinkelbach) iteration on violated cycles instead
//! of bisection. Both shortcuts must be invisible in the results: a warm
//! probe's verdict has to match a cold [`DifferenceSystem`] solve of the
//! substituted system bit for bit, and the Newton optimum has to agree
//! with the historical bisection search. All instance data is quantized
//! to dyadic rationals so `bound − m·tighten` is exact in f64 and the
//! comparisons need no tolerance (except where bisection's own resolution
//! is the limit).

use proptest::prelude::*;
use rotary_solver::{DifferenceSystem, ParametricSystem};

/// Quantizes to multiples of 1/8 (dyadic, exact in f64).
fn q8(x: f64) -> f64 {
    (x * 8.0).round() / 8.0
}

/// Decodes a flat sample into a difference system over `n` variables plus
/// a parallel tighten vector with entries in `[t_lo, t_hi)`.
fn decode_system(
    n: usize,
    m: usize,
    raw: &[f64],
    b_lo: f64,
    b_hi: f64,
    t_lo: f64,
    t_hi: f64,
) -> (DifferenceSystem, Vec<f64>) {
    let mut k = 0usize;
    let mut next = |raw: &[f64]| {
        let v = raw[k % raw.len()];
        k += 1;
        v
    };
    let mut sys = DifferenceSystem::new(n);
    let mut tighten = Vec::with_capacity(m);
    for _ in 0..m {
        let i = ((next(raw) + 2.0) / 4.0 * n as f64) as usize % n;
        let j = ((next(raw) + 2.0) / 4.0 * n as f64) as usize % n;
        let b = q8(b_lo + (next(raw) + 2.0) / 4.0 * (b_hi - b_lo));
        sys.add(i, j, b);
        tighten.push(q8(t_lo + (next(raw) + 2.0) / 4.0 * (t_hi - t_lo)));
    }
    (sys, tighten)
}

/// The substituted (non-parametric) system at a fixed `m`.
fn substituted(sys: &DifferenceSystem, tighten: &[f64], m: f64) -> DifferenceSystem {
    let mut out = DifferenceSystem::new(sys.num_vars());
    for (c, &t) in sys.constraints().iter().zip(tighten) {
        out.add(c.i, c.j, c.bound - m * t);
    }
    out
}

proptest! {
    /// Across a monotone sequence of probe points, every warm-started
    /// verdict equals the cold solve of the substituted system, the
    /// committed warm potentials satisfy the substituted constraints, and
    /// the canonical [`ParametricSystem::solve_cold`] labels are
    /// bit-identical to [`DifferenceSystem::solve`] — i.e. neither the
    /// warm-start history nor the shared CSR graph changes any answer.
    #[test]
    fn warm_probes_match_cold_solves_on_monotone_sequences(
        n in 3usize..=8,
        m in 4usize..=20,
        raw in prop::collection::vec(-2.0f64..2.0, 96),
    ) {
        // Bounds of both signs; tighten of both signs so the sequence
        // tightens some rows while loosening others.
        let (sys, tighten) = decode_system(n, m, &raw, -0.75, 2.0, -1.0, 1.5);
        let mut par = ParametricSystem::new(&sys, &tighten);
        let mut ms: Vec<f64> = (0..8).map(|k| q8(0.25 * k as f64)).collect();
        // Cover both tightening and loosening orders across the case set.
        if raw[0] > 0.0 {
            ms.reverse();
        }
        for &mv in &ms {
            let cold_sys = substituted(&sys, &tighten, mv);
            let cold = cold_sys.solve();
            let warm = par.probe(mv);
            prop_assert!(
                warm == cold.is_some(),
                "verdict mismatch at m = {}: warm {} vs cold {}",
                mv, warm, cold.is_some()
            );
            if let Some(reference) = cold {
                // The committed warm potentials are a genuine solution of
                // the substituted system (not necessarily the canonical
                // one — that is solve_cold's job).
                prop_assert!(
                    cold_sys.check(par.potentials(), 1e-9),
                    "warm potentials violate the substituted system at m = {}",
                    mv
                );
                // The canonical path is bit-identical to DifferenceSystem.
                // Clone so the probe chain above stays genuinely warm.
                let mut canonical = par.clone();
                let got = canonical.solve_cold(mv).expect("cold solve agrees on feasibility");
                prop_assert_eq!(got, reference);
            }
        }
    }

    /// The Newton exact optimum agrees with the historical bisection
    /// search on base-feasible systems: `|s_newton − s_bisect| < 1e-6`
    /// (bisection resolution is the binding tolerance), and the solution
    /// returned alongside the exact slack satisfies the tightened system.
    #[test]
    fn exact_slack_agrees_with_bisection_cross_check(
        n in 3usize..=8,
        m in 4usize..=20,
        raw in prop::collection::vec(-2.0f64..2.0, 96),
    ) {
        let mut k = 0usize;
        let mut next = |raw: &[f64]| {
            let v = raw[k % raw.len()];
            k += 1;
            v
        };
        // Potential-generated bounds keep the base system feasible by
        // construction: bound = φ_i − φ_j + margin with margin ≥ 0 admits
        // y = φ at m = 0.
        let phi: Vec<f64> = (0..n).map(|_| q8(next(&raw))).collect();
        let mut sys = DifferenceSystem::new(n);
        let mut tighten = Vec::with_capacity(m);
        for _ in 0..m {
            let i = ((next(&raw) + 2.0) / 4.0 * n as f64) as usize % n;
            let j = ((next(&raw) + 2.0) / 4.0 * n as f64) as usize % n;
            let margin = q8((next(&raw) + 2.0) / 4.0 * 1.5);
            sys.add(i, j, phi[i] - phi[j] + margin);
            tighten.push(q8((next(&raw) + 2.0) / 4.0 * 1.5));
        }

        let hi = 4.0;
        let (s_bisect, _, _) = sys.maximize_slack_with_stats(&tighten, hi, 1e-9);
        let mut par = ParametricSystem::new(&sys, &tighten);
        let (s_exact, sol) = par
            .maximize_slack_exact(hi)
            .expect("base-feasible system has a maximal slack");
        prop_assert!(
            (s_exact - s_bisect).abs() < 1e-6,
            "exact {} vs bisection {}",
            s_exact,
            s_bisect
        );
        prop_assert!(
            substituted(&sys, &tighten, s_exact).check(&sol, 1e-9),
            "exact-slack solution violates the tightened system at s = {}",
            s_exact
        );
    }

    /// A delta-rebound engine — [`ParametricSystem::update_bounds`]
    /// patching between solves, as [`SkewContext`] does across Fig. 3
    /// iterations — answers every probe and every exact optimum exactly
    /// like an engine freshly built over the patched system. Deltas flip
    /// sign freely and regularly drive the system across the
    /// feasible → infeasible boundary and back, so the test covers cycle
    /// restoration (failed relaxations must leave the carried fixpoint
    /// intact) as well as the dirty-arc seeding fast path.
    #[test]
    fn delta_rebound_engine_matches_fresh_builds(
        n in 3usize..=8,
        m in 4usize..=20,
        rounds in 1usize..=5,
        raw in prop::collection::vec(-2.0f64..2.0, 192),
    ) {
        let (sys0, tighten) = decode_system(n, m, &raw[..96], -0.5, 2.0, 0.0, 1.5);
        let pairs: Vec<(usize, usize)> =
            sys0.constraints().iter().map(|c| (c.i, c.j)).collect();
        let mut bounds: Vec<f64> = sys0.constraints().iter().map(|c| c.bound).collect();
        let mut warm = ParametricSystem::new(&sys0, &tighten);
        let mut k = 96usize;
        let mut next = |raw: &[f64]| {
            let v = raw[k % raw.len()];
            k += 1;
            v
        };
        for _ in 0..rounds {
            // Patch a random subset of bounds with dyadic deltas of both
            // signs; strongly negative swings create negative cycles that
            // later rounds repair.
            let mut updates = Vec::new();
            for (c, slot) in bounds.iter_mut().enumerate() {
                if next(&raw) > 0.25 {
                    let nb = q8(*slot + q8(next(&raw) * 1.5));
                    *slot = nb;
                    updates.push((c, nb));
                }
            }
            warm.update_bounds(&updates);
            let mut fresh_sys = DifferenceSystem::new(n);
            for (idx, &(i, j)) in pairs.iter().enumerate() {
                fresh_sys.add(i, j, bounds[idx]);
            }
            let mut fresh = ParametricSystem::new(&fresh_sys, &tighten);
            for &mv in &[0.0, 0.5, 1.25] {
                let (w, f) = (warm.probe(mv), fresh.probe(mv));
                prop_assert!(w == f, "probe verdict diverged at m = {}: {} vs {}", mv, w, f);
            }
            match (warm.max_feasible(4.0), fresh.max_feasible(4.0)) {
                (Some(a), Some(b)) => {
                    prop_assert!(a == b, "exact optimum diverged: {} vs {}", a, b);
                    // The canonical labels at the shared optimum are
                    // bit-identical too.
                    let wa = warm.clone().solve_cold(a);
                    let fb = fresh.clone().solve_cold(b);
                    prop_assert_eq!(wa, fb);
                }
                (None, None) => {}
                (a, b) => prop_assert!(
                    false, "feasibility diverged: delta-warm {:?} vs fresh {:?}", a, b
                ),
            }
        }
    }

    /// Seeding the engine with arbitrary finite labels (as the flow does
    /// when it carries potentials across placement iterations) never
    /// changes a verdict or the exact optimum, only the work done.
    #[test]
    fn seeded_engine_matches_fresh_engine(
        n in 3usize..=8,
        m in 4usize..=20,
        raw in prop::collection::vec(-2.0f64..2.0, 96),
    ) {
        let (sys, tighten) = decode_system(n, m, &raw, -0.5, 2.0, 0.0, 1.5);
        let seed: Vec<f64> = (0..n).map(|v| q8(raw[(7 * v + 3) % raw.len()] * 1.5)).collect();

        let mut fresh = ParametricSystem::new(&sys, &tighten);
        let mut seeded = ParametricSystem::new(&sys, &tighten);
        seeded.seed(&seed);

        let fresh_opt = fresh.max_feasible(4.0);
        let seeded_opt = seeded.max_feasible(4.0);
        match (fresh_opt, seeded_opt) {
            (Some(a), Some(b)) => prop_assert_eq!(a, b),
            (None, None) => {}
            (a, b) => prop_assert!(false, "feasibility disagrees: fresh {:?} vs seeded {:?}", a, b),
        }
        for &mv in &[0.0, 0.5, 1.25] {
            prop_assert_eq!(fresh.probe(mv), seeded.probe(mv));
        }
    }
}
