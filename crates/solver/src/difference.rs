//! Difference-constraint systems `y_i − y_j ≤ b_ij`, solved by shortest
//! paths over the constraint graph.
//!
//! This is the graph-based engine behind skew scheduling (\[23\], \[24\] in the
//! paper): the system is feasible iff the constraint graph (arc `j → i`
//! with weight `b_ij` for each constraint) has no negative cycle, and the
//! shortest-path distances from a virtual source form a feasible solution.
//! Binary search on a slack parameter then yields max-slack and minimax
//! schedules without a general LP solve.
//!
//! The shortest-path work itself runs on the shared SPFA kernel in
//! [`crate::graph`] (virtual-source mode), which also serves the flow
//! solvers in [`crate::mcmf`].

use crate::graph::{RelaxOutcome, Source, SpfaGraph, WarmSpfa};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Relaxation tolerance for the constraint-graph shortest paths.
const RELAX_EPS: f64 = 1e-12;

/// One constraint `y_i − y_j ≤ bound`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Constraint {
    /// Left variable `i`.
    pub i: usize,
    /// Right variable `j`.
    pub j: usize,
    /// Upper bound on `y_i − y_j`.
    pub bound: f64,
}

/// A system of difference constraints over `n` variables.
///
/// # Examples
///
/// ```
/// use rotary_solver::DifferenceSystem;
///
/// let mut sys = DifferenceSystem::new(2);
/// sys.add(0, 1, 3.0);  // y0 − y1 ≤ 3
/// sys.add(1, 0, -1.0); // y1 − y0 ≤ −1  ⇔  y0 − y1 ≥ 1
/// let y = sys.solve().expect("feasible");
/// let d = y[0] - y[1];
/// assert!(d <= 3.0 + 1e-9 && d >= 1.0 - 1e-9);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DifferenceSystem {
    n: usize,
    constraints: Vec<Constraint>,
}

impl DifferenceSystem {
    /// Creates an empty system over `n` variables.
    pub fn new(n: usize) -> Self {
        Self { n, constraints: Vec::new() }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.n
    }

    /// The constraints added so far.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Adds `y_i − y_j ≤ bound`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    pub fn add(&mut self, i: usize, j: usize, bound: f64) {
        assert!(i < self.n && j < self.n, "variable out of range");
        self.constraints.push(Constraint { i, j, bound });
    }

    /// Returns a feasible assignment, or `None` if the system has a
    /// negative cycle (is infeasible).
    ///
    /// The returned solution is the shortest-path solution from a virtual
    /// source with zero-weight arcs to every variable — componentwise
    /// maximal among solutions with `y ≤ 0`.
    pub fn solve(&self) -> Option<Vec<f64>> {
        // Arc j → i with weight bound enforces dist[i] ≤ dist[j] + bound;
        // the virtual source starts every node at 0.
        let mut g = SpfaGraph::new(self.n);
        for c in &self.constraints {
            g.add_arc(c.j, c.i, c.bound);
        }
        g.run(Source::Virtual, RELAX_EPS).shortest().map(|sp| sp.dist)
    }

    /// Whether the system admits any solution.
    pub fn is_feasible(&self) -> bool {
        self.solve().is_some()
    }

    /// Checks an assignment against all constraints with tolerance `tol`.
    pub fn check(&self, y: &[f64], tol: f64) -> bool {
        self.constraints.iter().all(|c| y[c.i] - y[c.j] <= c.bound + tol)
    }

    /// Maximizes a scalar slack `s` such that the *parameterized* system
    /// with bounds `bound_k − s·tighten_k` stays feasible, via binary
    /// search over `[0, hi]`. `tighten` must be non-negative and parallel to
    /// the constraints. Returns `(s, solution)`.
    ///
    /// This is exactly the max-slack skew-scheduling search: long- and
    /// short-path constraints tighten by `M` (the slack of eq. (5)-(7) of
    /// the paper), pure-window constraints do not (`tighten = 0`).
    ///
    /// # Panics
    ///
    /// Panics if `tighten.len() != constraints.len()` or the base system
    /// (`s = 0`) is infeasible.
    pub fn maximize_slack(&self, tighten: &[f64], hi: f64, tol: f64) -> (f64, Vec<f64>) {
        let (s, y, _) = self.maximize_slack_with_stats(tighten, hi, tol);
        (s, y)
    }

    /// Like [`Self::maximize_slack`], but also returns the number of
    /// feasibility solves the binary search performed (telemetry).
    ///
    /// # Panics
    ///
    /// Same conditions as [`Self::maximize_slack`].
    pub fn maximize_slack_with_stats(
        &self,
        tighten: &[f64],
        hi: f64,
        tol: f64,
    ) -> (f64, Vec<f64>, usize) {
        assert_eq!(tighten.len(), self.constraints.len());
        let mut solves = 0usize;
        let tightened = |s: f64| -> DifferenceSystem {
            let mut sys = DifferenceSystem::new(self.n);
            for (c, &t) in self.constraints.iter().zip(tighten) {
                sys.add(c.i, c.j, c.bound - s * t);
            }
            sys
        };
        solves += 1;
        let base =
            tightened(0.0).solve().expect("base system must be feasible for slack maximization");
        let (mut lo, mut hi) = (0.0f64, hi.max(0.0));
        // Early exit: maybe hi itself is feasible.
        solves += 1;
        if let Some(sol) = tightened(hi).solve() {
            return (hi, sol, solves);
        }
        let mut best = base;
        while hi - lo > tol {
            let mid = 0.5 * (lo + hi);
            solves += 1;
            match tightened(mid).solve() {
                Some(sol) => {
                    best = sol;
                    lo = mid;
                }
                None => hi = mid,
            }
        }
        (lo, best, solves)
    }
}

/// Newton-iteration cap before [`ParametricSystem`] falls back to plain
/// bisection (floating-point pathologies only; each Newton step jumps to
/// the ratio of a distinct simple cycle, so real instances terminate in a
/// handful of steps).
const NEWTON_CAP: usize = 64;

/// Bisection rounds of the fallback path (matches the resolution of the
/// historical 50-step searches).
const FALLBACK_BISECTIONS: usize = 60;

/// Tighten-sum threshold below which a cycle counts as
/// parameter-independent.
const TIGHTEN_TINY: f64 = 1e-12;

/// Arc-count threshold above which genuinely cold relaxations (zero-label
/// first sweep of a fresh engine, budget-trip restarts) run on the
/// parallel Jacobi kernel instead of the sequential queue.
const PAR_COLD_MIN_ARCS: usize = 16_384;

/// A difference-constraint system with parametric bounds
/// `bound_k − m·tighten_k`, solved by warm-started SPFA over a constraint
/// graph built **once**.
///
/// Where [`DifferenceSystem::maximize_slack_with_stats`] rebuilds the
/// system and re-relaxes from a cold virtual source for every bisection
/// probe, this engine keeps one [`WarmSpfa`] and persistent potentials:
///
/// * [`Self::probe`] re-checks feasibility at a new `m` starting from the
///   previous feasible potentials — after a small tightening only the
///   violated wavefront is re-relaxed;
/// * [`Self::max_feasible`] / [`Self::min_feasible`] solve the minimum
///   cycle-ratio problem *exactly* by Newton (Dinkelbach) iteration on the
///   cycles SPFA detects, instead of dozens of cold bisection probes;
/// * [`Self::solve_cold`] produces the canonical zero-start solution at
///   any `m` — identical to [`DifferenceSystem::solve`] on the tightened
///   system — so results never depend on the warm-start history;
/// * [`Self::seed`] loads potentials carried from an earlier, similar
///   system (e.g. the previous placement iteration of a flow loop).
///
/// Feasibility verdicts are exact regardless of the starting labels: a
/// converged relaxation certifies every constraint, and a violated cycle
/// keeps the queue busy until detection.
///
/// The engine is **delta-aware**: [`Self::update_bounds`] (and the
/// topology-checked [`Self::rebind`]) patch constraint bounds in place
/// while keeping the CSR graph and the previous optimal potentials. As
/// long as the labels were a converged fixpoint, only the arcs whose
/// bounds actually changed can be violated, so the next probe seeds
/// relaxation from just those arcs (Ramalingam–Reps-style affected-region
/// propagation) instead of scanning every arc. On top of that,
/// [`Self::max_feasible`] / [`Self::min_feasible`] re-certify the
/// previously-critical cycle first and pre-scan the mutually-inverse
/// constraint pairs the timing systems are built from: any closed walk's
/// bound/tighten ratio is a valid Newton starting point, so the first
/// probe is usually feasible — and exactly optimal — rather than a long
/// descent from `hi` through wildly infeasible parameters. Hints never
/// decide feasibility; every verdict still comes from relaxation.
#[derive(Debug, Clone)]
pub struct ParametricSystem {
    n: usize,
    constraints: Vec<Constraint>,
    tighten: Vec<f64>,
    engine: WarmSpfa,
    scratch: Vec<f64>,
    solves: usize,
    /// `tighten` is identically zero (weights do not depend on `m`, so a
    /// fixpoint at one parameter is a fixpoint at every parameter).
    tighten_zero: bool,
    /// Mutually-inverse constraint pairs `(a, b)` with `a < b`: arc `b`
    /// runs head-to-tail against arc `a`, so together they close a 2-cycle
    /// (the long/short row pairs of the timing systems).
    inverse_pairs: Vec<(u32, u32)>,
    /// Constraint ids of the cycle that set the last optimum (empty when
    /// the last solve clamped to `hi` or none ran); re-certified first on
    /// the next solve.
    critical: Vec<usize>,
    /// Arcs whose bound changed since the labels last converged.
    dirty: Vec<u32>,
    /// The parameter the current labels converged at (`None`: labels are
    /// not a known fixpoint — fresh, externally seeded, or invalidated).
    fixpoint_m: Option<f64>,
    /// Whether the engine has run its first full relaxation (the only
    /// point where the parallel cold kernel may replace the queue scan).
    cold_done: bool,
    last_delta_arcs: usize,
    affected: usize,
}

impl ParametricSystem {
    /// Builds the engine from a base system and its tightening
    /// coefficients (parallel to the constraints; positive entries tighten
    /// as `m` grows, negative entries loosen, zero entries are
    /// parameter-independent).
    ///
    /// # Panics
    ///
    /// Panics if `tighten.len() != sys.constraints().len()`.
    pub fn new(sys: &DifferenceSystem, tighten: &[f64]) -> Self {
        assert_eq!(tighten.len(), sys.constraints().len(), "tighten not parallel to constraints");
        // Constraint y_i − y_j ≤ b ⇒ arc j → i (same convention as
        // `DifferenceSystem::solve`); arc id == constraint index.
        let arcs: Vec<(usize, usize)> = sys.constraints().iter().map(|c| (c.j, c.i)).collect();
        let mut engine = WarmSpfa::new(sys.num_vars(), &arcs);
        engine.reset_zero();
        let mut by_endpoints: HashMap<(u32, u32), u32> = HashMap::with_capacity(arcs.len());
        let mut inverse_pairs = Vec::new();
        for (id, &(tail, head)) in arcs.iter().enumerate() {
            if let Some(&other) = by_endpoints.get(&(head as u32, tail as u32)) {
                inverse_pairs.push((other, id as u32));
            }
            by_endpoints.entry((tail as u32, head as u32)).or_insert(id as u32);
        }
        Self {
            n: sys.num_vars(),
            constraints: sys.constraints().to_vec(),
            tighten: tighten.to_vec(),
            engine,
            scratch: vec![0.0; sys.num_vars()],
            solves: 0,
            tighten_zero: tighten.iter().all(|&t| t == 0.0),
            inverse_pairs,
            critical: Vec::new(),
            dirty: Vec::new(),
            fixpoint_m: None,
            cold_done: false,
            last_delta_arcs: 0,
            affected: 0,
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.n
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Relaxation rounds run so far (cold or warm; telemetry).
    pub fn solves(&self) -> usize {
        self.solves
    }

    /// How many bounds the most recent [`Self::update_bounds`] /
    /// [`Self::rebind`] actually changed (telemetry).
    pub fn delta_arcs(&self) -> usize {
        self.last_delta_arcs
    }

    /// Total distinct vertices touched by relaxation across all solves so
    /// far (telemetry; callers snapshot and diff across a solve).
    pub fn affected_vertices(&self) -> usize {
        self.affected
    }

    /// The current potentials (the labels of the last successful probe or
    /// cold solve; a feasible assignment for that parameter).
    pub fn potentials(&self) -> &[f64] {
        self.engine.dist()
    }

    /// Seeds the potentials from labels carried over from a related system
    /// (previous flow iteration). Any finite labels are sound — verdicts
    /// stay exact — they only change how much of the graph re-relaxes.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len()` differs from the variable count.
    pub fn seed(&mut self, labels: &[f64]) {
        self.engine.load_dist(labels);
        // External labels are not a known fixpoint of any parameter.
        self.fixpoint_m = None;
        self.dirty.clear();
        self.cold_done = true;
    }

    /// Patches constraint bounds in place, keeping the graph and the
    /// current potentials. Returns how many bounds actually changed.
    /// Changed arcs are remembered so the next probe can seed relaxation
    /// from them alone when the labels are still a known fixpoint.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn update_bounds(&mut self, updates: &[(usize, f64)]) -> usize {
        let mut changed = 0usize;
        for &(k, b) in updates {
            if self.constraints[k].bound != b {
                self.constraints[k].bound = b;
                changed += 1;
                if self.fixpoint_m.is_some() {
                    if self.dirty.len() < self.constraints.len() {
                        self.dirty.push(k as u32);
                    } else {
                        // More pending deltas than arcs: a full scan is
                        // cheaper than replaying them.
                        self.fixpoint_m = None;
                        self.dirty.clear();
                    }
                }
            }
        }
        self.last_delta_arcs = changed;
        changed
    }

    /// Re-targets the engine at a freshly built system with the **same**
    /// variable count, constraint topology, and tighten vector, patching
    /// only the bounds that differ (via [`Self::update_bounds`]). Returns
    /// the number of changed bounds, or `None` when the shape does not
    /// match — the caller then rebuilds from scratch.
    ///
    /// This is the flow-loop entry point: the incremental placer perturbs
    /// every flip-flop's constraint *bounds* between iterations, but the
    /// sequential-pair structure (and hence the graph) is fixed, so the
    /// previous iteration's engine — potentials, critical cycle, inverse
    /// pairs — carries over intact.
    pub fn rebind(&mut self, sys: &DifferenceSystem, tighten: &[f64]) -> Option<usize> {
        if sys.num_vars() != self.n
            || sys.constraints().len() != self.constraints.len()
            || tighten.len() != self.tighten.len()
        {
            return None;
        }
        let same_shape = sys
            .constraints()
            .iter()
            .zip(&self.constraints)
            .zip(tighten.iter().zip(&self.tighten))
            .all(|((c_new, c_old), (&t_new, &t_old))| {
                c_new.i == c_old.i && c_new.j == c_old.j && t_new == t_old
            });
        if !same_shape {
            return None;
        }
        let updates: Vec<(usize, f64)> = sys
            .constraints()
            .iter()
            .enumerate()
            .filter(|(k, c)| c.bound != self.constraints[*k].bound)
            .map(|(k, c)| (k, c.bound))
            .collect();
        Some(self.update_bounds(&updates))
    }

    /// One relaxation round at parameter `m` from the current labels.
    /// `Ok(())` commits the relaxed labels; `Err(cycle)` restores the
    /// pre-round labels and returns the violated cycle's constraint ids.
    ///
    /// The warm round runs under a pop budget: labels near a *marginal*
    /// fixpoint can creep for up to `n` laps before the cycle certificate
    /// fires, Θ(n·arcs) work a zero-label start settles in one sweep. When
    /// the budget trips, the round restarts from zero labels — so a probe
    /// costs at most the budget plus one cold round, while genuinely warm
    /// probes (small violated wavefront) never come near the cap.
    ///
    /// When the labels are a known fixpoint and only the weights of the
    /// [`Self::update_bounds`]-recorded dirty arcs can have changed (same
    /// parameter, or a parameter-independent system), the Θ(arcs)
    /// violation scan is skipped entirely: relaxation seeds from the dirty
    /// arcs alone. Genuinely cold sweeps on large systems run the parallel
    /// Jacobi kernel.
    fn relax_at(&mut self, m: f64) -> Result<(), Vec<usize>> {
        // Probe sharing: converged labels with an empty dirty set are a
        // certificate that *no* arc weight changed since the fixpoint —
        // repeated probes at the same parameter (or any parameter, when
        // the weights are parameter-independent) are answered from the
        // one label pass that established it, zero relaxation work.
        if self.dirty.is_empty() && self.fixpoint_m.is_some_and(|fm| fm == m || self.tighten_zero) {
            return Ok(());
        }
        self.solves += 1;
        self.scratch.copy_from_slice(self.engine.dist());
        let budget = 4 * self.n + self.constraints.len();
        let big = self.constraints.len() >= PAR_COLD_MIN_ARCS;
        // Labels are a fixpoint and non-dirty weights are unchanged at
        // this parameter ⇒ only dirty arcs can seed violations.
        let seedable = self.fixpoint_m.is_some_and(|fm| fm == m || self.tighten_zero);
        let constraints = &self.constraints;
        let tighten = &self.tighten;
        let weight = |id: usize| constraints[id].bound - m * tighten[id];
        let first = if seedable {
            self.engine.relax_seeded(weight, RELAX_EPS, budget, &self.dirty)
        } else if !self.cold_done && big {
            // Fresh engine, all-zero labels: full cold sweep in parallel.
            Some(self.engine.relax_parallel(weight, RELAX_EPS))
        } else {
            self.engine.relax_budgeted(weight, RELAX_EPS, budget)
        };
        let outcome = match first {
            Some(outcome) => outcome,
            None => {
                self.solves += 1;
                self.engine.reset_zero();
                if big {
                    self.engine.relax_parallel(weight, RELAX_EPS)
                } else {
                    self.engine.relax(weight, RELAX_EPS)
                }
            }
        };
        self.cold_done = true;
        self.affected += self.engine.last_affected();
        match outcome {
            RelaxOutcome::Converged => {
                self.dirty.clear();
                self.fixpoint_m = Some(m);
                Ok(())
            }
            RelaxOutcome::NegativeCycle(cycle) => {
                // Restored labels are the previous fixpoint (if any), so
                // the dirty set and fixpoint parameter stay valid as-is.
                self.engine.load_dist(&self.scratch);
                Err(cycle)
            }
        }
    }

    /// Whether the system is feasible at `m`, warm-starting from the
    /// current potentials. On success the potentials move to the fixed
    /// point for `m`; on failure they are left untouched.
    pub fn probe(&mut self, m: f64) -> bool {
        self.relax_at(m).is_ok()
    }

    /// The canonical solution at `m`: relaxation from all-zero labels,
    /// bit-identical to [`DifferenceSystem::solve`] on the tightened
    /// system. `None` if infeasible (previous potentials restored).
    pub fn solve_cold(&mut self, m: f64) -> Option<Vec<f64>> {
        self.solves += 1;
        self.scratch.copy_from_slice(self.engine.dist());
        self.engine.reset_zero();
        let constraints = &self.constraints;
        let tighten = &self.tighten;
        // Always the sequential queue from zero labels: these labels are
        // the canonical solution consumers compare bit-for-bit.
        let outcome = self.engine.relax(|id| constraints[id].bound - m * tighten[id], RELAX_EPS);
        self.cold_done = true;
        self.affected += self.engine.last_affected();
        match outcome {
            RelaxOutcome::Converged => {
                self.dirty.clear();
                self.fixpoint_m = Some(m);
                Some(self.engine.dist().to_vec())
            }
            RelaxOutcome::NegativeCycle(_) => {
                self.engine.load_dist(&self.scratch);
                None
            }
        }
    }

    /// Sums `(Σ bound, Σ tighten)` over a cycle's constraint ids.
    ///
    /// The cycle is rotated to start at its smallest constraint id first:
    /// the extraction entry point depends on the relaxation history (warm
    /// starts walk the predecessor chain from a different vertex), and
    /// floating-point summation is order-sensitive. Canonicalizing the
    /// rotation makes the ratio of a given cycle — and therefore the
    /// Newton iterates — bit-identical regardless of how the engine was
    /// seeded.
    fn cycle_sums(&self, cycle: &[usize]) -> (f64, f64) {
        let start =
            cycle.iter().enumerate().min_by_key(|&(_, &id)| id).map(|(k, _)| k).unwrap_or(0);
        cycle[start..]
            .iter()
            .chain(&cycle[..start])
            .fold((0.0, 0.0), |(b, t), &id| (b + self.constraints[id].bound, t + self.tighten[id]))
    }

    /// The cheapest ratio over the mutually-inverse 2-cycles with positive
    /// tighten sum — a valid [`Self::max_feasible`] Newton start, since
    /// every closed walk's ratio bounds the minimum cycle ratio from
    /// above. Sums run in ascending-id order, matching the canonical
    /// rotation of [`Self::cycle_sums`], so a hint-terminated Newton
    /// returns the bit-identical optimum an extraction-terminated one
    /// would.
    fn two_cycle_upper_hint(&self) -> Option<(f64, Vec<usize>)> {
        let mut best: Option<(f64, (u32, u32))> = None;
        for &(a, b) in &self.inverse_pairs {
            let (ai, bi) = (a as usize, b as usize);
            let t = self.tighten[ai] + self.tighten[bi];
            if t <= TIGHTEN_TINY {
                continue;
            }
            let r = (self.constraints[ai].bound + self.constraints[bi].bound) / t;
            if r < 0.0 || r.is_nan() {
                continue;
            }
            if best.is_none_or(|(br, _)| r < br) {
                best = Some((r, (a, b)));
            }
        }
        best.map(|(r, (a, b))| (r, vec![a as usize, b as usize]))
    }

    /// The largest repair point over the mutually-inverse 2-cycles with
    /// negative tighten sum, capped at `hi` — a valid
    /// [`Self::min_feasible`] Newton start, since every such cycle must be
    /// loosened at least to its own repair point.
    fn two_cycle_lower_hint(&self, hi: f64) -> Option<(f64, Vec<usize>)> {
        let mut best: Option<(f64, (u32, u32))> = None;
        for &(a, b) in &self.inverse_pairs {
            let (ai, bi) = (a as usize, b as usize);
            let t = self.tighten[ai] + self.tighten[bi];
            if t >= -TIGHTEN_TINY {
                continue;
            }
            let r = (self.constraints[ai].bound + self.constraints[bi].bound) / t;
            if r <= 0.0 || r > hi || r.is_nan() {
                continue;
            }
            if best.is_none_or(|(br, _)| r > br) {
                best = Some((r, (a, b)));
            }
        }
        best.map(|(r, (a, b))| (r, vec![a as usize, b as usize]))
    }

    /// The largest `m ∈ [0, hi]` at which the system is feasible — the
    /// minimum cycle ratio `Σbound/Σtighten` over cycles with positive
    /// tighten sum (clamped to `hi`) — found by Newton iteration: an
    /// infeasible probe yields a violated cycle whose ratio becomes the
    /// next (strictly smaller) probe point; a feasible probe is optimal
    /// because its `m` *is* the ratio of an actual cycle. Requires
    /// feasibility to be downward-closed in `m` (all relevant tightens
    /// ≥ 0); returns `None` when even `m = 0` is infeasible.
    ///
    /// On success the potentials are feasible for the returned `m`.
    ///
    /// Newton starts from the smallest known valid upper bound instead of
    /// `hi`: the previously-critical cycle (re-certified under the current
    /// bounds) and the cheapest mutually-inverse 2-cycle both have ratios
    /// ≥ the optimum, so a feasible first probe at such a ratio *is* the
    /// optimum — hints only move the starting point, never decide
    /// feasibility.
    pub fn max_feasible(&mut self, hi: f64) -> Option<f64> {
        let mut m = hi.max(0.0);
        // The cycle whose ratio set the current m (returned as the new
        // critical cycle when the probe at m succeeds).
        let mut setter: Vec<usize> = Vec::new();
        let prev = std::mem::take(&mut self.critical);
        if !prev.is_empty() {
            let (b, t) = self.cycle_sums(&prev);
            if t > TIGHTEN_TINY {
                let r = b / t;
                if r >= 0.0 && r < m {
                    m = r;
                    setter = prev;
                }
            }
        }
        if let Some((r, pair)) = self.two_cycle_upper_hint() {
            if r < m {
                m = r;
                setter = pair;
            }
        }
        for _ in 0..NEWTON_CAP {
            let cycle = match self.relax_at(m) {
                Ok(()) => {
                    self.critical = setter;
                    return Some(m);
                }
                Err(cycle) => cycle,
            };
            let (b, t) = self.cycle_sums(&cycle);
            if t <= TIGHTEN_TINY {
                // The violated cycle does not loosen as m shrinks: with
                // t ≤ 0 and m ≥ 0, b − m·t < 0 forces b < 0, so the cycle
                // is violated at m = 0 too.
                return None;
            }
            let next = b / t;
            if next < 0.0 {
                return None;
            }
            // NaN-safe stall guard: bisect unless the ratio strictly
            // decreased.
            if next >= m || next.is_nan() {
                break;
            }
            m = next;
            setter = cycle;
        }
        // Fallback: plain bisection on [0, m] with warm probes (verdicts
        // are exact; only the Newton jumps misbehaved).
        if !self.probe(0.0) {
            return None;
        }
        let (mut lo, mut hi) = (0.0f64, m);
        for _ in 0..FALLBACK_BISECTIONS {
            let mid = 0.5 * (lo + hi);
            if self.probe(mid) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        // Leave the potentials feasible for the returned parameter.
        self.probe(lo);
        Some(lo)
    }

    /// The smallest `m ∈ [0, hi]` at which the system is feasible, for
    /// parametrizations where growing `m` *loosens* (negative tightens on
    /// the binding rows — e.g. the clock-period search, where every
    /// long-path bound grows with the period). Newton iteration in the
    /// increasing direction: a violated cycle with negative tighten sum
    /// yields the exact `m` at which it stops being violated. Returns
    /// `None` if some violated cycle cannot be loosened (infeasible at any
    /// `m`, e.g. a negative short-path-only cycle) or the answer exceeds
    /// `hi`.
    pub fn min_feasible(&mut self, hi: f64) -> Option<f64> {
        let mut m = 0.0f64;
        // Ascend from the largest known valid lower bound: every cycle
        // with negative tighten sum must be repaired, so its repair point
        // `b/t` is ≤ the optimum. Hints that exceed `hi` are skipped (not
        // concluded infeasible — that verdict stays with relaxation).
        let mut setter: Vec<usize> = Vec::new();
        let prev = std::mem::take(&mut self.critical);
        if !prev.is_empty() {
            let (b, t) = self.cycle_sums(&prev);
            if t < -TIGHTEN_TINY {
                let r = b / t;
                if r > m && r <= hi {
                    m = r;
                    setter = prev;
                }
            }
        }
        if let Some((r, pair)) = self.two_cycle_lower_hint(hi) {
            if r > m {
                m = r;
                setter = pair;
            }
        }
        for _ in 0..NEWTON_CAP {
            let cycle = match self.relax_at(m) {
                Ok(()) => {
                    self.critical = setter;
                    return Some(m);
                }
                Err(cycle) => cycle,
            };
            let (b, t) = self.cycle_sums(&cycle);
            if t >= -TIGHTEN_TINY {
                // Growing m cannot repair this cycle.
                return None;
            }
            let next = b / t; // > m: b − m·t < 0 with t < 0 ⇒ b/t > m
            if next > hi {
                return None;
            }
            // NaN-safe stall guard: bisect unless the ratio strictly
            // increased.
            if next <= m || next.is_nan() {
                break;
            }
            m = next;
            setter = cycle;
        }
        if !self.probe(hi) {
            return None;
        }
        let (mut lo, mut hi) = (m, hi);
        for _ in 0..FALLBACK_BISECTIONS {
            let mid = 0.5 * (lo + hi);
            if self.probe(mid) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        self.probe(hi);
        Some(hi)
    }

    /// Exact max-slack solve: [`Self::max_feasible`] followed by the
    /// canonical cold solve at the optimum. Returns `(m*, solution)`;
    /// `None` when the base system (`m = 0`) is infeasible.
    pub fn maximize_slack_exact(&mut self, hi: f64) -> Option<(f64, Vec<f64>)> {
        let m = self.max_feasible(hi)?;
        let sol = self.solve_cold(m).expect("max_feasible returned a feasible parameter");
        Some((m, sol))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feasible_chain() {
        let mut sys = DifferenceSystem::new(3);
        sys.add(1, 0, 2.0);
        sys.add(2, 1, 2.0);
        sys.add(0, 2, -3.0); // y0 − y2 ≤ −3 ⇒ y2 ≥ y0 + 3
        let y = sys.solve().expect("feasible");
        assert!(sys.check(&y, 1e-9));
    }

    #[test]
    fn negative_cycle_detected() {
        let mut sys = DifferenceSystem::new(2);
        sys.add(0, 1, 1.0);
        sys.add(1, 0, -2.0); // sum of bounds around cycle −1 < 0
        assert!(!sys.is_feasible());
    }

    #[test]
    fn zero_cycle_feasible() {
        let mut sys = DifferenceSystem::new(2);
        sys.add(0, 1, 1.0);
        sys.add(1, 0, -1.0);
        let y = sys.solve().expect("tight but feasible");
        assert!((y[0] - y[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_system_trivially_feasible() {
        let sys = DifferenceSystem::new(5);
        let y = sys.solve().expect("no constraints");
        assert_eq!(y, vec![0.0; 5]);
    }

    #[test]
    fn check_rejects_violation() {
        let mut sys = DifferenceSystem::new(2);
        sys.add(0, 1, 1.0);
        assert!(!sys.check(&[5.0, 0.0], 1e-9));
        assert!(sys.check(&[0.5, 0.0], 1e-9));
    }

    #[test]
    fn maximize_slack_finds_the_margin() {
        // y0 − y1 ≤ 4 − s and y1 − y0 ≤ −1 − s·0: slack limited by the pair
        // needing y0 − y1 ≥ 1, so max s with 4 − s ≥ 1 is s = 3.
        let mut sys = DifferenceSystem::new(2);
        sys.add(0, 1, 4.0);
        sys.add(1, 0, -1.0);
        let (s, y) = sys.maximize_slack(&[1.0, 0.0], 10.0, 1e-9);
        assert!((s - 3.0).abs() < 1e-6, "s = {s}");
        assert!(y[0] - y[1] >= 1.0 - 1e-6);
    }

    #[test]
    fn maximize_slack_symmetric_tightening() {
        // Window of width 4 shared between two constraints each tightening
        // by s: 4 − 2s ≥ 0 ⇒ s = 2.
        let mut sys = DifferenceSystem::new(2);
        sys.add(0, 1, 2.0);
        sys.add(1, 0, 2.0);
        let (s, _) = sys.maximize_slack(&[1.0, 1.0], 100.0, 1e-9);
        assert!((s - 2.0).abs() < 1e-6, "s = {s}");
    }

    #[test]
    fn maximize_slack_unbounded_clamps_to_hi() {
        let mut sys = DifferenceSystem::new(2);
        sys.add(0, 1, 5.0);
        let (s, _) = sys.maximize_slack(&[0.0], 7.5, 1e-9);
        assert_eq!(s, 7.5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_variable() {
        let mut sys = DifferenceSystem::new(1);
        sys.add(0, 3, 1.0);
    }

    #[test]
    fn parametric_probe_matches_cold_solves() {
        let mut sys = DifferenceSystem::new(2);
        sys.add(0, 1, 4.0);
        sys.add(1, 0, -1.0);
        let tighten = [1.0, 0.0];
        let mut par = ParametricSystem::new(&sys, &tighten);
        for &m in &[0.0, 1.0, 2.5, 3.0] {
            assert!(par.probe(m), "m = {m} tightens 4 − m ≥ 1: feasible");
        }
        assert!(!par.probe(3.5), "4 − 3.5 < 1: infeasible");
        // Failed probe must not corrupt the committed potentials.
        let y = par.potentials().to_vec();
        let mut tight = DifferenceSystem::new(2);
        tight.add(0, 1, 4.0 - 3.0);
        tight.add(1, 0, -1.0);
        assert!(tight.check(&y, 1e-9), "potentials stay feasible for the last good m");
    }

    #[test]
    fn parametric_newton_finds_exact_ratio() {
        // Max slack limited by cycle (0,1): (4 + (−1)) − s(1 + 0) ≥ 0 ⇒ 3.
        let mut sys = DifferenceSystem::new(2);
        sys.add(0, 1, 4.0);
        sys.add(1, 0, -1.0);
        let mut par = ParametricSystem::new(&sys, &[1.0, 0.0]);
        let (s, y) = par.maximize_slack_exact(10.0).expect("base feasible");
        assert!((s - 3.0).abs() < 1e-12, "Newton is exact, s = {s}");
        assert!(y[0] - y[1] >= 1.0 - 1e-9);
        // 2 Newton probes (10 → 3) + 1 canonical cold solve.
        assert!(par.solves() <= 4, "solves = {}", par.solves());
    }

    #[test]
    fn parametric_clamps_to_hi() {
        let mut sys = DifferenceSystem::new(2);
        sys.add(0, 1, 5.0);
        let mut par = ParametricSystem::new(&sys, &[0.0]);
        assert_eq!(par.max_feasible(7.5), Some(7.5));
    }

    #[test]
    fn parametric_infeasible_base_reports_none() {
        let mut sys = DifferenceSystem::new(2);
        sys.add(0, 1, 1.0);
        sys.add(1, 0, -2.0);
        let mut par = ParametricSystem::new(&sys, &[1.0, 1.0]);
        assert_eq!(par.max_feasible(5.0), None);
    }

    #[test]
    fn parametric_min_feasible_loosens_to_the_exact_threshold() {
        // Cycle weight (1 − 2) + m·1 ≥ 0 ⇔ m ≥ 1 (tighten −1 loosens row 0).
        let mut sys = DifferenceSystem::new(2);
        sys.add(0, 1, 1.0);
        sys.add(1, 0, -2.0);
        let mut par = ParametricSystem::new(&sys, &[-1.0, 0.0]);
        let m = par.min_feasible(100.0).expect("loosenable");
        assert!((m - 1.0).abs() < 1e-12, "m = {m}");
        // A system that no amount of loosening repairs.
        let mut par2 = ParametricSystem::new(&sys, &[0.0, 0.0]);
        assert_eq!(par2.min_feasible(100.0), None);
    }

    #[test]
    fn parametric_solve_cold_is_canonical() {
        let mut sys = DifferenceSystem::new(3);
        sys.add(1, 0, 2.0);
        sys.add(2, 1, 2.0);
        sys.add(0, 2, -3.0);
        let mut par = ParametricSystem::new(&sys, &[1.0, 1.0, 0.0]);
        // Drive the warm state somewhere else first.
        assert!(par.probe(0.25));
        let cold = par.solve_cold(0.0).expect("feasible");
        assert_eq!(cold, sys.solve().expect("feasible"), "bit-identical to DifferenceSystem");
    }

    #[test]
    fn update_bounds_counts_real_changes_and_stays_exact() {
        let mut sys = DifferenceSystem::new(2);
        sys.add(0, 1, 4.0);
        sys.add(1, 0, -1.0);
        let mut par = ParametricSystem::new(&sys, &[1.0, 0.0]);
        assert_eq!(par.maximize_slack_exact(10.0).map(|(m, _)| m), Some(3.0));
        // One bound unchanged, one loosened: only one delta arc.
        assert_eq!(par.update_bounds(&[(0, 6.0), (1, -1.0)]), 1);
        assert_eq!(par.delta_arcs(), 1);
        let (m, y) = par.maximize_slack_exact(10.0).expect("still feasible");
        assert_eq!(m, 5.0, "cycle ratio (6 − 1) / 1");
        // Byte-identical to a fresh engine over the patched system.
        let mut sys2 = DifferenceSystem::new(2);
        sys2.add(0, 1, 6.0);
        sys2.add(1, 0, -1.0);
        let mut fresh = ParametricSystem::new(&sys2, &[1.0, 0.0]);
        let (mf, yf) = fresh.maximize_slack_exact(10.0).expect("feasible");
        assert_eq!((m, y), (mf, yf));
    }

    #[test]
    fn rebind_patches_matching_shape_and_rejects_mismatch() {
        let mut sys = DifferenceSystem::new(3);
        sys.add(0, 1, 2.0);
        sys.add(1, 0, 1.0);
        sys.add(2, 0, 5.0);
        let tighten = [1.0, 1.0, 0.0];
        let mut par = ParametricSystem::new(&sys, &tighten);
        par.maximize_slack_exact(50.0).expect("feasible");

        let mut sys2 = DifferenceSystem::new(3);
        sys2.add(0, 1, 2.5);
        sys2.add(1, 0, 1.0);
        sys2.add(2, 0, 4.0);
        assert_eq!(par.rebind(&sys2, &tighten), Some(2), "two bounds changed");
        let (m, y) = par.maximize_slack_exact(50.0).expect("feasible");
        let mut fresh = ParametricSystem::new(&sys2, &tighten);
        assert_eq!(fresh.maximize_slack_exact(50.0), Some((m, y)));

        // Different topology or tighten: no rebind.
        let mut sys3 = DifferenceSystem::new(3);
        sys3.add(0, 1, 2.5);
        sys3.add(1, 0, 1.0);
        sys3.add(0, 2, 4.0);
        assert_eq!(par.rebind(&sys3, &tighten), None);
        assert_eq!(par.rebind(&sys2, &[1.0, 1.0, 1.0]), None);
    }

    #[test]
    fn warm_resolve_reuses_critical_cycle_in_one_probe() {
        // Timing-like paired rows: the critical 2-cycle persists across a
        // bound perturbation, so the warm re-solve needs exactly one
        // feasible probe (plus the canonical cold solve).
        let mut sys = DifferenceSystem::new(4);
        sys.add(0, 1, 4.0);
        sys.add(1, 0, -1.0);
        sys.add(2, 3, 9.0);
        sys.add(3, 2, -2.0);
        let tighten = [1.0; 4];
        let mut par = ParametricSystem::new(&sys, &tighten);
        let (m0, _) = par.maximize_slack_exact(100.0).expect("feasible");
        assert_eq!(m0, 1.5, "cycle (0,1): (4 − 1)/2");
        let before = par.solves();
        par.update_bounds(&[(0, 4.2), (2, 8.8)]);
        let (m1, _) = par.maximize_slack_exact(100.0).expect("feasible");
        assert_eq!(m1, 1.6, "cycle (0,1): (4.2 − 1)/2");
        assert_eq!(par.solves() - before, 2, "one warm probe + one cold solve");
    }

    #[test]
    fn delta_probe_equivalence_through_feasibility_flip() {
        // m-independent system probed at 0: delta-seeded warm probes must
        // agree with fresh engines as bounds swing feasible → infeasible
        // → feasible.
        let mut sys = DifferenceSystem::new(2);
        sys.add(0, 1, 1.0);
        sys.add(1, 0, -0.5);
        let tighten = [0.0, 0.0];
        let mut par = ParametricSystem::new(&sys, &tighten);
        assert!(par.probe(0.0));
        for &(b0, b1) in &[(1.0, -1.5), (0.3, -0.5), (2.0, -2.0), (0.7, -0.7)] {
            par.update_bounds(&[(0, b0), (1, b1)]);
            let mut fresh = DifferenceSystem::new(2);
            fresh.add(0, 1, b0);
            fresh.add(1, 0, b1);
            assert_eq!(par.probe(0.0), fresh.is_feasible(), "bounds ({b0}, {b1})");
        }
    }

    #[test]
    fn parametric_exact_agrees_with_bisection_cross_check() {
        // Two competing cycles with different ratios; tighten on all rows.
        let mut sys = DifferenceSystem::new(3);
        sys.add(0, 1, 2.0);
        sys.add(1, 0, 1.0);
        sys.add(1, 2, 5.0);
        sys.add(2, 1, -1.0);
        let tighten = [1.0, 1.0, 1.0, 1.0];
        let (s_bisect, _, _) = sys.maximize_slack_with_stats(&tighten, 50.0, 1e-9);
        let mut par = ParametricSystem::new(&sys, &tighten);
        let (s_exact, _) = par.maximize_slack_exact(50.0).expect("feasible");
        assert!((s_exact - s_bisect).abs() < 1e-6, "exact {s_exact} vs bisection {s_bisect}");
        assert!((s_exact - 1.5).abs() < 1e-12, "cycle (0,1): (2+1)/2");
    }
}
