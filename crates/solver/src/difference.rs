//! Difference-constraint systems `y_i − y_j ≤ b_ij`, solved by shortest
//! paths over the constraint graph.
//!
//! This is the graph-based engine behind skew scheduling (\[23\], \[24\] in the
//! paper): the system is feasible iff the constraint graph (arc `j → i`
//! with weight `b_ij` for each constraint) has no negative cycle, and the
//! shortest-path distances from a virtual source form a feasible solution.
//! Binary search on a slack parameter then yields max-slack and minimax
//! schedules without a general LP solve.
//!
//! The shortest-path work itself runs on the shared SPFA kernel in
//! [`crate::graph`] (virtual-source mode), which also serves the flow
//! solvers in [`crate::mcmf`].

use crate::graph::{Source, SpfaGraph};
use serde::{Deserialize, Serialize};

/// Relaxation tolerance for the constraint-graph shortest paths.
const RELAX_EPS: f64 = 1e-12;

/// One constraint `y_i − y_j ≤ bound`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Constraint {
    /// Left variable `i`.
    pub i: usize,
    /// Right variable `j`.
    pub j: usize,
    /// Upper bound on `y_i − y_j`.
    pub bound: f64,
}

/// A system of difference constraints over `n` variables.
///
/// # Examples
///
/// ```
/// use rotary_solver::DifferenceSystem;
///
/// let mut sys = DifferenceSystem::new(2);
/// sys.add(0, 1, 3.0);  // y0 − y1 ≤ 3
/// sys.add(1, 0, -1.0); // y1 − y0 ≤ −1  ⇔  y0 − y1 ≥ 1
/// let y = sys.solve().expect("feasible");
/// let d = y[0] - y[1];
/// assert!(d <= 3.0 + 1e-9 && d >= 1.0 - 1e-9);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DifferenceSystem {
    n: usize,
    constraints: Vec<Constraint>,
}

impl DifferenceSystem {
    /// Creates an empty system over `n` variables.
    pub fn new(n: usize) -> Self {
        Self { n, constraints: Vec::new() }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.n
    }

    /// The constraints added so far.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Adds `y_i − y_j ≤ bound`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    pub fn add(&mut self, i: usize, j: usize, bound: f64) {
        assert!(i < self.n && j < self.n, "variable out of range");
        self.constraints.push(Constraint { i, j, bound });
    }

    /// Returns a feasible assignment, or `None` if the system has a
    /// negative cycle (is infeasible).
    ///
    /// The returned solution is the shortest-path solution from a virtual
    /// source with zero-weight arcs to every variable — componentwise
    /// maximal among solutions with `y ≤ 0`.
    pub fn solve(&self) -> Option<Vec<f64>> {
        // Arc j → i with weight bound enforces dist[i] ≤ dist[j] + bound;
        // the virtual source starts every node at 0.
        let mut g = SpfaGraph::new(self.n);
        for c in &self.constraints {
            g.add_arc(c.j, c.i, c.bound);
        }
        g.run(Source::Virtual, RELAX_EPS).shortest().map(|sp| sp.dist)
    }

    /// Whether the system admits any solution.
    pub fn is_feasible(&self) -> bool {
        self.solve().is_some()
    }

    /// Checks an assignment against all constraints with tolerance `tol`.
    pub fn check(&self, y: &[f64], tol: f64) -> bool {
        self.constraints.iter().all(|c| y[c.i] - y[c.j] <= c.bound + tol)
    }

    /// Maximizes a scalar slack `s` such that the *parameterized* system
    /// with bounds `bound_k − s·tighten_k` stays feasible, via binary
    /// search over `[0, hi]`. `tighten` must be non-negative and parallel to
    /// the constraints. Returns `(s, solution)`.
    ///
    /// This is exactly the max-slack skew-scheduling search: long- and
    /// short-path constraints tighten by `M` (the slack of eq. (5)-(7) of
    /// the paper), pure-window constraints do not (`tighten = 0`).
    ///
    /// # Panics
    ///
    /// Panics if `tighten.len() != constraints.len()` or the base system
    /// (`s = 0`) is infeasible.
    pub fn maximize_slack(&self, tighten: &[f64], hi: f64, tol: f64) -> (f64, Vec<f64>) {
        let (s, y, _) = self.maximize_slack_with_stats(tighten, hi, tol);
        (s, y)
    }

    /// Like [`Self::maximize_slack`], but also returns the number of
    /// feasibility solves the binary search performed (telemetry).
    ///
    /// # Panics
    ///
    /// Same conditions as [`Self::maximize_slack`].
    pub fn maximize_slack_with_stats(
        &self,
        tighten: &[f64],
        hi: f64,
        tol: f64,
    ) -> (f64, Vec<f64>, usize) {
        assert_eq!(tighten.len(), self.constraints.len());
        let mut solves = 0usize;
        let tightened = |s: f64| -> DifferenceSystem {
            let mut sys = DifferenceSystem::new(self.n);
            for (c, &t) in self.constraints.iter().zip(tighten) {
                sys.add(c.i, c.j, c.bound - s * t);
            }
            sys
        };
        solves += 1;
        let base =
            tightened(0.0).solve().expect("base system must be feasible for slack maximization");
        let (mut lo, mut hi) = (0.0f64, hi.max(0.0));
        // Early exit: maybe hi itself is feasible.
        solves += 1;
        if let Some(sol) = tightened(hi).solve() {
            return (hi, sol, solves);
        }
        let mut best = base;
        while hi - lo > tol {
            let mid = 0.5 * (lo + hi);
            solves += 1;
            match tightened(mid).solve() {
                Some(sol) => {
                    best = sol;
                    lo = mid;
                }
                None => hi = mid,
            }
        }
        (lo, best, solves)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feasible_chain() {
        let mut sys = DifferenceSystem::new(3);
        sys.add(1, 0, 2.0);
        sys.add(2, 1, 2.0);
        sys.add(0, 2, -3.0); // y0 − y2 ≤ −3 ⇒ y2 ≥ y0 + 3
        let y = sys.solve().expect("feasible");
        assert!(sys.check(&y, 1e-9));
    }

    #[test]
    fn negative_cycle_detected() {
        let mut sys = DifferenceSystem::new(2);
        sys.add(0, 1, 1.0);
        sys.add(1, 0, -2.0); // sum of bounds around cycle −1 < 0
        assert!(!sys.is_feasible());
    }

    #[test]
    fn zero_cycle_feasible() {
        let mut sys = DifferenceSystem::new(2);
        sys.add(0, 1, 1.0);
        sys.add(1, 0, -1.0);
        let y = sys.solve().expect("tight but feasible");
        assert!((y[0] - y[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_system_trivially_feasible() {
        let sys = DifferenceSystem::new(5);
        let y = sys.solve().expect("no constraints");
        assert_eq!(y, vec![0.0; 5]);
    }

    #[test]
    fn check_rejects_violation() {
        let mut sys = DifferenceSystem::new(2);
        sys.add(0, 1, 1.0);
        assert!(!sys.check(&[5.0, 0.0], 1e-9));
        assert!(sys.check(&[0.5, 0.0], 1e-9));
    }

    #[test]
    fn maximize_slack_finds_the_margin() {
        // y0 − y1 ≤ 4 − s and y1 − y0 ≤ −1 − s·0: slack limited by the pair
        // needing y0 − y1 ≥ 1, so max s with 4 − s ≥ 1 is s = 3.
        let mut sys = DifferenceSystem::new(2);
        sys.add(0, 1, 4.0);
        sys.add(1, 0, -1.0);
        let (s, y) = sys.maximize_slack(&[1.0, 0.0], 10.0, 1e-9);
        assert!((s - 3.0).abs() < 1e-6, "s = {s}");
        assert!(y[0] - y[1] >= 1.0 - 1e-6);
    }

    #[test]
    fn maximize_slack_symmetric_tightening() {
        // Window of width 4 shared between two constraints each tightening
        // by s: 4 − 2s ≥ 0 ⇒ s = 2.
        let mut sys = DifferenceSystem::new(2);
        sys.add(0, 1, 2.0);
        sys.add(1, 0, 2.0);
        let (s, _) = sys.maximize_slack(&[1.0, 1.0], 100.0, 1e-9);
        assert!((s - 2.0).abs() < 1e-6, "s = {s}");
    }

    #[test]
    fn maximize_slack_unbounded_clamps_to_hi() {
        let mut sys = DifferenceSystem::new(2);
        sys.add(0, 1, 5.0);
        let (s, _) = sys.maximize_slack(&[0.0], 7.5, 1e-9);
        assert_eq!(s, 7.5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_variable() {
        let mut sys = DifferenceSystem::new(1);
        sys.add(0, 3, 1.0);
    }
}
