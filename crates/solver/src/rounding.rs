//! Greedy rounding of a fractional assignment (paper Fig. 5).
//!
//! Given the LP-relaxation solution `x_ij` of an assignment problem
//! (each item `i` fractionally spread over choices `j`), produce a 0/1
//! solution: keep already-integral rows, otherwise pick the choice with
//! the largest fractional value. Feasibility of the assignment constraints
//! (`Σ_j x_ij = 1`) is preserved by construction; the procedure is linear
//! in the number of nonzero fractions.

/// Rounds a fractional assignment to an integral one.
///
/// `fractions[i]` lists the candidate choices of item `i` as
/// `(choice, value)` pairs (values from the LP relaxation, in `[0, 1]`).
/// Returns the chosen `choice` per item — the `argmax` rule of Fig. 5
/// ("find j_max such that x_ij_max ≥ x_ij ∀j; set x_ij_max = 1").
///
/// Ties are broken toward the smaller choice index, making the procedure
/// deterministic.
///
/// # Panics
///
/// Panics if any item has an empty candidate list.
///
/// # Examples
///
/// ```
/// use rotary_solver::greedy_round;
///
/// let fractions = vec![
///     vec![(0, 1.0)],                 // already integral: kept (step 1.1)
///     vec![(0, 0.4), (2, 0.6)],       // fractional: argmax (step 1.2)
/// ];
/// assert_eq!(greedy_round(&fractions), vec![0, 2]);
/// ```
pub fn greedy_round(fractions: &[Vec<(usize, f64)>]) -> Vec<usize> {
    fractions
        .iter()
        .enumerate()
        .map(|(i, cands)| {
            assert!(!cands.is_empty(), "item {i} has no candidates");
            // Step 1.1: an (almost) integral x_ij stays put.
            if let Some(&(j, _)) = cands.iter().find(|&&(_, v)| v >= 1.0 - 1e-9) {
                return j;
            }
            // Step 1.2: greedy argmax.
            let mut best = cands[0];
            for &(j, v) in &cands[1..] {
                if v > best.1 + 1e-15 || (v >= best.1 - 1e-15 && j < best.0) {
                    best = (j, v);
                }
            }
            best.0
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integral_rows_are_kept() {
        let f = vec![vec![(3, 0.0), (5, 1.0)]];
        assert_eq!(greedy_round(&f), vec![5]);
    }

    #[test]
    fn fractional_rows_take_argmax() {
        let f = vec![vec![(0, 0.2), (1, 0.5), (2, 0.3)]];
        assert_eq!(greedy_round(&f), vec![1]);
    }

    #[test]
    fn ties_break_to_smaller_index() {
        let f = vec![vec![(7, 0.5), (2, 0.5)]];
        assert_eq!(greedy_round(&f), vec![2]);
    }

    #[test]
    fn every_item_gets_exactly_one_choice() {
        let f: Vec<Vec<(usize, f64)>> = (0..50)
            .map(|i| (0..4).map(|j| (j, ((i * 31 + j * 17) % 10) as f64 / 10.0)).collect())
            .collect();
        let r = greedy_round(&f);
        assert_eq!(r.len(), 50);
        for (i, &j) in r.iter().enumerate() {
            assert!(f[i].iter().any(|&(c, _)| c == j));
        }
    }

    #[test]
    #[should_panic(expected = "no candidates")]
    fn empty_candidate_list_panics() {
        let _ = greedy_round(&[vec![]]);
    }

    #[test]
    fn near_one_counts_as_integral() {
        let f = vec![vec![(1, 1.0 - 1e-12), (0, 0.9)]];
        // 1−1e-12 ≥ 1−1e-9 is false... it IS ≥; the integral branch fires.
        assert_eq!(greedy_round(&f), vec![1]);
    }
}
