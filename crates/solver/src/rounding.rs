//! Greedy rounding of a fractional assignment (paper Fig. 5).
//!
//! Given the LP-relaxation solution `x_ij` of an assignment problem
//! (each item `i` fractionally spread over choices `j`), produce a 0/1
//! solution. Two procedures:
//!
//! * [`greedy_round`] — the literal Fig. 5 rule: keep already-integral
//!   rows, otherwise pick the choice with the largest fractional value.
//!   Linear in the number of nonzero fractions; load-oblivious.
//! * [`greedy_round_loaded`] — the load-aware variant used for the
//!   min-max-capacitance objective (eq. 3): rows are fixed in decreasing
//!   max-fraction order (the global argmax order of Fig. 5), per-ring
//!   loads are maintained **incrementally** in a lazy max-heap, and each
//!   row picks — among its LP-supported candidates — the choice that
//!   least increases the peak load. [`greedy_round_loaded_rescan`] is the
//!   semantically identical quadratic reference that recomputes every
//!   load from scratch at each step; the two are equivalence-tested and
//!   benchmarked against each other.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Fractions at least this close to 1 count as integral (step 1.1).
const INTEGRAL: f64 = 1.0 - 1e-9;
/// A candidate is "LP-supported" for the load-aware rule when its fraction
/// is within this slack of the row maximum (and nonzero): the rounder may
/// deviate from the plain argmax only toward choices the relaxation itself
/// put comparable weight on. Kept tight — wider slacks let the rounder
/// wander onto weakly-supported arcs, which lowers the assignment-time
/// peak marginally but degrades the downstream schedule quality the LP
/// fractions encode.
const PLAUSIBLE_SLACK: f64 = 0.25;
/// Fractions at or below this carry no LP support.
const SUPPORT_EPS: f64 = 1e-6;

/// Rounds a fractional assignment to an integral one.
///
/// `fractions[i]` lists the candidate choices of item `i` as
/// `(choice, value)` pairs (values from the LP relaxation, in `[0, 1]`).
/// Returns the chosen `choice` per item — the `argmax` rule of Fig. 5
/// ("find j_max such that x_ij_max ≥ x_ij ∀j; set x_ij_max = 1").
///
/// Ties are broken toward the smaller choice index, making the procedure
/// deterministic.
///
/// # Panics
///
/// Panics if any item has an empty candidate list.
///
/// # Examples
///
/// ```
/// use rotary_solver::greedy_round;
///
/// let fractions = vec![
///     vec![(0, 1.0)],                 // already integral: kept (step 1.1)
///     vec![(0, 0.4), (2, 0.6)],       // fractional: argmax (step 1.2)
/// ];
/// assert_eq!(greedy_round(&fractions), vec![0, 2]);
/// ```
pub fn greedy_round(fractions: &[Vec<(usize, f64)>]) -> Vec<usize> {
    fractions
        .iter()
        .enumerate()
        .map(|(i, cands)| {
            assert!(!cands.is_empty(), "item {i} has no candidates");
            // Step 1.1: an (almost) integral x_ij stays put.
            if let Some(&(j, _)) = cands.iter().find(|&&(_, v)| v >= INTEGRAL) {
                return j;
            }
            // Step 1.2: greedy argmax.
            argmax(cands).0
        })
        .collect()
}

/// The plain argmax rule: largest fraction, ties toward the smaller
/// choice index. Returns `(choice, position-in-candidate-list)`.
fn argmax(cands: &[(usize, f64)]) -> (usize, usize) {
    let mut best = 0usize;
    for (k, &(j, v)) in cands.iter().enumerate().skip(1) {
        let (bj, bv) = cands[best];
        let _ = bj;
        if v > bv + 1e-15 || (v >= bv - 1e-15 && j < cands[best].0) {
            best = k;
        }
    }
    (cands[best].0, best)
}

/// One candidate of a row for the load-aware rounders:
/// `(choice index, LP fraction, load the choice adds to that ring)`.
pub type LoadedCandidate = (usize, f64, f64);

/// `f64` ordered by `total_cmp` so loads can live in a [`BinaryHeap`].
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);
impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Per-ring loads plus a lazily-pruned max-heap over them, so the current
/// peak is an `O(log)` query as rows are fixed one at a time — the
/// incremental replacement for rescanning every ring per step.
struct RingLoads {
    load: Vec<f64>,
    heap: BinaryHeap<(OrdF64, Reverse<usize>)>,
}

impl RingLoads {
    fn new(n: usize) -> Self {
        Self { load: vec![0.0; n], heap: BinaryHeap::new() }
    }

    fn add(&mut self, j: usize, c: f64) {
        debug_assert!(c >= 0.0, "ring loads must be non-negative");
        self.load[j] += c;
        self.heap.push((OrdF64(self.load[j]), Reverse(j)));
    }

    /// Current maximum ring load (0.0 when nothing is loaded yet). Stale
    /// heap entries (superseded by a later `add` to the same ring) are
    /// discarded lazily.
    fn peak(&mut self) -> f64 {
        while let Some(&(OrdF64(v), Reverse(j))) = self.heap.peek() {
            if v == self.load[j] {
                return v;
            }
            self.heap.pop();
        }
        0.0
    }
}

/// Load-aware greedy rounding, incremental version.
///
/// `rows[i]` lists item `i`'s candidates as `(choice, fraction, load)`
/// with non-negative loads; `n_choices` is the number of rings. Semantics
/// (shared bit-for-bit with [`greedy_round_loaded_rescan`]):
///
/// 1. Rows with an (almost) integral fraction are kept as-is and their
///    loads committed, in row order (Fig. 5 step 1.1).
/// 2. The remaining rows are fixed in decreasing max-fraction order (ties
///    toward the smaller row index) — the order the global argmax of
///    Fig. 5 would visit them. For each row, among the LP-supported
///    candidates (fraction within [`PLAUSIBLE_SLACK`] of the row maximum),
///    pick the one whose commitment least increases the peak ring load;
///    ties prefer the larger fraction, then the smaller choice index.
///
/// Rule 2 degenerates to the plain argmax whenever the LP is confident
/// (one dominant fraction per row) and otherwise steers the unavoidable
/// rounding error away from the most loaded rings — directly the quantity
/// the min-max objective measures.
///
/// # Panics
///
/// Panics if any row has an empty candidate list or references a choice
/// `≥ n_choices`.
pub fn greedy_round_loaded(rows: &[Vec<LoadedCandidate>], n_choices: usize) -> Vec<usize> {
    let mut choice = vec![usize::MAX; rows.len()];
    let mut loads = RingLoads::new(n_choices);

    for (i, cands) in rows.iter().enumerate() {
        assert!(!cands.is_empty(), "item {i} has no candidates");
        if let Some(&(j, _, c)) = cands.iter().find(|&&(_, v, _)| v >= INTEGRAL) {
            choice[i] = j;
            loads.add(j, c);
        }
    }

    for (i, _) in fractional_order(rows, &choice) {
        let peak = loads.peak();
        let (j, c) = pick_loaded(&rows[i], &loads.load, peak);
        choice[i] = j;
        loads.add(j, c);
    }
    choice
}

/// Load-aware greedy rounding, quadratic reference: identical decision
/// rule to [`greedy_round_loaded`], but every step replays the chronology
/// of already-fixed rows to rebuild all ring loads and rescans them for
/// the peak. Kept as the equivalence-test / benchmark baseline.
pub fn greedy_round_loaded_rescan(rows: &[Vec<LoadedCandidate>], n_choices: usize) -> Vec<usize> {
    let mut choice = vec![usize::MAX; rows.len()];
    // Chronological log of committed (ring, load) — replayed in order so
    // the floating-point sums match the incremental version bit for bit.
    let mut log: Vec<(usize, f64)> = Vec::new();

    for (i, cands) in rows.iter().enumerate() {
        assert!(!cands.is_empty(), "item {i} has no candidates");
        if let Some(&(j, _, c)) = cands.iter().find(|&&(_, v, _)| v >= INTEGRAL) {
            choice[i] = j;
            log.push((j, c));
        }
    }

    for (i, _) in fractional_order(rows, &choice) {
        // Full rescan: rebuild loads and peak from the log.
        let mut load = vec![0.0; n_choices];
        for &(j, c) in &log {
            load[j] += c;
        }
        let peak = load.iter().fold(0.0f64, |a, &b| a.max(b));
        let (j, c) = pick_loaded(&rows[i], &load, peak);
        choice[i] = j;
        log.push((j, c));
    }
    choice
}

/// Fractional rows in decreasing max-fraction order, ties toward the
/// smaller row index.
fn fractional_order(rows: &[Vec<LoadedCandidate>], choice: &[usize]) -> Vec<(usize, f64)> {
    let mut order: Vec<(usize, f64)> = rows
        .iter()
        .enumerate()
        .filter(|&(i, _)| choice[i] == usize::MAX)
        .map(|(i, cands)| (i, cands.iter().fold(0.0f64, |a, &(_, v, _)| a.max(v))))
        .collect();
    order.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    order
}

/// The shared row decision: among LP-supported candidates, least peak
/// increase, then larger fraction, then smaller choice index. Falls back
/// to the plain argmax if no candidate clears the support threshold.
fn pick_loaded(cands: &[LoadedCandidate], load: &[f64], peak: f64) -> (usize, f64) {
    let vmax = cands.iter().fold(0.0f64, |a, &(_, v, _)| a.max(v));
    let mut best: Option<(f64, f64, usize, f64)> = None; // (peak_after, v, j, c)
    for &(j, v, c) in cands {
        if v < vmax - PLAUSIBLE_SLACK || v <= SUPPORT_EPS {
            continue;
        }
        let after = (load[j] + c).max(peak);
        let better = match best {
            None => true,
            Some((bp, bv, bj, _)) => after < bp || (after == bp && (v > bv || (v == bv && j < bj))),
        };
        if better {
            best = Some((after, v, j, c));
        }
    }
    match best {
        Some((_, _, j, c)) => (j, c),
        None => {
            // No LP support anywhere (degenerate row): plain argmax.
            let flat: Vec<(usize, f64)> = cands.iter().map(|&(j, v, _)| (j, v)).collect();
            let (j, k) = argmax(&flat);
            (j, cands[k].2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integral_rows_are_kept() {
        let f = vec![vec![(3, 0.0), (5, 1.0)]];
        assert_eq!(greedy_round(&f), vec![5]);
    }

    #[test]
    fn fractional_rows_take_argmax() {
        let f = vec![vec![(0, 0.2), (1, 0.5), (2, 0.3)]];
        assert_eq!(greedy_round(&f), vec![1]);
    }

    #[test]
    fn ties_break_to_smaller_index() {
        let f = vec![vec![(7, 0.5), (2, 0.5)]];
        assert_eq!(greedy_round(&f), vec![2]);
    }

    #[test]
    fn every_item_gets_exactly_one_choice() {
        let f: Vec<Vec<(usize, f64)>> = (0..50)
            .map(|i| (0..4).map(|j| (j, ((i * 31 + j * 17) % 10) as f64 / 10.0)).collect())
            .collect();
        let r = greedy_round(&f);
        assert_eq!(r.len(), 50);
        for (i, &j) in r.iter().enumerate() {
            assert!(f[i].iter().any(|&(c, _)| c == j));
        }
    }

    #[test]
    #[should_panic(expected = "no candidates")]
    fn empty_candidate_list_panics() {
        let _ = greedy_round(&[vec![]]);
    }

    #[test]
    fn near_one_counts_as_integral() {
        let f = vec![vec![(1, 1.0 - 1e-12), (0, 0.9)]];
        // 1−1e-12 ≥ 1−1e-9 is false... it IS ≥; the integral branch fires.
        assert_eq!(greedy_round(&f), vec![1]);
    }

    #[test]
    fn loaded_follows_argmax_when_lp_is_confident() {
        // Dominant fractions: the load-aware rule must not deviate.
        let rows = vec![vec![(0, 0.9, 5.0), (1, 0.1, 1.0)], vec![(1, 0.85, 4.0), (2, 0.15, 0.5)]];
        assert_eq!(greedy_round_loaded(&rows, 3), vec![0, 1]);
    }

    #[test]
    fn loaded_steers_near_ties_away_from_the_peak() {
        // Row 0 commits ring 0 to load 10. Row 1 splits 0.55/0.45; argmax
        // would pile onto ring 0 (peak 20), the load-aware rule takes the
        // supported alternative (peak stays 10).
        let rows = vec![vec![(0, 1.0, 10.0)], vec![(0, 0.55, 10.0), (1, 0.45, 3.0)]];
        assert_eq!(greedy_round_loaded(&rows, 2), vec![0, 1]);
        // The plain rule demonstrates the gap.
        let flat: Vec<Vec<(usize, f64)>> =
            rows.iter().map(|r| r.iter().map(|&(j, v, _)| (j, v)).collect()).collect();
        assert_eq!(greedy_round(&flat), vec![0, 0]);
    }

    #[test]
    fn loaded_ignores_unsupported_candidates() {
        // Ring 1 would give a lower peak but has zero LP weight: not taken.
        let rows =
            vec![vec![(0, 1.0, 8.0)], vec![(0, 1.0, 8.0)], vec![(0, 0.97, 8.0), (1, 0.03, 0.1)]];
        assert_eq!(greedy_round_loaded(&rows, 2), vec![0, 0, 0]);
    }

    #[test]
    fn incremental_matches_rescan_reference() {
        // Deterministic pseudo-random instances; dyadic fractions/loads so
        // the comparison is exact by construction (sums replay in the same
        // chronological order in both versions anyway).
        for seed in 0..8u64 {
            let mut state = seed.wrapping_mul(0x2545_F491_4F6C_DD1D) | 1;
            let mut next = move |m: u64| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state % m
            };
            let n_rings = 6;
            let rows: Vec<Vec<LoadedCandidate>> = (0..40)
                .map(|_| {
                    let k = 2 + next(3) as usize;
                    let mut cands: Vec<LoadedCandidate> = (0..k)
                        .map(|_| {
                            (
                                next(n_rings as u64) as usize,
                                next(256) as f64 / 256.0,
                                next(64) as f64 / 16.0,
                            )
                        })
                        .collect();
                    cands.dedup_by_key(|c| c.0);
                    cands
                })
                .collect();
            assert_eq!(
                greedy_round_loaded(&rows, n_rings),
                greedy_round_loaded_rescan(&rows, n_rings),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn loaded_peak_never_worse_than_plain_argmax() {
        for seed in 0..8u64 {
            let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            let mut next = move |m: u64| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state % m
            };
            let n_rings = 5;
            let rows: Vec<Vec<LoadedCandidate>> = (0..30)
                .map(|i| {
                    (0..3)
                        .map(|k| {
                            let j = (i + k) % n_rings;
                            (j, next(256) as f64 / 256.0, 1.0 + next(64) as f64 / 8.0)
                        })
                        .collect()
                })
                .collect();
            let peak_of = |choice: &[usize]| {
                let mut load = vec![0.0f64; n_rings];
                for (i, &j) in choice.iter().enumerate() {
                    let &(_, _, c) = rows[i].iter().find(|&&(r, _, _)| r == j).unwrap();
                    load[j] += c;
                }
                load.iter().fold(0.0f64, |a, &b| a.max(b))
            };
            let flat: Vec<Vec<(usize, f64)>> =
                rows.iter().map(|r| r.iter().map(|&(j, v, _)| (j, v)).collect()).collect();
            let plain: Vec<usize> = greedy_round(&flat);
            let loaded = greedy_round_loaded(&rows, n_rings);
            assert!(
                peak_of(&loaded) <= peak_of(&plain) + 1e-12,
                "seed {seed}: loaded {} vs plain {}",
                peak_of(&loaded),
                peak_of(&plain)
            );
        }
    }
}
