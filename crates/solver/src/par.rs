//! Deterministic scoped-thread fan-out for embarrassingly parallel work.
//!
//! [`par_map`] splits an index range into contiguous chunks, one per
//! worker, and each worker writes results directly into its own slice of
//! the output buffer — so the result vector is *identical* to the
//! sequential `(0..n).map(f).collect()` regardless of how many threads run
//! or how they interleave. The flow's determinism guarantee (same circuit,
//! same seed ⇒ bit-identical outcome) therefore survives parallelization.
//!
//! The output is written through `MaybeUninit` slots (no `Vec<Option<T>>`
//! staging buffer, no per-slot unwrap pass): each chunk owns a disjoint
//! `&mut [MaybeUninit<T>]` and initializes every slot exactly once, after
//! which the buffer is reinterpreted as `Vec<T>` in place.
//!
//! Small inputs stay sequential: spawning threads for a handful of items
//! costs more than it saves. The thresholds live in [`ParConfig`] so
//! callers with very different per-item costs (a tap solve vs. a single
//! reduced-cost dot product) can each pick a profitable cutover.

use std::mem::{ManuallyDrop, MaybeUninit};
use std::num::NonZeroUsize;
use std::sync::OnceLock;
use std::thread;

/// Fan-out thresholds for [`par_map_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParConfig {
    /// Inputs below this size run sequentially.
    pub min_parallel: usize,
    /// Upper bound on worker threads. The default follows the machine
    /// ([`default_max_threads`]); override per call site, or fleet-wide
    /// through the `ROTARY_THREADS` environment variable.
    pub max_threads: usize,
}

impl Default for ParConfig {
    fn default() -> Self {
        Self { min_parallel: 64, max_threads: default_max_threads() }
    }
}

/// The default worker-thread cap: `ROTARY_THREADS` when set to a positive
/// integer, otherwise [`thread::available_parallelism`]. Read once and
/// cached for the process lifetime.
///
/// Determinism does not depend on this value: every parallel kernel in
/// this crate commits chunked results position-stably (and the bucketed
/// Dijkstra re-checks candidates sequentially in batch order), so the
/// output is bit-identical for any thread count ≥ 1.
pub fn default_max_threads() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        if let Some(v) = std::env::var_os("ROTARY_THREADS") {
            if let Some(n) = v.to_str().and_then(|s| s.trim().parse::<usize>().ok()) {
                if n >= 1 {
                    return n;
                }
            }
        }
        thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
    })
}

impl ParConfig {
    /// Thresholds for cheap per-item work (a few flops each, e.g. the
    /// simplex pricing scan): only fan out when the scan is large enough
    /// that chunking beats the thread-spawn cost.
    pub fn fine_grained() -> Self {
        Self { min_parallel: 16_384, ..Self::default() }
    }

    /// Worker count for an input of `n` items (1 = run sequentially).
    pub fn workers(&self, n: usize) -> usize {
        if n < self.min_parallel {
            return 1;
        }
        thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
            .min(self.max_threads)
            .min(n.max(1))
    }
}

/// Maps `f` over `0..n` with the default [`ParConfig`], returning the same
/// vector as `(0..n).map(f).collect()` — deterministically, independent of
/// thread count and scheduling.
pub fn par_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    par_map_with(&ParConfig::default(), n, f)
}

/// [`par_map`] with explicit thresholds.
pub fn par_map_with<T, F>(cfg: &ParConfig, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = cfg.workers(n);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }

    let mut out: Vec<MaybeUninit<T>> = Vec::with_capacity(n);
    out.resize_with(n, MaybeUninit::uninit);
    let chunk = n.div_ceil(workers);
    thread::scope(|s| {
        for (w, slice) in out.chunks_mut(chunk).enumerate() {
            let f = &f;
            s.spawn(move || {
                let base = w * chunk;
                for (k, slot) in slice.iter_mut().enumerate() {
                    slot.write(f(base + k));
                }
            });
        }
    });
    // SAFETY: the chunks partition `out`, every worker initialized each
    // slot of its chunk exactly once, and `thread::scope` joined all
    // workers before returning (a worker panic propagates out of the scope
    // above, in which case `out` is dropped as `MaybeUninit` — leaking the
    // written elements, never reading uninitialized ones).
    // `MaybeUninit<T>` is layout-compatible with `T`.
    unsafe {
        let mut out = ManuallyDrop::new(out);
        Vec::from_raw_parts(out.as_mut_ptr().cast::<T>(), n, out.capacity())
    }
}

/// Maps `f` over contiguous `chunk`-sized index ranges covering `0..len`,
/// returning one result per range in range order — the chunked flavor of
/// [`par_map_with`] for reductions and gathers over large flat arrays
/// (e.g. the circulation backends' residual-slot scans). Determinism is
/// inherited: the ranges partition `0..len` identically for any thread
/// count, and results commit position-stably.
///
/// The parallel threshold is applied to `len` (the underlying item count),
/// not the range count, so callers keep one `min_parallel` meaning across
/// both flavors.
///
/// # Panics
///
/// Panics if `chunk` is zero.
pub fn par_chunk_map<T, F>(cfg: &ParConfig, len: usize, chunk: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(std::ops::Range<usize>) -> T + Sync,
{
    assert!(chunk > 0, "chunk size must be positive");
    let ranges = len.div_ceil(chunk);
    let inner = ParConfig { min_parallel: cfg.min_parallel.div_ceil(chunk).max(1), ..*cfg };
    par_map_with(&inner, ranges, |c| f(c * chunk..((c + 1) * chunk).min(len)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn matches_sequential_map_above_threshold() {
        let n = ParConfig::default().min_parallel * 3 + 7;
        let expect: Vec<usize> = (0..n).map(|i| i * i + 1).collect();
        assert_eq!(par_map(n, |i| i * i + 1), expect);
    }

    #[test]
    fn small_and_empty_inputs() {
        assert_eq!(par_map(0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map(3, |i| i + 10), vec![10, 11, 12]);
    }

    #[test]
    fn calls_f_exactly_once_per_index() {
        let n = ParConfig::default().min_parallel * 2;
        let calls = AtomicUsize::new(0);
        let out = par_map(n, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), n);
        assert_eq!(out, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn drop_types_survive_the_uninit_path() {
        // Heap-owning results exercise the MaybeUninit → Vec<T> handoff.
        let n = ParConfig::default().min_parallel * 2 + 1;
        let out = par_map(n, |i| vec![i; 3]);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(v, &vec![i; 3]);
        }
    }

    #[test]
    fn default_cap_follows_machine_or_env() {
        assert!(default_max_threads() >= 1);
        assert_eq!(ParConfig::default().max_threads, default_max_threads());
    }

    #[test]
    fn chunked_map_partitions_exactly() {
        let cfg = ParConfig::default();
        let len = cfg.min_parallel * 5 + 13;
        let sums = par_chunk_map(&cfg, len, 64, |r| r.sum::<usize>());
        assert_eq!(sums.len(), len.div_ceil(64));
        assert_eq!(sums.iter().sum::<usize>(), (0..len).sum::<usize>());
        // Each range's sum matches the sequential computation.
        for (c, &s) in sums.iter().enumerate() {
            assert_eq!(s, (c * 64..((c + 1) * 64).min(len)).sum::<usize>());
        }
        assert_eq!(par_chunk_map(&cfg, 0, 64, |r| r.len()), Vec::<usize>::new());
    }

    #[test]
    fn custom_config_thresholds() {
        let cfg = ParConfig { min_parallel: 4, max_threads: 2 };
        assert_eq!(par_map_with(&cfg, 10, |i| i * 2), (0..10).map(|i| i * 2).collect::<Vec<_>>());
        assert_eq!(cfg.workers(3), 1);
        assert!(cfg.workers(10) <= 2);
        assert!(ParConfig::fine_grained().min_parallel > ParConfig::default().min_parallel);
    }
}
