//! LP-based branch & bound for 0/1 integer programs.
//!
//! This is the stand-in for the paper's "public domain ILP solver" \[26\]
//! (GLPK) in the Table I comparison: a *generic* solver, run with a wall
//! clock budget, reporting the best incumbent found within the budget —
//! exactly the experimental protocol of Section VI ("we bounded the
//! simulation time for the ILP solver … and report the best solution that
//! it produced within this time"; for the larger circuits it produced no
//! feasible solution at all).

use crate::lp::{LpProblem, LpStatus, RowKind};
use std::time::{Duration, Instant};

/// Result of a branch & bound run.
#[derive(Debug, Clone, PartialEq)]
pub struct IlpOutcome {
    /// Best integral solution found (values of all structural variables),
    /// if any.
    pub best: Option<Vec<f64>>,
    /// Objective of `best`.
    pub best_objective: Option<f64>,
    /// Global lower bound proven when the run ended.
    pub lower_bound: f64,
    /// Nodes whose LP relaxation was solved.
    pub nodes_explored: usize,
    /// Whether the time budget expired before the tree was exhausted.
    pub timed_out: bool,
}

/// Branch & bound driver over an [`LpProblem`] whose listed variables must
/// be 0/1 integral.
///
/// # Examples
///
/// ```
/// use rotary_solver::ilp::BranchAndBound;
/// use rotary_solver::lp::{LpProblem, RowKind};
/// use std::time::Duration;
///
/// // Knapsack-ish: max 5a + 4b + 3c (min the negation), a+b+c ≤ 2 binary.
/// let mut lp = LpProblem::minimize(vec![-5.0, -4.0, -3.0]);
/// lp.add_row(RowKind::Le, 2.0, &[(0, 1.0), (1, 1.0), (2, 1.0)]);
/// for j in 0..3 { lp.add_row(RowKind::Le, 1.0, &[(j, 1.0)]); }
/// let out = BranchAndBound::new(lp, vec![0, 1, 2])
///     .with_budget(Duration::from_secs(5))
///     .run();
/// assert_eq!(out.best_objective, Some(-9.0)); // a and b
/// ```
#[derive(Debug)]
pub struct BranchAndBound {
    base: LpProblem,
    binaries: Vec<usize>,
    budget: Duration,
    max_nodes: usize,
    tolerance: f64,
}

#[derive(Debug)]
struct Node {
    bound: f64,
    fixed: Vec<(usize, bool)>,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound
    }
}
impl Eq for Node {}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap: explore the *smallest* bound first (best-first for a
        // minimization problem).
        other.bound.partial_cmp(&self.bound).unwrap_or(std::cmp::Ordering::Equal)
    }
}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl BranchAndBound {
    /// Creates a solver for `problem` with the given binary variables.
    pub fn new(problem: LpProblem, binaries: Vec<usize>) -> Self {
        Self {
            base: problem,
            binaries,
            budget: Duration::from_secs(60),
            max_nodes: usize::MAX,
            tolerance: 1e-6,
        }
    }

    /// Sets the wall-clock budget (default 60 s).
    pub fn with_budget(mut self, budget: Duration) -> Self {
        self.budget = budget;
        self
    }

    /// Caps the number of explored nodes.
    pub fn with_max_nodes(mut self, n: usize) -> Self {
        self.max_nodes = n;
        self
    }

    /// Runs depth-first branch & bound with *diving*: at each node the
    /// child that rounds the branching variable toward its LP value is
    /// explored first, so integral incumbents are found early (the
    /// standard generic-MIP strategy); bound-based pruning then trims the
    /// remaining tree.
    pub fn run(&self) -> IlpOutcome {
        let start = Instant::now();
        let mut stack: Vec<Node> = vec![Node { bound: f64::NEG_INFINITY, fixed: Vec::new() }];
        let mut best: Option<Vec<f64>> = None;
        let mut best_obj = f64::INFINITY;
        let mut nodes = 0usize;
        let mut timed_out = false;
        let mut open_bound = f64::NEG_INFINITY;

        while let Some(node) = stack.pop() {
            if node.bound >= best_obj - self.tolerance {
                continue; // pruned
            }
            if start.elapsed() > self.budget || nodes >= self.max_nodes {
                timed_out = true;
                open_bound = stack.iter().map(|n| n.bound).fold(node.bound, f64::min);
                break;
            }
            nodes += 1;

            let mut lp = self.base.clone();
            for &(j, one) in &node.fixed {
                if one {
                    lp.add_row(RowKind::Ge, 1.0, &[(j, 1.0)]);
                } else {
                    lp.add_row(RowKind::Le, 0.0, &[(j, 1.0)]);
                }
            }
            let sol = lp.solve();
            match sol.status {
                LpStatus::Infeasible => continue,
                LpStatus::Unbounded => continue, // cannot bound; give up branch
                // A numerically broken relaxation gives no usable bound:
                // prune the node rather than trust a garbage objective.
                LpStatus::NumericalBreakdown => continue,
                LpStatus::Optimal | LpStatus::IterationLimit => {}
            }
            if sol.objective >= best_obj - self.tolerance {
                continue;
            }
            // Most fractional binary.
            let mut branch_var = None;
            let mut frac_dist = self.tolerance;
            for &j in &self.binaries {
                let v = sol.x[j];
                let d = (v - v.round()).abs();
                if d > frac_dist {
                    frac_dist = d;
                    branch_var = Some(j);
                }
            }
            match branch_var {
                None => {
                    // Integral: new incumbent.
                    if sol.objective < best_obj {
                        best_obj = sol.objective;
                        best = Some(sol.x);
                    }
                }
                Some(j) => {
                    // Dive toward the LP's preference: push the less-likely
                    // child first so the rounded direction is popped first.
                    let prefer_one = sol.x[j] >= 0.5;
                    for one in [!prefer_one, prefer_one] {
                        let mut fixed = node.fixed.clone();
                        fixed.push((j, one));
                        stack.push(Node { bound: sol.objective, fixed });
                    }
                }
            }
        }
        let lower_bound = if timed_out {
            open_bound
        } else if best.is_some() {
            best_obj
        } else {
            f64::INFINITY
        };
        IlpOutcome {
            best_objective: best.as_ref().map(|_| best_obj),
            best,
            lower_bound,
            nodes_explored: nodes,
            timed_out,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_small_binary_knapsack() {
        // max 5a+4b+3c s.t. 2a+3b+c ≤ 4, binary ⇒ a=1,c=1 (value 8).
        let mut lp = LpProblem::minimize(vec![-5.0, -4.0, -3.0]);
        lp.add_row(RowKind::Le, 4.0, &[(0, 2.0), (1, 3.0), (2, 1.0)]);
        for j in 0..3 {
            lp.add_row(RowKind::Le, 1.0, &[(j, 1.0)]);
        }
        let out = BranchAndBound::new(lp, vec![0, 1, 2]).run();
        let obj = out.best_objective.expect("objective");
        assert!((obj - (-8.0)).abs() < 1e-6, "objective {obj}");
        let x = out.best.expect("solution");
        assert!((x[0] - 1.0).abs() < 1e-6 && (x[2] - 1.0).abs() < 1e-6);
        assert!(!out.timed_out);
    }

    #[test]
    fn min_max_assignment_ilp() {
        // 2 items, 2 bins, caps C = [[3,1],[1,3]], minimize max bin load.
        // LP relaxation gives 2 (split); ILP must put each item in its
        // cheap bin: max load 1.
        let mut lp = LpProblem::minimize(vec![0.0, 0.0, 0.0, 0.0, 1.0]);
        lp.add_row(RowKind::Eq, 1.0, &[(0, 1.0), (1, 1.0)]);
        lp.add_row(RowKind::Eq, 1.0, &[(2, 1.0), (3, 1.0)]);
        lp.add_row(RowKind::Le, 0.0, &[(0, 3.0), (2, 1.0), (4, -1.0)]);
        lp.add_row(RowKind::Le, 0.0, &[(1, 1.0), (3, 3.0), (4, -1.0)]);
        let out = BranchAndBound::new(lp, vec![0, 1, 2, 3]).run();
        let obj = out.best_objective.expect("solved");
        assert!((obj - 1.0).abs() < 1e-6, "obj {obj}");
    }

    #[test]
    fn timeout_reports_partial_result() {
        // An intentionally large symmetric instance with a zero budget:
        // should time out immediately with no incumbent.
        let n = 12;
        let mut obj = vec![0.0; n * n];
        for (k, o) in obj.iter_mut().enumerate() {
            *o = ((k * 7919) % 13) as f64 + 1.0;
        }
        let mut lp = LpProblem::minimize(obj);
        for i in 0..n {
            let row: Vec<_> = (0..n).map(|j| (i * n + j, 1.0)).collect();
            lp.add_row(RowKind::Eq, 1.0, &row);
        }
        let out = BranchAndBound::new(lp, (0..n * n).collect())
            .with_budget(Duration::from_millis(0))
            .run();
        assert!(out.timed_out);
        assert!(out.best.is_none());
        assert_eq!(out.nodes_explored, 0);
    }

    #[test]
    fn node_cap_limits_search() {
        // Fractional root LP (x = (1, 0.5)) forces branching; a cap of one
        // node stops the search before any child is explored.
        let mut lp = LpProblem::minimize(vec![-1.0, -1.0]);
        lp.add_row(RowKind::Le, 3.0, &[(0, 2.0), (1, 2.0)]);
        for j in 0..2 {
            lp.add_row(RowKind::Le, 1.0, &[(j, 1.0)]);
        }
        let out = BranchAndBound::new(lp, vec![0, 1]).with_max_nodes(1).run();
        assert!(out.timed_out);
        assert_eq!(out.nodes_explored, 1);
    }

    #[test]
    fn infeasible_ilp_returns_none() {
        let mut lp = LpProblem::minimize(vec![1.0]);
        lp.add_row(RowKind::Ge, 2.0, &[(0, 1.0)]);
        lp.add_row(RowKind::Le, 1.0, &[(0, 1.0)]);
        let out = BranchAndBound::new(lp, vec![0]).run();
        assert!(out.best.is_none());
        assert!(!out.timed_out);
    }
}
