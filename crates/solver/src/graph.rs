//! Shared shortest-path / negative-cycle kernel.
//!
//! One SPFA (queue-based Bellman–Ford) implementation with amortized
//! negative-cycle detection replaces the divergent Bellman–Ford loops that
//! used to live in [`crate::difference`] (feasibility of difference
//! constraints and the binary-search slack tightening built on it),
//! [`crate::mcmf`] (potentials initialization, cycle canceling, optimal
//! potentials), and — through those — the skew scheduler in `rotary-core`.
//!
//! The kernel supports two source modes:
//!
//! * [`Source::Virtual`] — every node starts at distance 0, as if a
//!   virtual super-source had a zero-weight arc to each node. This is the
//!   difference-constraint / circulation setting.
//! * [`Source::Node`] — classic single-source shortest paths; unreachable
//!   nodes keep distance `+∞`.
//!
//! Negative-cycle detection is amortized: each node tracks the arc count
//! of its current tree path; when that reaches `n`, the path must revisit
//! a node, so walking the predecessor chain `n` steps lands inside a
//! negative cycle which is then extracted arc-by-arc. Consumers that
//! cancel cycles (min-cost circulation) map the returned arc ids back to
//! their own arcs via insertion order.
//!
//! Adjacency is stored as a [`CsrMatrix`] built once per [`SpfaGraph::run`]
//! from the arc list (entry slots map back to arc ids through the CSR
//! permutation), so the scan over a node's out-arcs is two contiguous
//! slices.

use crate::sparse::CsrMatrix;
use std::collections::VecDeque;

/// Where shortest paths start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// Virtual super-source: all nodes start at distance 0.
    Virtual,
    /// Single source node; all other nodes start at `+∞`.
    Node(usize),
}

/// Shortest-path tree produced by a converged [`SpfaGraph::run`].
#[derive(Debug, Clone)]
pub struct ShortestPaths {
    /// Distance per node (`+∞` for nodes unreachable from the source).
    pub dist: Vec<f64>,
    /// Predecessor arc id per node (`None` for sources / unreached nodes).
    pub pred: Vec<Option<u32>>,
}

/// A negative cycle found during relaxation.
#[derive(Debug, Clone)]
pub struct NegativeCycle {
    /// Arc ids around the cycle, in forward (head-to-tail) order.
    pub arcs: Vec<usize>,
    /// Distance labels at the moment of detection — not shortest-path
    /// distances (those do not exist), but a consistent partial relaxation
    /// useful as approximate potentials.
    pub dist: Vec<f64>,
}

/// Outcome of a [`SpfaGraph::run`].
#[derive(Debug, Clone)]
pub enum SpfaResult {
    /// Relaxation converged; shortest paths exist.
    Shortest(ShortestPaths),
    /// A negative cycle was detected.
    NegativeCycle(NegativeCycle),
}

impl SpfaResult {
    /// The shortest paths, or `None` if a negative cycle was found.
    pub fn shortest(self) -> Option<ShortestPaths> {
        match self {
            SpfaResult::Shortest(sp) => Some(sp),
            SpfaResult::NegativeCycle(_) => None,
        }
    }

    /// The distance labels regardless of outcome (exact on convergence,
    /// the partial relaxation snapshot on a negative cycle).
    pub fn into_dist(self) -> Vec<f64> {
        match self {
            SpfaResult::Shortest(sp) => sp.dist,
            SpfaResult::NegativeCycle(nc) => nc.dist,
        }
    }
}

/// A directed graph with `f64` arc weights for SPFA shortest paths.
///
/// # Examples
///
/// ```
/// use rotary_solver::graph::{Source, SpfaGraph, SpfaResult};
///
/// let mut g = SpfaGraph::new(3);
/// g.add_arc(0, 1, 2.0);
/// g.add_arc(1, 2, -1.0);
/// g.add_arc(0, 2, 5.0);
/// let sp = g.run(Source::Node(0), 1e-12).shortest().expect("no cycle");
/// assert_eq!(sp.dist, vec![0.0, 2.0, 1.0]);
///
/// g.add_arc(2, 1, -1.0); // 1 → 2 → 1 sums to −2: negative cycle
/// assert!(matches!(g.run(Source::Node(0), 1e-12), SpfaResult::NegativeCycle(_)));
/// ```
#[derive(Debug, Clone)]
pub struct SpfaGraph {
    n: usize,
    arcs: Vec<(u32, u32, f64)>,
}

impl SpfaGraph {
    /// Creates a graph with `n` nodes and no arcs.
    pub fn new(n: usize) -> Self {
        Self { n, arcs: Vec::new() }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of arcs.
    pub fn num_arcs(&self) -> usize {
        self.arcs.len()
    }

    /// Adds an arc `from → to` with the given weight; returns its id
    /// (sequential, by insertion order).
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn add_arc(&mut self, from: usize, to: usize, weight: f64) -> usize {
        assert!(from < self.n && to < self.n, "arc ({from}, {to}) out of range");
        self.arcs.push((from as u32, to as u32, weight));
        self.arcs.len() - 1
    }

    /// The `(from, to, weight)` of arc `id`.
    pub fn arc(&self, id: usize) -> (usize, usize, f64) {
        let (f, t, w) = self.arcs[id];
        (f as usize, t as usize, w)
    }

    /// Runs SPFA from `source`. An arc relaxes only when it improves the
    /// head's distance by more than `eps` (the tolerance consumers used in
    /// their hand-rolled loops: `1e-12` for difference constraints, `1e-9`
    /// / `1e-7` for flow potentials and cycle canceling).
    pub fn run(&self, source: Source, eps: f64) -> SpfaResult {
        let n = self.n;
        let triplets: Vec<(usize, usize, f64)> =
            self.arcs.iter().map(|&(f, t, w)| (f as usize, t as usize, w)).collect();
        let (adj, entry_arc) = CsrMatrix::from_triplets_with_perm(n, n.max(1), &triplets);

        let mut dist = vec![f64::INFINITY; n];
        let mut pred: Vec<Option<u32>> = vec![None; n];
        // Arc count of the current tree path; ≥ n ⇒ the path revisits a
        // node ⇒ negative cycle.
        let mut path_len = vec![0u32; n];
        let mut in_queue = vec![false; n];
        let mut queue: VecDeque<u32> = VecDeque::with_capacity(n);
        match source {
            Source::Virtual => {
                dist.iter_mut().for_each(|d| *d = 0.0);
                in_queue.iter_mut().for_each(|q| *q = true);
                queue.extend((0..n).map(|v| v as u32));
            }
            Source::Node(s) => {
                assert!(s < n, "source {s} out of range");
                dist[s] = 0.0;
                in_queue[s] = true;
                queue.push_back(s as u32);
            }
        }

        while let Some(u) = queue.pop_front() {
            let u = u as usize;
            in_queue[u] = false;
            let du = dist[u];
            if du.is_infinite() {
                continue;
            }
            let range = adj.row_range(u);
            let (heads, weights) = adj.row(u);
            for (k, (&v, &w)) in heads.iter().zip(weights).enumerate() {
                let v = v as usize;
                let cand = du + w;
                if cand + eps < dist[v] {
                    dist[v] = cand;
                    pred[v] = Some(entry_arc[range.start + k]);
                    path_len[v] = path_len[u] + 1;
                    if path_len[v] >= n as u32 {
                        return SpfaResult::NegativeCycle(NegativeCycle {
                            arcs: self.extract_cycle(&pred, v),
                            dist,
                        });
                    }
                    if !in_queue[v] {
                        in_queue[v] = true;
                        queue.push_back(v as u32);
                    }
                }
            }
        }
        SpfaResult::Shortest(ShortestPaths { dist, pred })
    }

    /// Walks the predecessor chain from a node whose tree path reached
    /// length `n` and returns the arcs of the cycle it must contain.
    fn extract_cycle(&self, pred: &[Option<u32>], mut v: usize) -> Vec<usize> {
        // A tree path of length ≥ n revisits a node, so n backward steps
        // from its head stay inside the cycle.
        for _ in 0..self.n {
            let ai = pred[v].expect("length-n tree path has predecessors") as usize;
            v = self.arcs[ai].0 as usize;
        }
        let start = v;
        let mut arcs = Vec::new();
        loop {
            let ai = pred[v].expect("cycle arc") as usize;
            arcs.push(ai);
            v = self.arcs[ai].0 as usize;
            if v == start {
                break;
            }
        }
        arcs.reverse();
        arcs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_source_distances() {
        let mut g = SpfaGraph::new(4);
        g.add_arc(0, 1, 1.0);
        g.add_arc(1, 2, 2.0);
        g.add_arc(0, 2, 5.0);
        let sp = g.run(Source::Node(0), 1e-12).shortest().expect("no cycle");
        assert_eq!(sp.dist, vec![0.0, 1.0, 3.0, f64::INFINITY]);
        assert_eq!(sp.pred[2], Some(1));
    }

    #[test]
    fn virtual_source_handles_negative_arcs() {
        let mut g = SpfaGraph::new(3);
        g.add_arc(0, 1, -2.0);
        g.add_arc(1, 2, -3.0);
        let sp = g.run(Source::Virtual, 1e-12).shortest().expect("no cycle");
        assert_eq!(sp.dist, vec![0.0, -2.0, -5.0]);
    }

    #[test]
    fn negative_cycle_arcs_are_exact() {
        let mut g = SpfaGraph::new(4);
        g.add_arc(3, 0, 1.0);
        let a = g.add_arc(0, 1, 1.0);
        let b = g.add_arc(1, 2, -3.0);
        let c = g.add_arc(2, 0, 1.0);
        let SpfaResult::NegativeCycle(nc) = g.run(Source::Node(3), 1e-12) else {
            panic!("cycle 0→1→2→0 has weight −1");
        };
        let mut arcs = nc.arcs.clone();
        arcs.sort_unstable();
        assert_eq!(arcs, vec![a, b, c]);
        let total: f64 = nc.arcs.iter().map(|&id| g.arc(id).2).sum();
        assert!(total < 0.0, "cycle weight {total}");
    }

    #[test]
    fn cycle_not_reachable_from_source_is_ignored() {
        let mut g = SpfaGraph::new(4);
        g.add_arc(0, 1, 1.0);
        // Negative cycle on 2 ↔ 3, unreachable from node 0.
        g.add_arc(2, 3, -1.0);
        g.add_arc(3, 2, -1.0);
        let sp = g.run(Source::Node(0), 1e-12).shortest().expect("unreachable cycle");
        assert_eq!(sp.dist[1], 1.0);
        assert!(sp.dist[2].is_infinite());
    }

    #[test]
    fn virtual_source_sees_every_cycle() {
        let mut g = SpfaGraph::new(4);
        g.add_arc(0, 1, 1.0);
        g.add_arc(2, 3, -1.0);
        g.add_arc(3, 2, -1.0);
        assert!(matches!(g.run(Source::Virtual, 1e-12), SpfaResult::NegativeCycle(_)));
    }

    #[test]
    fn zero_cycle_converges() {
        let mut g = SpfaGraph::new(2);
        g.add_arc(0, 1, 1.0);
        g.add_arc(1, 0, -1.0);
        let sp = g.run(Source::Virtual, 1e-12).shortest().expect("zero cycle is fine");
        assert!((sp.dist[0] - sp.dist[1] + 1.0).abs() < 1e-9 || sp.dist == vec![0.0, 0.0]);
    }

    #[test]
    fn eps_suppresses_sub_tolerance_cycles() {
        let mut g = SpfaGraph::new(2);
        g.add_arc(0, 1, 1e-9);
        g.add_arc(1, 0, -2e-9);
        // Total weight −1e−9, below the 1e−7 canceling tolerance: converges.
        assert!(g.run(Source::Virtual, 1e-7).shortest().is_some());
    }

    #[test]
    fn empty_graph() {
        let g = SpfaGraph::new(0);
        assert!(g.run(Source::Virtual, 1e-12).shortest().is_some());
    }
}
