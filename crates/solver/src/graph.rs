//! Shared relaxation-kernel layer: shortest paths and negative cycles for
//! every solver in the crate.
//!
//! All label-relaxation machinery lives here, parameterized over the cost
//! semantics through the [`Cost`] trait — `f64` arc weights with an
//! epsilon tolerance (the difference-constraint / SPFA setting) and exact
//! `i64` reduced costs (the quantized min-cost-circulation setting) share
//! one implementation per strategy:
//!
//! * [`SpfaGraph`] — one-shot SPFA (queue-based Bellman–Ford) with
//!   amortized negative-cycle detection, for cold feasibility solves;
//! * [`WarmSpfa`] — warm-startable SPFA over a fixed topology with
//!   sequential, budgeted, seeded, and parallel-Jacobi strategies, generic
//!   over [`Cost`] (stage 2 runs it on `f64` bounds, the circulation's
//!   canonical-dual recovery on `i64` residual costs);
//! * [`Dijkstra`] — multi-source label settling over non-negative
//!   (reduced) costs with a sequential binary-heap strategy for any
//!   [`Cost`] and a bucketed monotone (radix) strategy for `i64`, where
//!   equal-distance batches relax in parallel with a deterministic commit.
//!
//! Consumers ([`crate::difference`], [`crate::mcmf`], and — through those —
//! the skew schedulers in `rotary-core`) pick a strategy; none of them owns
//! a bespoke relaxation loop.
//!
//! The SPFA kernels support two source modes:
//!
//! * [`Source::Virtual`] — every node starts at distance 0, as if a
//!   virtual super-source had a zero-weight arc to each node. This is the
//!   difference-constraint / circulation setting.
//! * [`Source::Node`] — classic single-source shortest paths; unreachable
//!   nodes keep distance `+∞`.
//!
//! Negative-cycle detection is amortized: each node tracks the arc count
//! of its current tree path; when that reaches `n`, the path must revisit
//! a node, so walking the predecessor chain `n` steps lands inside a
//! negative cycle which is then extracted arc-by-arc. Consumers that
//! cancel cycles (min-cost circulation) map the returned arc ids back to
//! their own arcs via insertion order.
//!
//! Adjacency is stored as a [`CsrMatrix`] built once per [`SpfaGraph::run`]
//! from the arc list (entry slots map back to arc ids through the CSR
//! permutation), so the scan over a node's out-arcs is two contiguous
//! slices.

use crate::par::{par_map_with, ParConfig};
use crate::sparse::CsrMatrix;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Cost semantics a relaxation kernel is generic over.
///
/// Two models ship: `f64` (tolerance-based comparisons, `+∞` marks both a
/// disabled arc and an unreached label) and `i64` (exact comparisons with
/// zero epsilon, `i64::MAX` as the sentinel). The relaxation rule is
/// `tail + weight + eps < head` in both; exact integer kernels pass
/// `eps = 0`, which degenerates to a strict comparison.
pub trait Cost: Copy + PartialOrd + std::fmt::Debug + Send + Sync + 'static {
    /// The additive identity (label of a source node).
    const ZERO: Self;
    /// Sentinel for "no label yet" / "arc disabled" (`+∞` / `i64::MAX`).
    const UNREACHED: Self;
    /// `self + rhs`; never called with [`Self::UNREACHED`] operands.
    fn add(self, rhs: Self) -> Self;
    /// `false` exactly for the sentinel (and, for floats, for any
    /// non-finite value): such a weight disables its arc, such a label
    /// means the node was never reached.
    fn finite(self) -> bool;
}

impl Cost for f64 {
    const ZERO: Self = 0.0;
    const UNREACHED: Self = f64::INFINITY;
    fn add(self, rhs: Self) -> Self {
        self + rhs
    }
    fn finite(self) -> bool {
        self.is_finite()
    }
}

impl Cost for i64 {
    const ZERO: Self = 0;
    const UNREACHED: Self = i64::MAX;
    fn add(self, rhs: Self) -> Self {
        self + rhs
    }
    fn finite(self) -> bool {
        self != i64::MAX
    }
}

/// Wide exact costs for the cost-scaling circulation backend: its internal
/// prices are scaled by `n + 1` on top of the 2^40 cost quantization, which
/// overflows `i64` on large instances; the price-refinement SPFA therefore
/// relaxes in `i128`.
impl Cost for i128 {
    const ZERO: Self = 0;
    const UNREACHED: Self = i128::MAX;
    fn add(self, rhs: Self) -> Self {
        self + rhs
    }
    fn finite(self) -> bool {
        self != i128::MAX
    }
}

/// Where shortest paths start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// Virtual super-source: all nodes start at distance 0.
    Virtual,
    /// Single source node; all other nodes start at `+∞`.
    Node(usize),
}

/// Shortest-path tree produced by a converged [`SpfaGraph::run`].
#[derive(Debug, Clone)]
pub struct ShortestPaths {
    /// Distance per node (`+∞` for nodes unreachable from the source).
    pub dist: Vec<f64>,
    /// Predecessor arc id per node (`None` for sources / unreached nodes).
    pub pred: Vec<Option<u32>>,
}

/// A negative cycle found during relaxation.
#[derive(Debug, Clone)]
pub struct NegativeCycle {
    /// Arc ids around the cycle, in forward (head-to-tail) order.
    pub arcs: Vec<usize>,
    /// Distance labels at the moment of detection — not shortest-path
    /// distances (those do not exist), but a consistent partial relaxation
    /// useful as approximate potentials.
    pub dist: Vec<f64>,
}

/// Outcome of a [`SpfaGraph::run`].
#[derive(Debug, Clone)]
pub enum SpfaResult {
    /// Relaxation converged; shortest paths exist.
    Shortest(ShortestPaths),
    /// A negative cycle was detected.
    NegativeCycle(NegativeCycle),
}

impl SpfaResult {
    /// The shortest paths, or `None` if a negative cycle was found.
    pub fn shortest(self) -> Option<ShortestPaths> {
        match self {
            SpfaResult::Shortest(sp) => Some(sp),
            SpfaResult::NegativeCycle(_) => None,
        }
    }

    /// The distance labels regardless of outcome (exact on convergence,
    /// the partial relaxation snapshot on a negative cycle).
    pub fn into_dist(self) -> Vec<f64> {
        match self {
            SpfaResult::Shortest(sp) => sp.dist,
            SpfaResult::NegativeCycle(nc) => nc.dist,
        }
    }
}

/// A directed graph with `f64` arc weights for SPFA shortest paths.
///
/// # Examples
///
/// ```
/// use rotary_solver::graph::{Source, SpfaGraph, SpfaResult};
///
/// let mut g = SpfaGraph::new(3);
/// g.add_arc(0, 1, 2.0);
/// g.add_arc(1, 2, -1.0);
/// g.add_arc(0, 2, 5.0);
/// let sp = g.run(Source::Node(0), 1e-12).shortest().expect("no cycle");
/// assert_eq!(sp.dist, vec![0.0, 2.0, 1.0]);
///
/// g.add_arc(2, 1, -1.0); // 1 → 2 → 1 sums to −2: negative cycle
/// assert!(matches!(g.run(Source::Node(0), 1e-12), SpfaResult::NegativeCycle(_)));
/// ```
#[derive(Debug, Clone)]
pub struct SpfaGraph {
    n: usize,
    arcs: Vec<(u32, u32, f64)>,
}

impl SpfaGraph {
    /// Creates a graph with `n` nodes and no arcs.
    pub fn new(n: usize) -> Self {
        Self { n, arcs: Vec::new() }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of arcs.
    pub fn num_arcs(&self) -> usize {
        self.arcs.len()
    }

    /// Adds an arc `from → to` with the given weight; returns its id
    /// (sequential, by insertion order).
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn add_arc(&mut self, from: usize, to: usize, weight: f64) -> usize {
        assert!(from < self.n && to < self.n, "arc ({from}, {to}) out of range");
        self.arcs.push((from as u32, to as u32, weight));
        self.arcs.len() - 1
    }

    /// The `(from, to, weight)` of arc `id`.
    pub fn arc(&self, id: usize) -> (usize, usize, f64) {
        let (f, t, w) = self.arcs[id];
        (f as usize, t as usize, w)
    }

    /// Runs SPFA from `source`. An arc relaxes only when it improves the
    /// head's distance by more than `eps` (the tolerance consumers used in
    /// their hand-rolled loops: `1e-12` for difference constraints, `1e-9`
    /// / `1e-7` for flow potentials and cycle canceling).
    pub fn run(&self, source: Source, eps: f64) -> SpfaResult {
        let n = self.n;
        let triplets: Vec<(usize, usize, f64)> =
            self.arcs.iter().map(|&(f, t, w)| (f as usize, t as usize, w)).collect();
        let (adj, entry_arc) = CsrMatrix::from_triplets_with_perm(n, n.max(1), &triplets);

        let mut dist = vec![f64::INFINITY; n];
        let mut pred: Vec<Option<u32>> = vec![None; n];
        // Arc count of the current tree path; ≥ n ⇒ the path revisits a
        // node ⇒ negative cycle.
        let mut path_len = vec![0u32; n];
        let mut in_queue = vec![false; n];
        let mut queue: VecDeque<u32> = VecDeque::with_capacity(n);
        match source {
            Source::Virtual => {
                dist.iter_mut().for_each(|d| *d = 0.0);
                in_queue.iter_mut().for_each(|q| *q = true);
                queue.extend((0..n).map(|v| v as u32));
            }
            Source::Node(s) => {
                assert!(s < n, "source {s} out of range");
                dist[s] = 0.0;
                in_queue[s] = true;
                queue.push_back(s as u32);
            }
        }

        while let Some(u) = queue.pop_front() {
            let u = u as usize;
            in_queue[u] = false;
            let du = dist[u];
            if du.is_infinite() {
                continue;
            }
            let range = adj.row_range(u);
            let (heads, weights) = adj.row(u);
            for (k, (&v, &w)) in heads.iter().zip(weights).enumerate() {
                let v = v as usize;
                let cand = du + w;
                if cand + eps < dist[v] {
                    dist[v] = cand;
                    pred[v] = Some(entry_arc[range.start + k]);
                    path_len[v] = path_len[u] + 1;
                    if path_len[v] >= n as u32 {
                        return SpfaResult::NegativeCycle(NegativeCycle {
                            arcs: self.extract_cycle(&pred, v),
                            dist,
                        });
                    }
                    if !in_queue[v] {
                        in_queue[v] = true;
                        queue.push_back(v as u32);
                    }
                }
            }
        }
        SpfaResult::Shortest(ShortestPaths { dist, pred })
    }

    /// Walks the predecessor chain from a node whose tree path reached
    /// length `n` and returns the arcs of the cycle it must contain.
    fn extract_cycle(&self, pred: &[Option<u32>], mut v: usize) -> Vec<usize> {
        // A tree path of length ≥ n revisits a node, so n backward steps
        // from its head stay inside the cycle.
        for _ in 0..self.n {
            let ai = pred[v].expect("length-n tree path has predecessors") as usize;
            v = self.arcs[ai].0 as usize;
        }
        let start = v;
        let mut arcs = Vec::new();
        loop {
            let ai = pred[v].expect("cycle arc") as usize;
            arcs.push(ai);
            v = self.arcs[ai].0 as usize;
            if v == start {
                break;
            }
        }
        arcs.reverse();
        arcs
    }
}

/// Caller verdict after a [`Dijkstra`] node is settled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SettleControl {
    /// Keep settling nodes.
    Continue,
    /// The settled set suffices: relax this node's arcs (so every
    /// tentative label is at least the stopping distance — the invariant
    /// capped potential updates rely on), then stop.
    Stop,
}

/// Min-heap key: `(distance, node)` with ties broken toward the smaller
/// node id, so the settle order is deterministic for every [`Cost`].
#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapKey<C: Cost>(C, u32);

impl<C: Cost> Eq for HeapKey<C> {}

impl<C: Cost> Ord for HeapKey<C> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| self.1.cmp(&other.1))
    }
}

impl<C: Cost> PartialOrd for HeapKey<C> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Multi-source Dijkstra over non-negative (reduced) costs, with reusable
/// scratch. Arcs arrive per call as a closure from a node to an iterator
/// of `(arc_id, head, weight)` — so residual-capacity filtering and
/// reduced-cost computation stay with the caller and the hot loop
/// monomorphizes over the provider.
///
/// Two strategies:
///
/// * [`Self::run`] — sequential binary heap, any [`Cost`]. Settles nodes
///   in `(dist, node)` order and calls `settle` once per finalized node;
///   [`SettleControl::Stop`] ends the pass after that node's arcs relax.
/// * [`Self::run_bucketed`] — `i64` only: a monotone 65-bucket radix
///   queue pops *batches* of equal-distance nodes (sorted by node id) and
///   relaxes large batches through [`par_map_with`] with a sequential
///   deterministic commit. Settled labels, predecessors-of-settled-nodes,
///   and any potential update capped at the stopping distance are
///   identical to the sequential strategy's (equal-distance settle order
///   may differ, which only permutes work *within* one distance level).
#[derive(Debug, Clone)]
pub struct Dijkstra<C: Cost> {
    dist: Vec<C>,
    pred: Vec<u32>,
    heap: BinaryHeap<Reverse<HeapKey<C>>>,
}

impl<C: Cost> Dijkstra<C> {
    /// Scratch for an `n`-node graph.
    pub fn new(n: usize) -> Self {
        Self { dist: vec![C::UNREACHED; n], pred: vec![NO_PRED; n], heap: BinaryHeap::new() }
    }

    /// Labels of the last pass ([`Cost::UNREACHED`] where no path was
    /// found before the pass ended).
    pub fn dist(&self) -> &[C] {
        &self.dist
    }

    /// Predecessor arc ids of the last pass ([`NO_PRED`] for sources and
    /// unreached nodes). Exact shortest-path trees for settled nodes.
    pub fn pred(&self) -> &[u32] {
        &self.pred
    }

    fn reset(&mut self) {
        self.dist.iter_mut().for_each(|d| *d = C::UNREACHED);
        self.pred.iter_mut().for_each(|p| *p = NO_PRED);
        self.heap.clear();
    }

    /// Sequential heap strategy. `sources` start at [`Cost::ZERO`];
    /// `arcs(u)` yields `(arc_id, head, weight)` with `weight ≥ 0` (up to
    /// `eps`); `settle(u, dist_u)` fires once per finalized node.
    pub fn run<A, I, F>(
        &mut self,
        sources: impl IntoIterator<Item = usize>,
        eps: C,
        arcs: A,
        mut settle: F,
    ) where
        A: Fn(usize) -> I,
        I: Iterator<Item = (u32, u32, C)>,
        F: FnMut(usize, C) -> SettleControl,
    {
        self.reset();
        for s in sources {
            self.dist[s] = C::ZERO;
            self.heap.push(Reverse(HeapKey(C::ZERO, s as u32)));
        }
        while let Some(Reverse(HeapKey(d, u))) = self.heap.pop() {
            let u = u as usize;
            if self.dist[u].add(eps) < d {
                continue; // stale entry
            }
            let verdict = settle(u, d);
            for (aid, v, w) in arcs(u) {
                let v = v as usize;
                let nd = d.add(w);
                if nd.add(eps) < self.dist[v] {
                    self.dist[v] = nd;
                    self.pred[v] = aid;
                    self.heap.push(Reverse(HeapKey(nd, v as u32)));
                }
            }
            if verdict == SettleControl::Stop {
                return;
            }
        }
    }
}

impl Dijkstra<i64> {
    /// Bucketed monotone strategy (exact integer distances only): batches
    /// of equal-distance nodes settle together, in ascending node order,
    /// and batches at least `cfg.min_parallel` wide gather their arc
    /// relaxations through [`par_map_with`] before a sequential in-order
    /// commit — so labels, predecessors, and pushes are bit-identical to
    /// processing the batch sequentially, whatever the thread count.
    pub fn run_bucketed<A, I, F>(
        &mut self,
        sources: impl IntoIterator<Item = usize>,
        arcs: A,
        mut settle: F,
        cfg: &ParConfig,
    ) where
        A: Fn(usize) -> I + Sync,
        I: Iterator<Item = (u32, u32, i64)>,
        F: FnMut(usize, i64) -> SettleControl,
    {
        self.reset();
        self.heap.clear();
        // Radix buckets over the u64 key space: bucket 0 holds keys equal
        // to the last settled distance `last`, bucket `b ≥ 1` keys whose
        // highest differing bit from `last` is `b − 1`. Distances only
        // grow, so redistribution on advancing `last` moves every entry to
        // a strictly lower bucket — the classic monotone radix heap.
        let mut buckets: Vec<Vec<(u64, u32)>> = vec![Vec::new(); 65];
        let mut last = 0u64;
        let bucket_of =
            |key: u64, last: u64| -> usize { 64 - (key ^ last).leading_zeros() as usize };
        for s in sources {
            self.dist[s] = 0;
            buckets[0].push((0, s as u32));
        }
        let mut batch: Vec<u32> = Vec::new();
        loop {
            if buckets[0].is_empty() {
                let Some(b) = (1..=64).find(|&b| !buckets[b].is_empty()) else {
                    return; // queue exhausted
                };
                last = buckets[b].iter().map(|&(k, _)| k).min().expect("bucket non-empty");
                let drained = std::mem::take(&mut buckets[b]);
                for (k, v) in drained {
                    buckets[bucket_of(k, last)].push((k, v));
                }
            }
            batch.clear();
            for (k, v) in buckets[0].drain(..) {
                debug_assert_eq!(k, last);
                if self.dist[v as usize] as u64 == k {
                    batch.push(v); // drop stale entries
                }
            }
            if batch.is_empty() {
                continue;
            }
            batch.sort_unstable();
            batch.dedup();
            // Settle in node order; Stop truncates the batch so exactly
            // the settled prefix relaxes its arcs (matching the
            // sequential strategy's "relax the stopping node, then halt").
            let mut stop = false;
            let mut settled = batch.len();
            for (idx, &v) in batch.iter().enumerate() {
                if settle(v as usize, last as i64) == SettleControl::Stop {
                    stop = true;
                    settled = idx + 1;
                    break;
                }
            }
            let work = &batch[..settled];
            let d = last as i64;
            if work.len() >= cfg.min_parallel {
                // Gather against the pre-batch labels in parallel, then
                // commit sequentially in batch order: a candidate beaten
                // by an earlier batch member fails its strict re-check,
                // so the final labels/preds equal sequential processing.
                let dist = &self.dist;
                let proposals: Vec<Vec<(u32, i64, u32)>> = par_map_with(cfg, work.len(), |idx| {
                    let u = work[idx] as usize;
                    arcs(u)
                        .filter(|&(_, v, w)| d + w < dist[v as usize])
                        .map(|(aid, v, w)| (v, d + w, aid))
                        .collect()
                });
                for plist in proposals {
                    for (v, nd, aid) in plist {
                        let v = v as usize;
                        if nd < self.dist[v] {
                            self.dist[v] = nd;
                            self.pred[v] = aid;
                            buckets[bucket_of(nd as u64, last)].push((nd as u64, v as u32));
                        }
                    }
                }
            } else {
                for &u in work {
                    for (aid, v, w) in arcs(u as usize) {
                        let v = v as usize;
                        let nd = d + w;
                        if nd < self.dist[v] {
                            self.dist[v] = nd;
                            self.pred[v] = aid;
                            buckets[bucket_of(nd as u64, last)].push((nd as u64, v as u32));
                        }
                    }
                }
            }
            if stop {
                return;
            }
        }
    }
}

/// Outcome of one [`WarmSpfa::relax`] round.
#[derive(Debug, Clone)]
pub enum RelaxOutcome {
    /// All arcs satisfy `dist[head] ≤ dist[tail] + w + eps`: the labels are
    /// a feasibility certificate for the current weights.
    Converged,
    /// A negative cycle was detected; arc ids in forward order.
    NegativeCycle(Vec<usize>),
}

/// Warm-startable SPFA over a **fixed topology** with per-round weights.
///
/// Where [`SpfaGraph::run`] rebuilds its CSR adjacency and relaxes every
/// node from a cold virtual source on each call, `WarmSpfa` builds the CSR
/// structure once from the arc list and exposes relaxation as an
/// incremental operation on persistent distance labels:
///
/// * weights are supplied per round as a closure over the arc id (so a
///   parametric tightening `b − m·t`, or a capacity-filtered residual
///   network, needs no graph rebuild — return `f64::INFINITY` to disable
///   an arc for the round);
/// * [`Self::relax`] seeds its queue with only the tails of arcs the
///   current labels violate, so a re-check after a small parameter change
///   touches a wavefront, not the whole graph;
/// * labels persist across rounds (and can be saved/restored through
///   [`Self::dist`] / [`Self::load_dist`]), which is what makes carrying
///   potentials across probes, correction paths, and flow iterations cheap.
///
/// Starting relaxation from *any* finite labels is sound: on convergence
/// the labels certify that no arc is violated (hence every cycle has
/// non-negative weight up to `n·eps`), and a sufficiently negative cycle
/// always keeps some arc violated, so it cannot converge past one.
/// Predecessors and tree-path lengths are reset every round, so an
/// extracted cycle only contains arcs relaxed *this* round.
///
/// Beyond the full-scan [`Self::relax`], two entry points serve the
/// incremental parametric engine:
///
/// * [`Self::relax_seeded`] skips the Θ(arcs) violation scan and seeds the
///   queue from an explicit arc set — sound whenever the caller knows the
///   labels were a fixpoint and only those arcs changed weight
///   (Ramalingam–Reps-style affected-region propagation);
/// * [`Self::relax_parallel`] is a deterministic round-synchronous Jacobi
///   relaxation (each round gathers over every node's *in*-arcs via
///   [`par_map_with`]) for genuinely cold solves on large graphs.
#[derive(Debug, Clone)]
pub struct WarmSpfa<C: Cost = f64> {
    n: usize,
    tails: Vec<u32>,
    heads: Vec<u32>,
    adj: CsrMatrix,
    entry_arc: Vec<u32>,
    /// Transposed adjacency (rows = heads) for the Jacobi gather; built
    /// lazily on the first [`Self::relax_parallel`] call.
    in_adj: Option<Box<(CsrMatrix, Vec<u32>)>>,
    dist: Vec<C>,
    pred: Vec<u32>,
    path_len: Vec<u32>,
    in_queue: Vec<bool>,
    /// Round stamp per node: `stamp[v] == round` ⇔ `dist[v]` changed in the
    /// current relaxation call (feeds the `affected_vertices` telemetry).
    stamp: Vec<u32>,
    round: u32,
    last_affected: usize,
}

/// Sentinel predecessor-arc id for "no predecessor" (sources, unreached
/// nodes) in every kernel's tree output.
pub const NO_PRED: u32 = u32::MAX;

impl<C: Cost> WarmSpfa<C> {
    /// Builds the engine over `n` nodes and the given `(tail, head)` arcs.
    /// Arc ids are positions in `arcs`.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn new(n: usize, arcs: &[(usize, usize)]) -> Self {
        let triplets: Vec<(usize, usize, f64)> = arcs
            .iter()
            .map(|&(f, t)| {
                assert!(f < n && t < n, "arc ({f}, {t}) out of range");
                (f, t, 0.0)
            })
            .collect();
        let (adj, entry_arc) = CsrMatrix::from_triplets_with_perm(n, n.max(1), &triplets);
        Self {
            n,
            tails: arcs.iter().map(|&(f, _)| f as u32).collect(),
            heads: arcs.iter().map(|&(_, t)| t as u32).collect(),
            adj,
            entry_arc,
            in_adj: None,
            dist: vec![C::ZERO; n],
            pred: vec![NO_PRED; n],
            path_len: vec![0; n],
            in_queue: vec![false; n],
            stamp: vec![u32::MAX; n],
            round: 0,
            last_affected: 0,
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of arcs.
    pub fn num_arcs(&self) -> usize {
        self.tails.len()
    }

    /// The `(tail, head)` of arc `id`.
    pub fn arc_endpoints(&self, id: usize) -> (usize, usize) {
        (self.tails[id] as usize, self.heads[id] as usize)
    }

    /// The current distance labels.
    pub fn dist(&self) -> &[C] {
        &self.dist
    }

    /// Overwrites the labels (e.g. restoring a snapshot after a failed
    /// probe, or seeding potentials carried from an earlier system).
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != n`.
    pub fn load_dist(&mut self, labels: &[C]) {
        assert_eq!(labels.len(), self.n, "label vector length mismatch");
        self.dist.copy_from_slice(labels);
    }

    /// Resets every label to 0 — the cold virtual-source start whose
    /// converged labels are the canonical (componentwise-maximal ≤ 0)
    /// difference-constraint solution.
    pub fn reset_zero(&mut self) {
        self.dist.iter_mut().for_each(|d| *d = C::ZERO);
    }

    /// How many distinct nodes changed their label during the most recent
    /// relaxation call (any entry point) — the size of the affected region.
    pub fn last_affected(&self) -> usize {
        self.last_affected
    }

    /// Resets per-round scratch (predecessors, path lengths, queue flags)
    /// and advances the affected-node stamp generation.
    fn begin_round(&mut self) {
        self.pred.iter_mut().for_each(|p| *p = NO_PRED);
        self.path_len.iter_mut().for_each(|l| *l = 0);
        self.in_queue.iter_mut().for_each(|q| *q = false);
        self.round = self.round.wrapping_add(1);
        if self.round == 0 {
            // One reset every 2^32 rounds keeps stale stamps impossible.
            self.stamp.iter_mut().for_each(|s| *s = u32::MAX);
            self.round = 1;
        }
        self.last_affected = 0;
    }

    fn touch(&mut self, v: usize) {
        if self.stamp[v] != self.round {
            self.stamp[v] = self.round;
            self.last_affected += 1;
        }
    }

    /// Runs one relaxation round under `weight` (indexed by arc id;
    /// [`Cost::UNREACHED`] disables an arc). Only arcs violated by the
    /// current labels seed the queue. On [`RelaxOutcome::NegativeCycle`]
    /// the labels hold a partial relaxation snapshot — callers that need
    /// the pre-round labels back must save them first.
    pub fn relax(&mut self, weight: impl Fn(usize) -> C, eps: C) -> RelaxOutcome {
        self.relax_budgeted(weight, eps, usize::MAX).expect("unlimited budget cannot run out")
    }

    /// [`Self::relax`] with a cap on queue pops. Returns `None` when the
    /// cap is hit before the round converges or finds a cycle.
    ///
    /// Near-fixpoint labels are the warm start's worst case: every arc of
    /// a *marginally* violated cycle improves its head by a sliver per
    /// lap, so the `path_len ≥ n` certificate only fires after up to `n`
    /// laps — Θ(n·arcs) work for a verdict a zero-label start reaches in
    /// one sweep. A budget lets callers bail out of that creep and restart
    /// cold, bounding any probe at budget + one cold round. On `None` the
    /// labels hold a partial snapshot, exactly as on a cycle.
    pub fn relax_budgeted(
        &mut self,
        weight: impl Fn(usize) -> C,
        eps: C,
        max_pops: usize,
    ) -> Option<RelaxOutcome> {
        self.relax_inner(weight, eps, max_pops, None)
    }

    /// [`Self::relax_budgeted`] seeded from an explicit arc set instead of
    /// the Θ(arcs) violation scan: only `seed_arcs` are checked for
    /// violation to build the initial queue.
    ///
    /// Sound **only** when every arc the current labels violate is listed
    /// in `seed_arcs` — the contract the parametric engine upholds by
    /// seeding with exactly the arcs whose weights changed since the labels
    /// last converged (a fixpoint violates no arc, and an unchanged weight
    /// cannot create a violation on its own; knock-on violations from
    /// labels dropping during propagation are found by the queue as usual).
    pub fn relax_seeded(
        &mut self,
        weight: impl Fn(usize) -> C,
        eps: C,
        max_pops: usize,
        seed_arcs: &[u32],
    ) -> Option<RelaxOutcome> {
        self.relax_inner(weight, eps, max_pops, Some(seed_arcs))
    }

    fn relax_inner(
        &mut self,
        weight: impl Fn(usize) -> C,
        eps: C,
        max_pops: usize,
        seed_arcs: Option<&[u32]>,
    ) -> Option<RelaxOutcome> {
        let n = self.n;
        self.begin_round();
        let mut queue: VecDeque<u32> = VecDeque::new();
        let seed = |this: &mut Self, queue: &mut VecDeque<u32>, id: usize| {
            let w = weight(id);
            if !w.finite() {
                return;
            }
            let (f, t) = (this.tails[id] as usize, this.heads[id] as usize);
            if this.dist[f].add(w).add(eps) < this.dist[t] && !this.in_queue[f] {
                this.in_queue[f] = true;
                queue.push_back(f as u32);
            }
        };
        match seed_arcs {
            None => {
                for id in 0..self.tails.len() {
                    seed(self, &mut queue, id);
                }
            }
            Some(ids) => {
                for &id in ids {
                    seed(self, &mut queue, id as usize);
                }
            }
        }

        let mut pops = 0usize;
        while let Some(u) = queue.pop_front() {
            if pops >= max_pops {
                return None;
            }
            pops += 1;
            let u = u as usize;
            self.in_queue[u] = false;
            let du = self.dist[u];
            if !du.finite() {
                continue;
            }
            let range = self.adj.row_range(u);
            let (heads, _) = self.adj.row(u);
            for (k, &v) in heads.iter().enumerate() {
                let id = self.entry_arc[range.start + k] as usize;
                let w = weight(id);
                if !w.finite() {
                    continue;
                }
                let v = v as usize;
                let cand = du.add(w);
                if cand.add(eps) < self.dist[v] {
                    self.dist[v] = cand;
                    if self.stamp[v] != self.round {
                        self.stamp[v] = self.round;
                        self.last_affected += 1;
                    }
                    self.pred[v] = id as u32;
                    self.path_len[v] = self.path_len[u] + 1;
                    if self.path_len[v] >= n as u32 {
                        return Some(RelaxOutcome::NegativeCycle(self.extract_cycle(v)));
                    }
                    if !self.in_queue[v] {
                        self.in_queue[v] = true;
                        queue.push_back(v as u32);
                    }
                }
            }
        }
        Some(RelaxOutcome::Converged)
    }

    /// Deterministic parallel relaxation for genuinely cold solves on
    /// large graphs: round-synchronous Jacobi Bellman–Ford. Each round
    /// computes, for every node in parallel, the best improvement over its
    /// *in*-arcs against the previous round's labels (first strict minimum
    /// in transposed-CSR entry order — a fixed tie-break, so the committed
    /// labels are identical however many threads run), then commits all
    /// updates sequentially.
    ///
    /// Negative cycles are reported through the predecessor graph: pred
    /// arcs always satisfy `dist[head] = dist_at_set[tail] + w` with labels
    /// only decreasing afterwards, so summing around any predecessor cycle
    /// gives total weight ≤ `0` strictly below the per-relaxation `eps`
    /// improvement — the classic lemma that the predecessor graph stays
    /// acyclic unless a genuinely negative cycle exists. Each round runs an
    /// O(n) walk-coloring pass over the pred graph; if no fixpoint is
    /// reached within `n` rounds the call falls back to the sequential
    /// queue relaxation from the current labels, which owns the verdict.
    pub fn relax_parallel(&mut self, weight: impl Fn(usize) -> C + Sync, eps: C) -> RelaxOutcome {
        let n = self.n;
        self.begin_round();
        if self.in_adj.is_none() {
            let triplets: Vec<(usize, usize, f64)> = self
                .tails
                .iter()
                .zip(&self.heads)
                .map(|(&f, &t)| (t as usize, f as usize, 0.0))
                .collect();
            let (m, perm) = CsrMatrix::from_triplets_with_perm(n, n.max(1), &triplets);
            self.in_adj = Some(Box::new((m, perm)));
        }
        let cfg = ParConfig::default();
        for _ in 0..n.max(1) {
            let (in_adj, in_entry) = {
                let b = self.in_adj.as_ref().expect("built above");
                (&b.0, &b.1[..])
            };
            let dist = &self.dist;
            let updates: Vec<(C, u32)> = par_map_with(&cfg, n, |v| {
                let mut best = dist[v];
                let mut best_arc = NO_PRED;
                let range = in_adj.row_range(v);
                let (tails, _) = in_adj.row(v);
                for (k, &u) in tails.iter().enumerate() {
                    let id = in_entry[range.start + k] as usize;
                    let w = weight(id);
                    if !w.finite() {
                        continue;
                    }
                    let cand = dist[u as usize].add(w);
                    if cand.add(eps) < best {
                        best = cand;
                        best_arc = id as u32;
                    }
                }
                (best, best_arc)
            });
            let mut changed = false;
            for (v, &(d, a)) in updates.iter().enumerate() {
                if a != NO_PRED {
                    self.dist[v] = d;
                    self.touch(v);
                    self.pred[v] = a;
                    changed = true;
                }
            }
            if !changed {
                return RelaxOutcome::Converged;
            }
            if let Some(on_cycle) = self.find_pred_cycle_node() {
                return RelaxOutcome::NegativeCycle(self.extract_pred_cycle(on_cycle));
            }
        }
        // No fixpoint within n rounds (possible only under eps-marginal
        // creep): let the sequential engine finish from the current labels
        // so the verdict always comes from the queue relaxation.
        let affected = self.last_affected;
        let outcome =
            self.relax_budgeted(weight, eps, usize::MAX).expect("unlimited budget cannot run out");
        self.last_affected += affected;
        outcome
    }

    /// Finds a node lying on a cycle of the predecessor graph, if one
    /// exists, via walk coloring (0 = unvisited, 1 = on the current walk,
    /// 2 = cleared): following `pred` tails from an unvisited node either
    /// terminates, merges into a cleared walk, or re-enters the current
    /// walk — the latter is a cycle.
    fn find_pred_cycle_node(&self) -> Option<usize> {
        let mut state = vec![0u8; self.n];
        let mut path: Vec<usize> = Vec::new();
        for s in 0..self.n {
            if state[s] != 0 {
                continue;
            }
            path.clear();
            let mut v = s;
            let found = loop {
                match state[v] {
                    1 => break Some(v),
                    2 => break None,
                    _ => {}
                }
                state[v] = 1;
                path.push(v);
                match self.pred[v] {
                    NO_PRED => break None,
                    p => v = self.tails[p as usize] as usize,
                }
            };
            if found.is_some() {
                return found;
            }
            for &u in &path {
                state[u] = 2;
            }
        }
        None
    }

    /// Collects the predecessor-cycle arcs starting from a node known to
    /// lie on one, in forward order.
    fn extract_pred_cycle(&self, start: usize) -> Vec<usize> {
        let mut arcs = Vec::new();
        let mut v = start;
        loop {
            let ai = self.pred[v] as usize;
            arcs.push(ai);
            v = self.tails[ai] as usize;
            if v == start {
                break;
            }
        }
        arcs.reverse();
        arcs
    }

    /// Walks the predecessor chain from a node whose tree path reached
    /// length `n` and returns the arcs of the cycle it must contain (same
    /// argument as [`SpfaGraph::extract_cycle`]; predecessors are reset per
    /// round, so the chain only contains arcs relaxed this round).
    fn extract_cycle(&self, mut v: usize) -> Vec<usize> {
        for _ in 0..self.n {
            let ai = self.pred[v];
            assert_ne!(ai, NO_PRED, "length-n tree path has predecessors");
            v = self.tails[ai as usize] as usize;
        }
        self.extract_pred_cycle(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_source_distances() {
        let mut g = SpfaGraph::new(4);
        g.add_arc(0, 1, 1.0);
        g.add_arc(1, 2, 2.0);
        g.add_arc(0, 2, 5.0);
        let sp = g.run(Source::Node(0), 1e-12).shortest().expect("no cycle");
        assert_eq!(sp.dist, vec![0.0, 1.0, 3.0, f64::INFINITY]);
        assert_eq!(sp.pred[2], Some(1));
    }

    #[test]
    fn virtual_source_handles_negative_arcs() {
        let mut g = SpfaGraph::new(3);
        g.add_arc(0, 1, -2.0);
        g.add_arc(1, 2, -3.0);
        let sp = g.run(Source::Virtual, 1e-12).shortest().expect("no cycle");
        assert_eq!(sp.dist, vec![0.0, -2.0, -5.0]);
    }

    #[test]
    fn negative_cycle_arcs_are_exact() {
        let mut g = SpfaGraph::new(4);
        g.add_arc(3, 0, 1.0);
        let a = g.add_arc(0, 1, 1.0);
        let b = g.add_arc(1, 2, -3.0);
        let c = g.add_arc(2, 0, 1.0);
        let SpfaResult::NegativeCycle(nc) = g.run(Source::Node(3), 1e-12) else {
            panic!("cycle 0→1→2→0 has weight −1");
        };
        let mut arcs = nc.arcs.clone();
        arcs.sort_unstable();
        assert_eq!(arcs, vec![a, b, c]);
        let total: f64 = nc.arcs.iter().map(|&id| g.arc(id).2).sum();
        assert!(total < 0.0, "cycle weight {total}");
    }

    #[test]
    fn cycle_not_reachable_from_source_is_ignored() {
        let mut g = SpfaGraph::new(4);
        g.add_arc(0, 1, 1.0);
        // Negative cycle on 2 ↔ 3, unreachable from node 0.
        g.add_arc(2, 3, -1.0);
        g.add_arc(3, 2, -1.0);
        let sp = g.run(Source::Node(0), 1e-12).shortest().expect("unreachable cycle");
        assert_eq!(sp.dist[1], 1.0);
        assert!(sp.dist[2].is_infinite());
    }

    #[test]
    fn virtual_source_sees_every_cycle() {
        let mut g = SpfaGraph::new(4);
        g.add_arc(0, 1, 1.0);
        g.add_arc(2, 3, -1.0);
        g.add_arc(3, 2, -1.0);
        assert!(matches!(g.run(Source::Virtual, 1e-12), SpfaResult::NegativeCycle(_)));
    }

    #[test]
    fn zero_cycle_converges() {
        let mut g = SpfaGraph::new(2);
        g.add_arc(0, 1, 1.0);
        g.add_arc(1, 0, -1.0);
        let sp = g.run(Source::Virtual, 1e-12).shortest().expect("zero cycle is fine");
        assert!((sp.dist[0] - sp.dist[1] + 1.0).abs() < 1e-9 || sp.dist == vec![0.0, 0.0]);
    }

    #[test]
    fn eps_suppresses_sub_tolerance_cycles() {
        let mut g = SpfaGraph::new(2);
        g.add_arc(0, 1, 1e-9);
        g.add_arc(1, 0, -2e-9);
        // Total weight −1e−9, below the 1e−7 canceling tolerance: converges.
        assert!(g.run(Source::Virtual, 1e-7).shortest().is_some());
    }

    #[test]
    fn empty_graph() {
        let g = SpfaGraph::new(0);
        assert!(g.run(Source::Virtual, 1e-12).shortest().is_some());
    }

    #[test]
    fn warm_relax_from_zero_matches_cold_spfa() {
        let arcs = [(0usize, 1usize), (1, 2), (0, 2), (2, 3)];
        let weights = [2.0, -1.0, 5.0, 0.5];
        let mut g = SpfaGraph::new(4);
        for (&(f, t), &w) in arcs.iter().zip(&weights) {
            g.add_arc(f, t, w);
        }
        let cold = g.run(Source::Virtual, 1e-12).shortest().expect("no cycle").dist;

        let mut warm = WarmSpfa::new(4, &arcs);
        warm.reset_zero();
        assert!(matches!(warm.relax(|id| weights[id], 1e-12), RelaxOutcome::Converged));
        assert_eq!(warm.dist(), &cold[..]);
    }

    #[test]
    fn warm_restart_after_tightening_touches_only_the_wavefront() {
        // Chain 0 → 1 → 2 with a side window; tightening the first bound
        // re-seeds only its tail.
        let arcs = [(0usize, 1usize), (1, 2), (0, 2)];
        let mut warm = WarmSpfa::new(3, &arcs);
        warm.reset_zero();
        let base = [-1.0, -1.0, 0.0];
        assert!(matches!(warm.relax(|id| base[id], 1e-12), RelaxOutcome::Converged));
        assert_eq!(warm.dist(), &[0.0, -1.0, -2.0]);
        // Tighten every bound by 0.5 and re-relax from the previous labels:
        // the fixed point must equal the cold solve of the tightened system.
        let tight = [-1.5, -1.5, -0.5];
        assert!(matches!(warm.relax(|id| tight[id], 1e-12), RelaxOutcome::Converged));
        assert_eq!(warm.dist(), &[0.0, -1.5, -3.0]);
    }

    #[test]
    fn warm_detects_negative_cycle_with_exact_arcs() {
        let arcs = [(0usize, 1usize), (1, 2), (2, 0), (3, 0)];
        let weights = [1.0, -3.0, 1.0, 1.0];
        let mut warm = WarmSpfa::new(4, &arcs);
        warm.reset_zero();
        let RelaxOutcome::NegativeCycle(cycle) = warm.relax(|id| weights[id], 1e-12) else {
            panic!("cycle 0→1→2→0 has weight −1");
        };
        let mut ids = cycle.clone();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2]);
        let total: f64 = cycle.iter().map(|&id| weights[id]).sum();
        assert!(total < 0.0);
    }

    #[test]
    fn infinite_weight_disables_an_arc() {
        // The only negative cycle runs through a disabled arc.
        let arcs = [(0usize, 1usize), (1, 0)];
        let mut warm = WarmSpfa::new(2, &arcs);
        warm.reset_zero();
        let w = [-2.0, f64::INFINITY];
        assert!(matches!(warm.relax(|id| w[id], 1e-12), RelaxOutcome::Converged));
        assert_eq!(warm.dist(), &[0.0, -2.0]);
        // Re-enable it: now 0→1→0 sums to −1.
        let w2 = [-2.0, 1.0];
        assert!(matches!(warm.relax(|id| w2[id], 1e-12), RelaxOutcome::NegativeCycle(_)));
    }

    #[test]
    fn load_dist_restores_a_snapshot() {
        let arcs = [(0usize, 1usize)];
        let mut warm = WarmSpfa::new(2, &arcs);
        warm.reset_zero();
        assert!(matches!(warm.relax(|_| -1.0, 1e-12), RelaxOutcome::Converged));
        let snapshot = warm.dist().to_vec();
        assert!(matches!(warm.relax(|_| -5.0, 1e-12), RelaxOutcome::Converged));
        assert_ne!(warm.dist(), &snapshot[..]);
        warm.load_dist(&snapshot);
        assert_eq!(warm.dist(), &snapshot[..]);
    }

    #[test]
    fn warm_empty_graph() {
        let mut warm = WarmSpfa::new(0, &[]);
        warm.reset_zero();
        assert!(matches!(warm.relax(|_| 0.0, 1e-12), RelaxOutcome::Converged));
    }

    #[test]
    fn seeded_relax_from_fixpoint_matches_full_scan() {
        // Converge a chain, tighten ONE arc, and re-relax seeding only that
        // arc: the fixpoint must match a full-scan relax of the same weights.
        let arcs = [(0usize, 1usize), (1, 2), (2, 3), (0, 3)];
        let base = [-1.0, -1.0, -1.0, 0.0];
        let mut seeded = WarmSpfa::new(4, &arcs);
        seeded.reset_zero();
        assert!(matches!(seeded.relax(|id| base[id], 1e-12), RelaxOutcome::Converged));
        let mut full = seeded.clone();

        let tight = [-2.5, -1.0, -1.0, 0.0];
        assert!(matches!(
            seeded.relax_seeded(|id| tight[id], 1e-12, usize::MAX, &[0]),
            Some(RelaxOutcome::Converged)
        ));
        assert!(matches!(full.relax(|id| tight[id], 1e-12), RelaxOutcome::Converged));
        assert_eq!(seeded.dist(), full.dist());
        assert_eq!(seeded.dist(), &[0.0, -2.5, -3.5, -4.5]);
        // The whole downstream region moved: 1, 2 and 3.
        assert_eq!(seeded.last_affected(), 3);
    }

    #[test]
    fn seeded_relax_finds_cycle_through_changed_arc() {
        let arcs = [(0usize, 1usize), (1, 0)];
        let mut warm = WarmSpfa::new(2, &arcs);
        warm.reset_zero();
        let base = [1.0, -0.5];
        assert!(matches!(warm.relax(|id| base[id], 1e-12), RelaxOutcome::Converged));
        // Tighten arc 1 so the 2-cycle sums to −1; seed only arc 1.
        let tight = [1.0, -2.0];
        assert!(matches!(
            warm.relax_seeded(|id| tight[id], 1e-12, usize::MAX, &[1]),
            Some(RelaxOutcome::NegativeCycle(_))
        ));
    }

    #[test]
    fn affected_count_resets_per_call() {
        let arcs = [(0usize, 1usize)];
        let mut warm = WarmSpfa::new(2, &arcs);
        warm.reset_zero();
        assert!(matches!(warm.relax(|_| -1.0, 1e-12), RelaxOutcome::Converged));
        assert_eq!(warm.last_affected(), 1);
        // Already a fixpoint: nothing moves this time.
        assert!(matches!(warm.relax(|_| -1.0, 1e-12), RelaxOutcome::Converged));
        assert_eq!(warm.last_affected(), 0);
    }

    #[test]
    fn parallel_relax_matches_sequential_fixpoint() {
        // Random-ish layered DAG with negative weights: the Jacobi kernel
        // must reach the same canonical fixpoint as the queue relaxation
        // from the same zero start.
        let n = 50;
        let mut arcs = Vec::new();
        let mut weights = Vec::new();
        for v in 1..n {
            for step in [1usize, 7, 13] {
                if v >= step {
                    arcs.push((v - step, v));
                    weights.push(-((v % 5) as f64) + (step as f64) * 0.25 - 1.0);
                }
            }
        }
        let mut seq = WarmSpfa::new(n, &arcs);
        seq.reset_zero();
        assert!(matches!(seq.relax(|id| weights[id], 1e-12), RelaxOutcome::Converged));
        let mut par = WarmSpfa::new(n, &arcs);
        par.reset_zero();
        assert!(matches!(par.relax_parallel(|id| weights[id], 1e-12), RelaxOutcome::Converged));
        assert_eq!(seq.dist(), par.dist());
        assert_eq!(seq.last_affected(), par.last_affected());
    }

    #[test]
    fn parallel_relax_detects_negative_cycle() {
        let arcs = [(0usize, 1usize), (1, 2), (2, 0), (3, 0)];
        let weights = [1.0, -3.0, 1.0, 1.0];
        let mut warm = WarmSpfa::new(4, &arcs);
        warm.reset_zero();
        let RelaxOutcome::NegativeCycle(cycle) = warm.relax_parallel(|id| weights[id], 1e-12)
        else {
            panic!("cycle 0→1→2→0 has weight −1");
        };
        let mut ids = cycle.clone();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2]);
        let total: f64 = cycle.iter().map(|&id| weights[id]).sum();
        assert!(total < 0.0);
    }

    #[test]
    fn parallel_relax_zero_cycle_converges() {
        // A zero-weight cycle must NOT be reported as negative: the pred
        // graph stays acyclic because no arc strictly improves around it.
        let arcs = [(0usize, 1usize), (1, 0), (2, 0)];
        let weights = [1.0, -1.0, -4.0];
        let mut warm = WarmSpfa::new(3, &arcs);
        warm.reset_zero();
        assert!(matches!(warm.relax_parallel(|id| weights[id], 1e-12), RelaxOutcome::Converged));
        let mut seq = WarmSpfa::new(3, &arcs);
        seq.reset_zero();
        assert!(matches!(seq.relax(|id| weights[id], 1e-12), RelaxOutcome::Converged));
        assert_eq!(warm.dist(), seq.dist());
    }

    #[test]
    fn parallel_relax_empty_graph() {
        let mut warm = WarmSpfa::new(0, &[]);
        assert!(matches!(warm.relax_parallel(|_| 0.0, 1e-12), RelaxOutcome::Converged));
    }
}
