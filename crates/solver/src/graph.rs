//! Shared shortest-path / negative-cycle kernel.
//!
//! One SPFA (queue-based Bellman–Ford) implementation with amortized
//! negative-cycle detection replaces the divergent Bellman–Ford loops that
//! used to live in [`crate::difference`] (feasibility of difference
//! constraints and the binary-search slack tightening built on it),
//! [`crate::mcmf`] (potentials initialization, cycle canceling, optimal
//! potentials), and — through those — the skew scheduler in `rotary-core`.
//!
//! The kernel supports two source modes:
//!
//! * [`Source::Virtual`] — every node starts at distance 0, as if a
//!   virtual super-source had a zero-weight arc to each node. This is the
//!   difference-constraint / circulation setting.
//! * [`Source::Node`] — classic single-source shortest paths; unreachable
//!   nodes keep distance `+∞`.
//!
//! Negative-cycle detection is amortized: each node tracks the arc count
//! of its current tree path; when that reaches `n`, the path must revisit
//! a node, so walking the predecessor chain `n` steps lands inside a
//! negative cycle which is then extracted arc-by-arc. Consumers that
//! cancel cycles (min-cost circulation) map the returned arc ids back to
//! their own arcs via insertion order.
//!
//! Adjacency is stored as a [`CsrMatrix`] built once per [`SpfaGraph::run`]
//! from the arc list (entry slots map back to arc ids through the CSR
//! permutation), so the scan over a node's out-arcs is two contiguous
//! slices.

use crate::sparse::CsrMatrix;
use std::collections::VecDeque;

/// Where shortest paths start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// Virtual super-source: all nodes start at distance 0.
    Virtual,
    /// Single source node; all other nodes start at `+∞`.
    Node(usize),
}

/// Shortest-path tree produced by a converged [`SpfaGraph::run`].
#[derive(Debug, Clone)]
pub struct ShortestPaths {
    /// Distance per node (`+∞` for nodes unreachable from the source).
    pub dist: Vec<f64>,
    /// Predecessor arc id per node (`None` for sources / unreached nodes).
    pub pred: Vec<Option<u32>>,
}

/// A negative cycle found during relaxation.
#[derive(Debug, Clone)]
pub struct NegativeCycle {
    /// Arc ids around the cycle, in forward (head-to-tail) order.
    pub arcs: Vec<usize>,
    /// Distance labels at the moment of detection — not shortest-path
    /// distances (those do not exist), but a consistent partial relaxation
    /// useful as approximate potentials.
    pub dist: Vec<f64>,
}

/// Outcome of a [`SpfaGraph::run`].
#[derive(Debug, Clone)]
pub enum SpfaResult {
    /// Relaxation converged; shortest paths exist.
    Shortest(ShortestPaths),
    /// A negative cycle was detected.
    NegativeCycle(NegativeCycle),
}

impl SpfaResult {
    /// The shortest paths, or `None` if a negative cycle was found.
    pub fn shortest(self) -> Option<ShortestPaths> {
        match self {
            SpfaResult::Shortest(sp) => Some(sp),
            SpfaResult::NegativeCycle(_) => None,
        }
    }

    /// The distance labels regardless of outcome (exact on convergence,
    /// the partial relaxation snapshot on a negative cycle).
    pub fn into_dist(self) -> Vec<f64> {
        match self {
            SpfaResult::Shortest(sp) => sp.dist,
            SpfaResult::NegativeCycle(nc) => nc.dist,
        }
    }
}

/// A directed graph with `f64` arc weights for SPFA shortest paths.
///
/// # Examples
///
/// ```
/// use rotary_solver::graph::{Source, SpfaGraph, SpfaResult};
///
/// let mut g = SpfaGraph::new(3);
/// g.add_arc(0, 1, 2.0);
/// g.add_arc(1, 2, -1.0);
/// g.add_arc(0, 2, 5.0);
/// let sp = g.run(Source::Node(0), 1e-12).shortest().expect("no cycle");
/// assert_eq!(sp.dist, vec![0.0, 2.0, 1.0]);
///
/// g.add_arc(2, 1, -1.0); // 1 → 2 → 1 sums to −2: negative cycle
/// assert!(matches!(g.run(Source::Node(0), 1e-12), SpfaResult::NegativeCycle(_)));
/// ```
#[derive(Debug, Clone)]
pub struct SpfaGraph {
    n: usize,
    arcs: Vec<(u32, u32, f64)>,
}

impl SpfaGraph {
    /// Creates a graph with `n` nodes and no arcs.
    pub fn new(n: usize) -> Self {
        Self { n, arcs: Vec::new() }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of arcs.
    pub fn num_arcs(&self) -> usize {
        self.arcs.len()
    }

    /// Adds an arc `from → to` with the given weight; returns its id
    /// (sequential, by insertion order).
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn add_arc(&mut self, from: usize, to: usize, weight: f64) -> usize {
        assert!(from < self.n && to < self.n, "arc ({from}, {to}) out of range");
        self.arcs.push((from as u32, to as u32, weight));
        self.arcs.len() - 1
    }

    /// The `(from, to, weight)` of arc `id`.
    pub fn arc(&self, id: usize) -> (usize, usize, f64) {
        let (f, t, w) = self.arcs[id];
        (f as usize, t as usize, w)
    }

    /// Runs SPFA from `source`. An arc relaxes only when it improves the
    /// head's distance by more than `eps` (the tolerance consumers used in
    /// their hand-rolled loops: `1e-12` for difference constraints, `1e-9`
    /// / `1e-7` for flow potentials and cycle canceling).
    pub fn run(&self, source: Source, eps: f64) -> SpfaResult {
        let n = self.n;
        let triplets: Vec<(usize, usize, f64)> =
            self.arcs.iter().map(|&(f, t, w)| (f as usize, t as usize, w)).collect();
        let (adj, entry_arc) = CsrMatrix::from_triplets_with_perm(n, n.max(1), &triplets);

        let mut dist = vec![f64::INFINITY; n];
        let mut pred: Vec<Option<u32>> = vec![None; n];
        // Arc count of the current tree path; ≥ n ⇒ the path revisits a
        // node ⇒ negative cycle.
        let mut path_len = vec![0u32; n];
        let mut in_queue = vec![false; n];
        let mut queue: VecDeque<u32> = VecDeque::with_capacity(n);
        match source {
            Source::Virtual => {
                dist.iter_mut().for_each(|d| *d = 0.0);
                in_queue.iter_mut().for_each(|q| *q = true);
                queue.extend((0..n).map(|v| v as u32));
            }
            Source::Node(s) => {
                assert!(s < n, "source {s} out of range");
                dist[s] = 0.0;
                in_queue[s] = true;
                queue.push_back(s as u32);
            }
        }

        while let Some(u) = queue.pop_front() {
            let u = u as usize;
            in_queue[u] = false;
            let du = dist[u];
            if du.is_infinite() {
                continue;
            }
            let range = adj.row_range(u);
            let (heads, weights) = adj.row(u);
            for (k, (&v, &w)) in heads.iter().zip(weights).enumerate() {
                let v = v as usize;
                let cand = du + w;
                if cand + eps < dist[v] {
                    dist[v] = cand;
                    pred[v] = Some(entry_arc[range.start + k]);
                    path_len[v] = path_len[u] + 1;
                    if path_len[v] >= n as u32 {
                        return SpfaResult::NegativeCycle(NegativeCycle {
                            arcs: self.extract_cycle(&pred, v),
                            dist,
                        });
                    }
                    if !in_queue[v] {
                        in_queue[v] = true;
                        queue.push_back(v as u32);
                    }
                }
            }
        }
        SpfaResult::Shortest(ShortestPaths { dist, pred })
    }

    /// Walks the predecessor chain from a node whose tree path reached
    /// length `n` and returns the arcs of the cycle it must contain.
    fn extract_cycle(&self, pred: &[Option<u32>], mut v: usize) -> Vec<usize> {
        // A tree path of length ≥ n revisits a node, so n backward steps
        // from its head stay inside the cycle.
        for _ in 0..self.n {
            let ai = pred[v].expect("length-n tree path has predecessors") as usize;
            v = self.arcs[ai].0 as usize;
        }
        let start = v;
        let mut arcs = Vec::new();
        loop {
            let ai = pred[v].expect("cycle arc") as usize;
            arcs.push(ai);
            v = self.arcs[ai].0 as usize;
            if v == start {
                break;
            }
        }
        arcs.reverse();
        arcs
    }
}

/// Outcome of one [`WarmSpfa::relax`] round.
#[derive(Debug, Clone)]
pub enum RelaxOutcome {
    /// All arcs satisfy `dist[head] ≤ dist[tail] + w + eps`: the labels are
    /// a feasibility certificate for the current weights.
    Converged,
    /// A negative cycle was detected; arc ids in forward order.
    NegativeCycle(Vec<usize>),
}

/// Warm-startable SPFA over a **fixed topology** with per-round weights.
///
/// Where [`SpfaGraph::run`] rebuilds its CSR adjacency and relaxes every
/// node from a cold virtual source on each call, `WarmSpfa` builds the CSR
/// structure once from the arc list and exposes relaxation as an
/// incremental operation on persistent distance labels:
///
/// * weights are supplied per round as a closure over the arc id (so a
///   parametric tightening `b − m·t`, or a capacity-filtered residual
///   network, needs no graph rebuild — return `f64::INFINITY` to disable
///   an arc for the round);
/// * [`Self::relax`] seeds its queue with only the tails of arcs the
///   current labels violate, so a re-check after a small parameter change
///   touches a wavefront, not the whole graph;
/// * labels persist across rounds (and can be saved/restored through
///   [`Self::dist`] / [`Self::load_dist`]), which is what makes carrying
///   potentials across probes, cancellations, and flow iterations cheap.
///
/// Starting relaxation from *any* finite labels is sound: on convergence
/// the labels certify that no arc is violated (hence every cycle has
/// non-negative weight up to `n·eps`), and a sufficiently negative cycle
/// always keeps some arc violated, so it cannot converge past one.
/// Predecessors and tree-path lengths are reset every round, so an
/// extracted cycle only contains arcs relaxed *this* round.
#[derive(Debug, Clone)]
pub struct WarmSpfa {
    n: usize,
    tails: Vec<u32>,
    heads: Vec<u32>,
    adj: CsrMatrix,
    entry_arc: Vec<u32>,
    dist: Vec<f64>,
    pred: Vec<u32>,
    path_len: Vec<u32>,
    in_queue: Vec<bool>,
}

const NO_PRED: u32 = u32::MAX;

impl WarmSpfa {
    /// Builds the engine over `n` nodes and the given `(tail, head)` arcs.
    /// Arc ids are positions in `arcs`.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn new(n: usize, arcs: &[(usize, usize)]) -> Self {
        let triplets: Vec<(usize, usize, f64)> = arcs
            .iter()
            .map(|&(f, t)| {
                assert!(f < n && t < n, "arc ({f}, {t}) out of range");
                (f, t, 0.0)
            })
            .collect();
        let (adj, entry_arc) = CsrMatrix::from_triplets_with_perm(n, n.max(1), &triplets);
        Self {
            n,
            tails: arcs.iter().map(|&(f, _)| f as u32).collect(),
            heads: arcs.iter().map(|&(_, t)| t as u32).collect(),
            adj,
            entry_arc,
            dist: vec![0.0; n],
            pred: vec![NO_PRED; n],
            path_len: vec![0; n],
            in_queue: vec![false; n],
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of arcs.
    pub fn num_arcs(&self) -> usize {
        self.tails.len()
    }

    /// The `(tail, head)` of arc `id`.
    pub fn arc_endpoints(&self, id: usize) -> (usize, usize) {
        (self.tails[id] as usize, self.heads[id] as usize)
    }

    /// The current distance labels.
    pub fn dist(&self) -> &[f64] {
        &self.dist
    }

    /// Overwrites the labels (e.g. restoring a snapshot after a failed
    /// probe, or seeding potentials carried from an earlier system).
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != n`.
    pub fn load_dist(&mut self, labels: &[f64]) {
        assert_eq!(labels.len(), self.n, "label vector length mismatch");
        self.dist.copy_from_slice(labels);
    }

    /// Resets every label to 0 — the cold virtual-source start whose
    /// converged labels are the canonical (componentwise-maximal ≤ 0)
    /// difference-constraint solution.
    pub fn reset_zero(&mut self) {
        self.dist.iter_mut().for_each(|d| *d = 0.0);
    }

    /// Runs one relaxation round under `weight` (indexed by arc id;
    /// `f64::INFINITY` disables an arc). Only arcs violated by the current
    /// labels seed the queue. On [`RelaxOutcome::NegativeCycle`] the labels
    /// hold a partial relaxation snapshot — callers that need the
    /// pre-round labels back must save them first.
    pub fn relax(&mut self, weight: impl Fn(usize) -> f64, eps: f64) -> RelaxOutcome {
        self.relax_budgeted(weight, eps, usize::MAX).expect("unlimited budget cannot run out")
    }

    /// [`Self::relax`] with a cap on queue pops. Returns `None` when the
    /// cap is hit before the round converges or finds a cycle.
    ///
    /// Near-fixpoint labels are the warm start's worst case: every arc of
    /// a *marginally* violated cycle improves its head by a sliver per
    /// lap, so the `path_len ≥ n` certificate only fires after up to `n`
    /// laps — Θ(n·arcs) work for a verdict a zero-label start reaches in
    /// one sweep. A budget lets callers bail out of that creep and restart
    /// cold, bounding any probe at budget + one cold round. On `None` the
    /// labels hold a partial snapshot, exactly as on a cycle.
    pub fn relax_budgeted(
        &mut self,
        weight: impl Fn(usize) -> f64,
        eps: f64,
        max_pops: usize,
    ) -> Option<RelaxOutcome> {
        let n = self.n;
        self.pred.iter_mut().for_each(|p| *p = NO_PRED);
        self.path_len.iter_mut().for_each(|l| *l = 0);
        self.in_queue.iter_mut().for_each(|q| *q = false);
        let mut queue: VecDeque<u32> = VecDeque::new();
        for id in 0..self.tails.len() {
            let w = weight(id);
            if !w.is_finite() {
                continue;
            }
            let (f, t) = (self.tails[id] as usize, self.heads[id] as usize);
            if self.dist[f] + w + eps < self.dist[t] && !self.in_queue[f] {
                self.in_queue[f] = true;
                queue.push_back(f as u32);
            }
        }

        let mut pops = 0usize;
        while let Some(u) = queue.pop_front() {
            if pops >= max_pops {
                return None;
            }
            pops += 1;
            let u = u as usize;
            self.in_queue[u] = false;
            let du = self.dist[u];
            if du.is_infinite() {
                continue;
            }
            let range = self.adj.row_range(u);
            let (heads, _) = self.adj.row(u);
            for (k, &v) in heads.iter().enumerate() {
                let id = self.entry_arc[range.start + k] as usize;
                let w = weight(id);
                if !w.is_finite() {
                    continue;
                }
                let v = v as usize;
                let cand = du + w;
                if cand + eps < self.dist[v] {
                    self.dist[v] = cand;
                    self.pred[v] = id as u32;
                    self.path_len[v] = self.path_len[u] + 1;
                    if self.path_len[v] >= n as u32 {
                        return Some(RelaxOutcome::NegativeCycle(self.extract_cycle(v)));
                    }
                    if !self.in_queue[v] {
                        self.in_queue[v] = true;
                        queue.push_back(v as u32);
                    }
                }
            }
        }
        Some(RelaxOutcome::Converged)
    }

    /// Walks the predecessor chain from a node whose tree path reached
    /// length `n` and returns the arcs of the cycle it must contain (same
    /// argument as [`SpfaGraph::extract_cycle`]; predecessors are reset per
    /// round, so the chain only contains arcs relaxed this round).
    fn extract_cycle(&self, mut v: usize) -> Vec<usize> {
        for _ in 0..self.n {
            let ai = self.pred[v];
            assert_ne!(ai, NO_PRED, "length-n tree path has predecessors");
            v = self.tails[ai as usize] as usize;
        }
        let start = v;
        let mut arcs = Vec::new();
        loop {
            let ai = self.pred[v] as usize;
            arcs.push(ai);
            v = self.tails[ai] as usize;
            if v == start {
                break;
            }
        }
        arcs.reverse();
        arcs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_source_distances() {
        let mut g = SpfaGraph::new(4);
        g.add_arc(0, 1, 1.0);
        g.add_arc(1, 2, 2.0);
        g.add_arc(0, 2, 5.0);
        let sp = g.run(Source::Node(0), 1e-12).shortest().expect("no cycle");
        assert_eq!(sp.dist, vec![0.0, 1.0, 3.0, f64::INFINITY]);
        assert_eq!(sp.pred[2], Some(1));
    }

    #[test]
    fn virtual_source_handles_negative_arcs() {
        let mut g = SpfaGraph::new(3);
        g.add_arc(0, 1, -2.0);
        g.add_arc(1, 2, -3.0);
        let sp = g.run(Source::Virtual, 1e-12).shortest().expect("no cycle");
        assert_eq!(sp.dist, vec![0.0, -2.0, -5.0]);
    }

    #[test]
    fn negative_cycle_arcs_are_exact() {
        let mut g = SpfaGraph::new(4);
        g.add_arc(3, 0, 1.0);
        let a = g.add_arc(0, 1, 1.0);
        let b = g.add_arc(1, 2, -3.0);
        let c = g.add_arc(2, 0, 1.0);
        let SpfaResult::NegativeCycle(nc) = g.run(Source::Node(3), 1e-12) else {
            panic!("cycle 0→1→2→0 has weight −1");
        };
        let mut arcs = nc.arcs.clone();
        arcs.sort_unstable();
        assert_eq!(arcs, vec![a, b, c]);
        let total: f64 = nc.arcs.iter().map(|&id| g.arc(id).2).sum();
        assert!(total < 0.0, "cycle weight {total}");
    }

    #[test]
    fn cycle_not_reachable_from_source_is_ignored() {
        let mut g = SpfaGraph::new(4);
        g.add_arc(0, 1, 1.0);
        // Negative cycle on 2 ↔ 3, unreachable from node 0.
        g.add_arc(2, 3, -1.0);
        g.add_arc(3, 2, -1.0);
        let sp = g.run(Source::Node(0), 1e-12).shortest().expect("unreachable cycle");
        assert_eq!(sp.dist[1], 1.0);
        assert!(sp.dist[2].is_infinite());
    }

    #[test]
    fn virtual_source_sees_every_cycle() {
        let mut g = SpfaGraph::new(4);
        g.add_arc(0, 1, 1.0);
        g.add_arc(2, 3, -1.0);
        g.add_arc(3, 2, -1.0);
        assert!(matches!(g.run(Source::Virtual, 1e-12), SpfaResult::NegativeCycle(_)));
    }

    #[test]
    fn zero_cycle_converges() {
        let mut g = SpfaGraph::new(2);
        g.add_arc(0, 1, 1.0);
        g.add_arc(1, 0, -1.0);
        let sp = g.run(Source::Virtual, 1e-12).shortest().expect("zero cycle is fine");
        assert!((sp.dist[0] - sp.dist[1] + 1.0).abs() < 1e-9 || sp.dist == vec![0.0, 0.0]);
    }

    #[test]
    fn eps_suppresses_sub_tolerance_cycles() {
        let mut g = SpfaGraph::new(2);
        g.add_arc(0, 1, 1e-9);
        g.add_arc(1, 0, -2e-9);
        // Total weight −1e−9, below the 1e−7 canceling tolerance: converges.
        assert!(g.run(Source::Virtual, 1e-7).shortest().is_some());
    }

    #[test]
    fn empty_graph() {
        let g = SpfaGraph::new(0);
        assert!(g.run(Source::Virtual, 1e-12).shortest().is_some());
    }

    #[test]
    fn warm_relax_from_zero_matches_cold_spfa() {
        let arcs = [(0usize, 1usize), (1, 2), (0, 2), (2, 3)];
        let weights = [2.0, -1.0, 5.0, 0.5];
        let mut g = SpfaGraph::new(4);
        for (&(f, t), &w) in arcs.iter().zip(&weights) {
            g.add_arc(f, t, w);
        }
        let cold = g.run(Source::Virtual, 1e-12).shortest().expect("no cycle").dist;

        let mut warm = WarmSpfa::new(4, &arcs);
        warm.reset_zero();
        assert!(matches!(warm.relax(|id| weights[id], 1e-12), RelaxOutcome::Converged));
        assert_eq!(warm.dist(), &cold[..]);
    }

    #[test]
    fn warm_restart_after_tightening_touches_only_the_wavefront() {
        // Chain 0 → 1 → 2 with a side window; tightening the first bound
        // re-seeds only its tail.
        let arcs = [(0usize, 1usize), (1, 2), (0, 2)];
        let mut warm = WarmSpfa::new(3, &arcs);
        warm.reset_zero();
        let base = [-1.0, -1.0, 0.0];
        assert!(matches!(warm.relax(|id| base[id], 1e-12), RelaxOutcome::Converged));
        assert_eq!(warm.dist(), &[0.0, -1.0, -2.0]);
        // Tighten every bound by 0.5 and re-relax from the previous labels:
        // the fixed point must equal the cold solve of the tightened system.
        let tight = [-1.5, -1.5, -0.5];
        assert!(matches!(warm.relax(|id| tight[id], 1e-12), RelaxOutcome::Converged));
        assert_eq!(warm.dist(), &[0.0, -1.5, -3.0]);
    }

    #[test]
    fn warm_detects_negative_cycle_with_exact_arcs() {
        let arcs = [(0usize, 1usize), (1, 2), (2, 0), (3, 0)];
        let weights = [1.0, -3.0, 1.0, 1.0];
        let mut warm = WarmSpfa::new(4, &arcs);
        warm.reset_zero();
        let RelaxOutcome::NegativeCycle(cycle) = warm.relax(|id| weights[id], 1e-12) else {
            panic!("cycle 0→1→2→0 has weight −1");
        };
        let mut ids = cycle.clone();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2]);
        let total: f64 = cycle.iter().map(|&id| weights[id]).sum();
        assert!(total < 0.0);
    }

    #[test]
    fn infinite_weight_disables_an_arc() {
        // The only negative cycle runs through a disabled arc.
        let arcs = [(0usize, 1usize), (1, 0)];
        let mut warm = WarmSpfa::new(2, &arcs);
        warm.reset_zero();
        let w = [-2.0, f64::INFINITY];
        assert!(matches!(warm.relax(|id| w[id], 1e-12), RelaxOutcome::Converged));
        assert_eq!(warm.dist(), &[0.0, -2.0]);
        // Re-enable it: now 0→1→0 sums to −1.
        let w2 = [-2.0, 1.0];
        assert!(matches!(warm.relax(|id| w2[id], 1e-12), RelaxOutcome::NegativeCycle(_)));
    }

    #[test]
    fn load_dist_restores_a_snapshot() {
        let arcs = [(0usize, 1usize)];
        let mut warm = WarmSpfa::new(2, &arcs);
        warm.reset_zero();
        assert!(matches!(warm.relax(|_| -1.0, 1e-12), RelaxOutcome::Converged));
        let snapshot = warm.dist().to_vec();
        assert!(matches!(warm.relax(|_| -5.0, 1e-12), RelaxOutcome::Converged));
        assert_ne!(warm.dist(), &snapshot[..]);
        warm.load_dist(&snapshot);
        assert_eq!(warm.dist(), &snapshot[..]);
    }

    #[test]
    fn warm_empty_graph() {
        let mut warm = WarmSpfa::new(0, &[]);
        warm.reset_zero();
        assert!(matches!(warm.relax(|_| 0.0, 1e-12), RelaxOutcome::Converged));
    }
}
