//! From-scratch optimization kernels used by the rotary-clocking flow.
//!
//! The paper relies on three external solvers: Soplex for linear programs,
//! a generic public-domain ILP solver (GLPK) for the Table I comparison, and
//! a min-cost network-flow code for flip-flop assignment. None of these are
//! available as offline Rust bindings, so this crate implements the needed
//! kernels directly:
//!
//! * [`sparse`] — the shared sparse linear-algebra layer: CSR matrices,
//!   left-looking sparse LU with partial pivoting, and the eta-updated
//!   [`sparse::BasisFactorization`] the simplex runs on.
//! * [`graph`] — the shared shortest-path kernel: SPFA (queue-based
//!   Bellman–Ford) with amortized negative-cycle detection, used by
//!   [`difference`], [`mcmf`] and the skew scheduler in `rotary-core`.
//! * [`lp`] — a two-phase (Big-M) revised primal simplex with a sparse LU
//!   basis factorization, sparse columns, Bland anti-cycling fallback and
//!   periodic refactorization. Devex partial pricing by default (full
//!   Dantzig scan kept as the property-tested reference) and optimal-basis
//!   warm starts for the structurally identical re-solves of the flow
//!   loop. Exact enough for every LP the flow solves (assignment LP
//!   relaxations and small skew LPs).
//! * [`par`] — deterministic scoped-thread fan-out ([`par::par_map`])
//!   shared by the pricing scan here and the tapping kernels in
//!   `rotary-core`.
//! * [`mcmf`] — min-cost max-flow via successive shortest paths with
//!   Johnson potentials, plus two min-cost *circulation* engines for the
//!   weighted-sum skew optimization dual: the one-shot `f64` reference and
//!   the incremental integer-cost [`mcmf::Circulation`] (CSR residual
//!   storage, bulk augmentation, warm re-solves) the flow runs on.
//! * [`difference`] — feasibility and optimization of difference-constraint
//!   systems (`y_i − y_j ≤ b_ij`) via shortest paths; the graph-based
//!   engine behind max-slack and minimax skew scheduling.
//! * [`ilp`] — LP-based best-first branch & bound with a wall-clock budget,
//!   standing in for the paper's time-bounded generic ILP solver.
//! * [`rounding`] — the paper's greedy rounding procedure (Fig. 5).
//!
//! # Examples
//!
//! ```
//! use rotary_solver::lp::{LpProblem, LpStatus, RowKind};
//!
//! // minimize  -x - 2y  s.t.  x + y ≤ 4,  y ≤ 3,  x,y ≥ 0
//! let mut lp = LpProblem::minimize(vec![-1.0, -2.0]);
//! lp.add_row(RowKind::Le, 4.0, &[(0, 1.0), (1, 1.0)]);
//! lp.add_row(RowKind::Le, 3.0, &[(1, 1.0)]);
//! let sol = lp.solve();
//! assert_eq!(sol.status, LpStatus::Optimal);
//! assert!((sol.objective - (-7.0)).abs() < 1e-7); // x=1, y=3
//! ```

pub mod difference;
pub mod graph;
pub mod ilp;
pub mod lp;
pub mod mcmf;
pub mod par;
pub mod rounding;
pub mod sparse;

pub use difference::{DifferenceSystem, ParametricSystem};
pub use graph::{RelaxOutcome, ShortestPaths, SpfaGraph, SpfaResult, WarmSpfa};
pub use ilp::{BranchAndBound, IlpOutcome};
pub use lp::{LpBasis, LpProblem, LpSolution, LpStatus, Pricing, RowKind};
pub use mcmf::{
    ArcId, Circulation, CirculationStats, DijkstraStrategy, FlowNetwork, NodeId, Transportation,
    TransportationInfeasible, TransportationStats,
};
pub use par::{default_max_threads, par_map, par_map_with, ParConfig};
pub use rounding::{greedy_round, greedy_round_loaded, greedy_round_loaded_rescan};
pub use sparse::{BasisFactorization, CsrMatrix, SparseLu};
