//! Revised primal simplex on a sparse LU basis factorization.
//!
//! Design point: the LPs this workspace solves have **few rows**
//! (one per flip-flop plus one per ring, ≈ 1 800 for the largest benchmark)
//! but may have many sparse columns (one per candidate flip-flop/ring arc),
//! and every basis is extremely sparse (slacks, artificials, and assignment
//! columns with a handful of entries). The basis is therefore kept as a
//! [`crate::sparse::BasisFactorization`]: sparse LU with partial pivoting,
//! product-form eta updates per pivot, and periodic refactorization to
//! bound eta-chain length and numerical drift. FTRAN/BTRAN cost tracks the
//! basis nonzero count instead of the `O(m²)` per-pivot work of the dense
//! `m × m` inverse this module used to maintain. Bland's rule remains the
//! anti-cycling fallback when degeneracy stalls progress.
//!
//! Two pricing rules are available ([`Pricing`]): the classic full Dantzig
//! scan (the property-tested reference and the default) and Devex
//! reference weights with a partial, candidate-list scan — a rotating
//! window of columns is priced, improving columns are carried in a
//! candidate list across iterations, and a full rotation of the window
//! certifies optimality exactly like a full scan would. Reduced-cost
//! evaluation over a window fans out over [`crate::par::par_map_with`]
//! chunks, which keeps the scan deterministic regardless of thread count.
//! See the [`Pricing`] docs for the measured trade-off between the two.
//!
//! Warm starts: [`LpProblem::solve_with_basis`] accepts the optimal basis
//! of a previous, structurally identical solve ([`LpBasis`]) and
//! refactorizes it on the new coefficients instead of starting from the
//! all-artificial basis — the flow re-solves the same assignment LP every
//! iteration with slowly moving tapping loads, so most re-solves finish in
//! a handful of pivots. When the problem reports `Optimal`, the returned
//! solution is extracted *canonically*: the final basis is sorted and
//! factored fresh, so the primal values depend only on (problem data,
//! final basis set) and not on the pivot path — a warm-started solve that
//! lands on the same optimal basis as a cold solve reproduces its solution
//! to the bit.
//!
//! Infeasibility/unboundedness are detected via the Big-M composite
//! objective: artificial variables receive cost `M` scaled far above any
//! structural cost.

use crate::par::{par_map_with, ParConfig};
use crate::sparse::{BasisFactorization, CsrMatrix};
use serde::{Deserialize, Serialize};

/// Constraint sense of an LP row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RowKind {
    /// `a·x ≤ b`
    Le,
    /// `a·x = b`
    Eq,
    /// `a·x ≥ b`
    Ge,
}

/// Solver outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LpStatus {
    /// Optimal solution found.
    Optimal,
    /// No feasible point exists.
    Infeasible,
    /// Objective unbounded below.
    Unbounded,
    /// Iteration limit hit before convergence (solution is the incumbent).
    IterationLimit,
    /// The basis went numerically singular and could not be refactorized —
    /// progress is impossible; the solution is the last incumbent. Distinct
    /// from [`LpStatus::IterationLimit`] so callers can tell "ran out of
    /// budget" from "the arithmetic broke down".
    NumericalBreakdown,
}

/// Entering-variable pricing rule of the revised simplex.
///
/// Both rules are exact — they certify the same optima (property-tested in
/// `tests/equivalence.rs`) — and differ only in pivot path and per-iteration
/// cost. The default is [`Pricing::Dantzig`]: on the assignment relaxations
/// this codebase actually solves, columns carry ~2 nonzeros each, so a full
/// pricing scan is nearly free and Dantzig's globally best entering column
/// yields a measurably shorter pivot path than the windowed candidate list
/// (s38417 K=6: 4 065 vs 6 799 pivots). [`Pricing::DevexPartial`] wins on
/// instances whose per-iteration pricing cost is the bottleneck (the
/// block-dense synthetic in `benches/kernels.rs` runs ~1.3× faster under
/// it); select it explicitly via [`LpProblem::set_pricing`] for such shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Pricing {
    /// Full Dantzig scan: every nonbasic column is priced every iteration
    /// and the most negative reduced cost enters. `O(nnz(A))` per
    /// iteration; the property-tested reference rule and the default.
    #[default]
    Dantzig,
    /// Devex reference weights with a partial, candidate-list scan: price
    /// a rotating window of columns, carry the improving ones across
    /// iterations, fall back to scanning further windows only when the
    /// list runs dry. Exact (optimality is only declared after a full
    /// rotation finds no improving column) but prices a small fraction of
    /// the columns on a typical iteration.
    DevexPartial,
}

/// An optimal simplex basis in canonical (sorted) form, as returned by
/// [`LpProblem::solve_with_basis`]. Opaque to callers; feed it back into a
/// later solve of a *structurally identical* problem (same rows, same
/// columns, coefficients may move) to warm-start it. A basis that no
/// longer factors or is primal infeasible on the new coefficients is
/// silently discarded and the solve falls back to a cold start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LpBasis {
    cols: Vec<usize>,
}

impl LpBasis {
    /// Number of rows the basis spans.
    pub fn num_rows(&self) -> usize {
        self.cols.len()
    }
}

/// Result of [`LpProblem::solve`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LpSolution {
    /// Outcome status.
    pub status: LpStatus,
    /// Primal values of the structural variables (length = number of
    /// variables of the problem). Meaningful for `Optimal` and
    /// `IterationLimit`.
    pub x: Vec<f64>,
    /// Objective value `c·x`.
    pub objective: f64,
    /// Simplex iterations performed.
    pub iterations: usize,
}

/// A linear program `minimize c·x subject to rows, x ≥ 0 (or free)`.
///
/// Build with [`LpProblem::minimize`], add rows with [`LpProblem::add_row`],
/// mark free variables with [`LpProblem::set_free`], then [`LpProblem::solve`].
///
/// # Examples
///
/// ```
/// use rotary_solver::lp::{LpProblem, LpStatus, RowKind};
///
/// // minimize x + y  s.t.  x + y ≥ 2, x − y = 0
/// let mut lp = LpProblem::minimize(vec![1.0, 1.0]);
/// lp.add_row(RowKind::Ge, 2.0, &[(0, 1.0), (1, 1.0)]);
/// lp.add_row(RowKind::Eq, 0.0, &[(0, 1.0), (1, -1.0)]);
/// let s = lp.solve();
/// assert_eq!(s.status, LpStatus::Optimal);
/// assert!((s.x[0] - 1.0).abs() < 1e-7 && (s.x[1] - 1.0).abs() < 1e-7);
/// ```
#[derive(Debug, Clone)]
pub struct LpProblem {
    obj: Vec<f64>,
    free: Vec<bool>,
    rows: Vec<(RowKind, f64)>,
    /// Column-sparse structural coefficients: `cols[j] = [(row, coeff)]`.
    cols: Vec<Vec<(usize, f64)>>,
    max_iters: usize,
    pricing: Pricing,
    par: ParConfig,
}

impl LpProblem {
    /// Creates a minimization problem with the given objective vector; all
    /// variables default to `x_j ≥ 0`.
    pub fn minimize(objective: Vec<f64>) -> Self {
        let n = objective.len();
        Self {
            obj: objective,
            free: vec![false; n],
            rows: Vec::new(),
            cols: vec![Vec::new(); n],
            max_iters: 200_000,
            pricing: Pricing::default(),
            par: ParConfig::fine_grained(),
        }
    }

    /// Number of structural variables.
    pub fn num_vars(&self) -> usize {
        self.obj.len()
    }

    /// Number of constraint rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Declares variable `j` free (unrestricted in sign).
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn set_free(&mut self, j: usize) {
        self.free[j] = true;
    }

    /// Caps the number of simplex iterations (default 200 000).
    pub fn set_iteration_limit(&mut self, limit: usize) {
        self.max_iters = limit;
    }

    /// Selects the pricing rule (default [`Pricing::Dantzig`]).
    pub fn set_pricing(&mut self, pricing: Pricing) {
        self.pricing = pricing;
    }

    /// Overrides the fan-out thresholds of the pricing scan (default
    /// [`ParConfig::fine_grained`] — the per-column work is a short dot
    /// product, so fanning out only pays off for very wide scans).
    pub fn set_par_config(&mut self, par: ParConfig) {
        self.par = par;
    }

    /// Adds a row `Σ coeffs · x {≤,=,≥} rhs` and returns its index.
    ///
    /// # Panics
    ///
    /// Panics if any referenced variable is out of range.
    pub fn add_row(&mut self, kind: RowKind, rhs: f64, coeffs: &[(usize, f64)]) -> usize {
        let r = self.rows.len();
        self.rows.push((kind, rhs));
        for &(j, a) in coeffs {
            assert!(j < self.cols.len(), "variable {j} out of range");
            if a != 0.0 {
                self.cols[j].push((r, a));
            }
        }
        r
    }

    /// Solves the LP from a cold (all-artificial) start.
    pub fn solve(&self) -> LpSolution {
        self.solve_with_basis(None).0
    }

    /// Solves the LP, optionally warm-starting from the basis of a
    /// previous solve of a structurally identical problem. Returns the
    /// solution together with the final basis (in canonical sorted form
    /// when optimal), to be fed into the next re-solve.
    pub fn solve_with_basis(&self, warm: Option<&LpBasis>) -> (LpSolution, Option<LpBasis>) {
        Simplex::new(self).run(warm)
    }
}

/// Internal computational form: all rows normalized to `b ≥ 0`; columns are
/// structural (with free variables split), then slack/surplus, then
/// artificial.
struct Simplex<'a> {
    problem: &'a LpProblem,
    m: usize,
    /// Column-sparse matrix including slacks and artificials.
    cols: Vec<Vec<(usize, f64)>>,
    cost: Vec<f64>,
    /// Map from internal column to (structural var, sign) if structural.
    var_of_col: Vec<Option<(usize, f64)>>,
    artificial_start: usize,
    rhs: Vec<f64>,
}

const EPS: f64 = 1e-9;
const PIVOT_EPS: f64 = 1e-7;

/// Devex weights are clamped here; runaway reference weights would starve
/// legitimately improving columns of merit.
const WEIGHT_CAP: f64 = 1e12;
/// Lower bound on the rotating pricing-window width.
const SECTION_MIN: usize = 256;
/// Upper bound on the carried candidate list.
const CANDIDATE_CAP: usize = 256;
/// A refill keeps scanning windows until it has at least this many
/// improving columns (or has priced every column). Stopping at the first
/// non-empty window draws entering columns from one narrow slice of the
/// matrix and measurably lengthens the pivot path on the real assignment
/// relaxations.
const REFILL_TARGET: usize = 256;

/// Devex reference weights plus the partial-pricing candidate list.
struct Devex {
    weights: Vec<f64>,
    candidates: Vec<usize>,
    /// Next column the rotating window scan starts from.
    cursor: usize,
}

impl Devex {
    fn new(ncols: usize) -> Self {
        Self { weights: vec![1.0; ncols], candidates: Vec::new(), cursor: 0 }
    }

    /// Picks the entering column: re-price the carried candidates, refill
    /// from the rotating window when the list runs dry, and return the
    /// best Devex merit `d²/w`. `None` ⇔ provably optimal (a full window
    /// rotation found no improving column).
    fn select(&mut self, sx: &Simplex, y: &[f64], in_basis: &[bool]) -> Option<usize> {
        let mut live = std::mem::take(&mut self.candidates);
        live.retain(|&j| !in_basis[j] && sx.reduced_cost(y, j) < -PIVOT_EPS);
        self.candidates = live;
        if self.candidates.is_empty() {
            self.refill(sx, y, in_basis);
        }
        let mut best: Option<(f64, usize)> = None;
        for &j in &self.candidates {
            let d = sx.reduced_cost(y, j);
            let merit = d * d / self.weights[j];
            if best.is_none_or(|(bm, bj)| merit > bm || (merit == bm && j < bj)) {
                best = Some((merit, j));
            }
        }
        best.map(|(_, j)| j)
    }

    /// Scans rotating windows until an improving column appears or every
    /// column has been priced once (⇒ optimality is certified exactly).
    fn refill(&mut self, sx: &Simplex, y: &[f64], in_basis: &[bool]) {
        let n = sx.cols.len();
        let section = (n / 16).max(SECTION_MIN).min(n);
        let mut scanned = 0usize;
        while scanned < n && self.candidates.len() < REFILL_TARGET {
            let len = section.min(n - scanned);
            let lo = self.cursor;
            let part = len.min(n - lo);
            self.scan_range(sx, y, in_basis, lo, lo + part);
            if part < len {
                self.scan_range(sx, y, in_basis, 0, len - part);
            }
            self.cursor = (lo + len) % n;
            scanned += len;
        }
        if self.candidates.len() > CANDIDATE_CAP {
            let mut scored: Vec<(f64, usize)> = self
                .candidates
                .iter()
                .map(|&j| {
                    let d = sx.reduced_cost(y, j);
                    (d * d / self.weights[j], j)
                })
                .collect();
            scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
            scored.truncate(CANDIDATE_CAP);
            self.candidates = scored.into_iter().map(|(_, j)| j).collect();
            self.candidates.sort_unstable();
        }
    }

    fn scan_range(&mut self, sx: &Simplex, y: &[f64], in_basis: &[bool], lo: usize, hi: usize) {
        let ds = sx.reduced_costs_range(y, in_basis, lo, hi);
        for (k, d) in ds.into_iter().enumerate() {
            if d < -PIVOT_EPS {
                self.candidates.push(lo + k);
            }
        }
    }

    /// Forrest–Goldfarb reference-weight update after a pivot (entering
    /// `q`, leaving variable `leaving`, pivot element `α_rq`), restricted
    /// to the candidate list — the only columns whose merit is consulted
    /// before their next full re-pricing. `rho` is `e_rᵀ·B⁻¹` (the pivot
    /// row of the basis inverse, by original row index), so
    /// `α_rj = rho·A_j`. (Sweeping *all* nonbasic weights instead was
    /// measured on the s38417/s35932 relaxations: it shortens the pivot
    /// path by under 10% while doubling per-pivot cost — a net loss.)
    fn pivot_update(&mut self, sx: &Simplex, rho: &[f64], q: usize, leaving: usize, alpha_rq: f64) {
        let wq = self.weights[q];
        let inv = 1.0 / alpha_rq;
        for &j in &self.candidates {
            if j == q {
                continue;
            }
            let mut arj = 0.0;
            for &(r, a) in &sx.cols[j] {
                arj += rho[r] * a;
            }
            let ratio = arj * inv;
            let cand = (ratio * ratio * wq).min(WEIGHT_CAP);
            if cand > self.weights[j] {
                self.weights[j] = cand;
            }
        }
        self.weights[leaving] = (wq * inv * inv).clamp(1.0, WEIGHT_CAP);
    }
}

impl<'a> Simplex<'a> {
    fn new(problem: &'a LpProblem) -> Self {
        let m = problem.rows.len();
        // Row sign normalization: multiply rows with negative rhs by −1 and
        // flip the sense.
        let mut row_sign = vec![1.0; m];
        let mut kinds: Vec<RowKind> = Vec::with_capacity(m);
        let mut rhs = Vec::with_capacity(m);
        for (i, &(kind, b)) in problem.rows.iter().enumerate() {
            if b < 0.0 {
                row_sign[i] = -1.0;
                rhs.push(-b);
                kinds.push(match kind {
                    RowKind::Le => RowKind::Ge,
                    RowKind::Ge => RowKind::Le,
                    RowKind::Eq => RowKind::Eq,
                });
            } else {
                rhs.push(b);
                kinds.push(kind);
            }
        }

        let mut cols = Vec::new();
        let mut cost = Vec::new();
        let mut var_of_col = Vec::new();
        let mut max_abs_cost: f64 = 1.0;

        for j in 0..problem.num_vars() {
            let col: Vec<(usize, f64)> =
                problem.cols[j].iter().map(|&(r, a)| (r, a * row_sign[r])).collect();
            max_abs_cost = max_abs_cost.max(problem.obj[j].abs());
            cols.push(col.clone());
            cost.push(problem.obj[j]);
            var_of_col.push(Some((j, 1.0)));
            if problem.free[j] {
                // Negative part x⁻: column −A_j, cost −c_j.
                cols.push(col.iter().map(|&(r, a)| (r, -a)).collect());
                cost.push(-problem.obj[j]);
                var_of_col.push(Some((j, -1.0)));
            }
        }
        // Slacks / surplus.
        for (i, &kind) in kinds.iter().enumerate() {
            match kind {
                RowKind::Le => {
                    cols.push(vec![(i, 1.0)]);
                    cost.push(0.0);
                    var_of_col.push(None);
                }
                RowKind::Ge => {
                    cols.push(vec![(i, -1.0)]);
                    cost.push(0.0);
                    var_of_col.push(None);
                }
                RowKind::Eq => {}
            }
        }
        let artificial_start = cols.len();
        let big_m = 1e7 * max_abs_cost;
        for i in 0..m {
            cols.push(vec![(i, 1.0)]);
            cost.push(big_m);
            var_of_col.push(None);
        }

        Self { problem, m, cols, cost, var_of_col, artificial_start, rhs }
    }

    /// Reduced cost `d_j = c_j − yᵀA_j` of one column.
    fn reduced_cost(&self, y: &[f64], j: usize) -> f64 {
        let mut d = self.cost[j];
        for &(r, a) in &self.cols[j] {
            d -= y[r] * a;
        }
        d
    }

    /// Reduced costs of columns `lo..hi`, chunk-parallel and deterministic
    /// (basic columns report 0.0, which is never improving).
    fn reduced_costs_range(&self, y: &[f64], in_basis: &[bool], lo: usize, hi: usize) -> Vec<f64> {
        par_map_with(&self.problem.par, hi - lo, |k| {
            let j = lo + k;
            if in_basis[j] {
                0.0
            } else {
                self.reduced_cost(y, j)
            }
        })
    }

    /// Full Dantzig scan: most negative reduced cost, first-seen on ties.
    fn price_dantzig(&self, y: &[f64], in_basis: &[bool]) -> Option<usize> {
        let ds = self.reduced_costs_range(y, in_basis, 0, self.cols.len());
        let mut enter = None;
        let mut best = -PIVOT_EPS;
        for (j, &d) in ds.iter().enumerate() {
            if !in_basis[j] && d < best {
                best = d;
                enter = Some(j);
            }
        }
        enter
    }

    /// Bland's rule: lowest-index improving column (anti-cycling).
    fn price_bland(&self, y: &[f64], in_basis: &[bool]) -> Option<usize> {
        (0..self.cols.len()).find(|&j| !in_basis[j] && self.reduced_cost(y, j) < -PIVOT_EPS)
    }

    /// Validates and factors a warm basis; `None` falls back to the cold
    /// all-artificial start. Accepts the basis only if it is a permutation
    /// of distinct in-range columns, still factors on the current
    /// coefficients, and its basic solution is primal feasible.
    fn try_warm_start(&self, wb: &LpBasis) -> Option<(Vec<usize>, BasisFactorization, Vec<f64>)> {
        if wb.cols.len() != self.m {
            return None;
        }
        let mut seen = vec![false; self.cols.len()];
        for &b in &wb.cols {
            if b >= self.cols.len() || std::mem::replace(&mut seen[b], true) {
                return None;
            }
        }
        let fact = BasisFactorization::factor(&self.basis_transpose(&wb.cols))?;
        let mut xb = vec![0.0; self.m];
        fact.ftran_dense(&self.rhs, &mut xb);
        if xb.iter().any(|&v| v < -PIVOT_EPS) {
            return None;
        }
        for v in xb.iter_mut() {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
        Some((wb.cols.clone(), fact, xb))
    }

    fn run(self, warm: Option<&LpBasis>) -> (LpSolution, Option<LpBasis>) {
        let m = self.m;
        if m == 0 {
            // No constraints: optimum is 0 for x ≥ 0 with c ≥ 0, else unbounded.
            let unbounded = self
                .problem
                .obj
                .iter()
                .zip(&self.problem.free)
                .any(|(&c, &f)| c < -EPS || (f && c.abs() > EPS));
            let sol = LpSolution {
                status: if unbounded { LpStatus::Unbounded } else { LpStatus::Optimal },
                x: vec![0.0; self.problem.num_vars()],
                objective: 0.0,
                iterations: 0,
            };
            return (sol, None);
        }

        // Start basis: the previous optimal basis when a usable warm basis
        // is supplied, otherwise the artificials (an identity matrix,
        // which trivially factors).
        let (mut basis, mut fact, mut xb) =
            warm.and_then(|wb| self.try_warm_start(wb)).unwrap_or_else(|| {
                let basis: Vec<usize> =
                    (self.artificial_start..self.artificial_start + m).collect();
                let fact = BasisFactorization::factor(&self.basis_transpose(&basis))
                    .expect("identity start basis factors");
                (basis, fact, self.rhs.clone())
            });
        let mut in_basis = vec![false; self.cols.len()];
        for &b in &basis {
            in_basis[b] = true;
        }

        let mut iterations = 0usize;
        let mut degenerate_streak = 0usize;
        let mut status = LpStatus::Optimal;

        let mut pricing = match self.problem.pricing {
            Pricing::Dantzig => None,
            Pricing::DevexPartial => Some(Devex::new(self.cols.len())),
        };

        let mut y = vec![0.0; m];
        let mut w = vec![0.0; m];
        let mut cb = vec![0.0; m];
        let mut er = vec![0.0; m];
        let mut rho = vec![0.0; m];

        loop {
            if iterations >= self.problem.max_iters {
                status = LpStatus::IterationLimit;
                break;
            }
            iterations += 1;
            if fact.wants_refactor() {
                if !fact.refactor(&self.basis_transpose(&basis)) {
                    // Singular basis due to drift — no way to continue.
                    status = LpStatus::NumericalBreakdown;
                    break;
                }
                fact.ftran_dense(&self.rhs, &mut xb);
            }

            // BTRAN: y solves yᵀB = c_Bᵀ.
            for (ci, &b) in cb.iter_mut().zip(&basis) {
                *ci = self.cost[b];
            }
            fact.btran_in_place(&mut cb, &mut y);

            // Pricing.
            let use_bland = degenerate_streak > 2 * m + 20;
            let enter = if use_bland {
                self.price_bland(&y, &in_basis)
            } else {
                match pricing.as_mut() {
                    None => self.price_dantzig(&y, &in_basis),
                    Some(devex) => devex.select(&self, &y, &in_basis),
                }
            };
            let Some(q) = enter else {
                break; // optimal
            };

            // FTRAN: w solves B·w = A_q.
            fact.ftran_sparse(&self.cols[q], &mut w);

            // Ratio test.
            let mut leave: Option<usize> = None;
            let mut theta = f64::INFINITY;
            for i in 0..m {
                if w[i] > PIVOT_EPS {
                    let ratio = xb[i] / w[i];
                    if ratio < theta - EPS
                        || (ratio < theta + EPS && leave.is_none_or(|l| basis[i] < basis[l]))
                    {
                        theta = ratio;
                        leave = Some(i);
                    }
                }
            }
            let Some(r) = leave else {
                status = LpStatus::Unbounded;
                break;
            };
            if theta < EPS {
                degenerate_streak += 1;
            } else {
                degenerate_streak = 0;
            }

            // Devex weight update needs the pivot row of B⁻¹ (pre-pivot):
            // one extra BTRAN of the unit vector e_r.
            if let Some(devex) = pricing.as_mut() {
                er.fill(0.0);
                er[r] = 1.0;
                fact.btran_in_place(&mut er, &mut rho);
                devex.pivot_update(&self, &rho, q, basis[r], w[r]);
            }

            // Pivot: push the eta update and refresh x_B.
            fact.update(r, &w);
            xb[r] = theta;
            for i in 0..m {
                if i != r {
                    xb[i] -= w[i] * theta;
                    if xb[i] < 0.0 && xb[i] > -1e-7 {
                        xb[i] = 0.0;
                    }
                }
            }
            in_basis[basis[r]] = false;
            in_basis[q] = true;
            basis[r] = q;
        }

        // Canonical extraction at optimality: sort the final basis and
        // recompute x_B from a fresh LU, so the reported solution depends
        // only on (problem data, final basis set) — not on the pivot path
        // or the eta chain that reached it. A warm-started re-solve that
        // converges to the same optimal basis as a cold solve therefore
        // reproduces its solution bit for bit.
        if status == LpStatus::Optimal {
            let mut canonical = basis.clone();
            canonical.sort_unstable();
            if let Some(fresh) = BasisFactorization::factor(&self.basis_transpose(&canonical)) {
                fresh.ftran_dense(&self.rhs, &mut xb);
                for v in xb.iter_mut() {
                    if *v < 0.0 && *v > -1e-7 {
                        *v = 0.0;
                    }
                }
                basis = canonical;
            }
        }

        // Extract solution.
        let mut x = vec![0.0; self.problem.num_vars()];
        let mut artificial_infeasible = false;
        for (i, &b) in basis.iter().enumerate() {
            if xb[i] > 1e-6 && b >= self.artificial_start {
                artificial_infeasible = true;
            }
            if let Some((j, sign)) = self.var_of_col[b] {
                x[j] += sign * xb[i];
            }
        }
        if status == LpStatus::Optimal && artificial_infeasible {
            status = LpStatus::Infeasible;
        }
        let objective = x.iter().zip(&self.problem.obj).map(|(xi, ci)| xi * ci).sum();
        (LpSolution { status, x, objective, iterations }, Some(LpBasis { cols: basis }))
    }

    /// The current basis as the CSR of `Bᵀ` (row `k` = basis column `k`),
    /// the input form [`BasisFactorization`] factors.
    fn basis_transpose(&self, basis: &[usize]) -> CsrMatrix {
        let rows: Vec<Vec<(usize, f64)>> = basis.iter().map(|&b| self.cols[b].clone()).collect();
        CsrMatrix::from_rows(self.m, &rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} vs {b}");
    }

    #[test]
    fn simple_maximization_as_min() {
        // max x + 2y ⇔ min −x − 2y, x+y ≤ 4, y ≤ 3.
        let mut lp = LpProblem::minimize(vec![-1.0, -2.0]);
        lp.add_row(RowKind::Le, 4.0, &[(0, 1.0), (1, 1.0)]);
        lp.add_row(RowKind::Le, 3.0, &[(1, 1.0)]);
        let s = lp.solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, -7.0);
        assert_close(s.x[0], 1.0);
        assert_close(s.x[1], 3.0);
    }

    #[test]
    fn equality_and_ge_rows() {
        let mut lp = LpProblem::minimize(vec![1.0, 1.0]);
        lp.add_row(RowKind::Ge, 2.0, &[(0, 1.0), (1, 1.0)]);
        lp.add_row(RowKind::Eq, 0.0, &[(0, 1.0), (1, -1.0)]);
        let s = lp.solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.x[0], 1.0);
        assert_close(s.x[1], 1.0);
    }

    #[test]
    fn detects_infeasible() {
        let mut lp = LpProblem::minimize(vec![0.0]);
        lp.add_row(RowKind::Ge, 2.0, &[(0, 1.0)]);
        lp.add_row(RowKind::Le, 1.0, &[(0, 1.0)]);
        assert_eq!(lp.solve().status, LpStatus::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        let mut lp = LpProblem::minimize(vec![-1.0]);
        lp.add_row(RowKind::Ge, 0.0, &[(0, 1.0)]);
        assert_eq!(lp.solve().status, LpStatus::Unbounded);
    }

    #[test]
    fn free_variables() {
        // min |style| problem: min y s.t. y ≥ x − 3, y ≥ 3 − x, x free ⇒ y*=0 at x=3.
        let mut lp = LpProblem::minimize(vec![0.0, 1.0]);
        lp.set_free(0);
        lp.add_row(RowKind::Ge, -3.0, &[(1, 1.0), (0, -1.0)]); // y − x ≥ −3
        lp.add_row(RowKind::Ge, 3.0, &[(1, 1.0), (0, 1.0)]); // y + x ≥ 3
        let s = lp.solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, 0.0);
        assert_close(s.x[0], 3.0);
    }

    #[test]
    fn negative_rhs_normalization() {
        // x ≥ 0, −x ≤ −2 ⇔ x ≥ 2; min x ⇒ 2.
        let mut lp = LpProblem::minimize(vec![1.0]);
        lp.add_row(RowKind::Le, -2.0, &[(0, -1.0)]);
        let s = lp.solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, 2.0);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Multiple redundant constraints through the same vertex.
        let mut lp = LpProblem::minimize(vec![-1.0, -1.0]);
        lp.add_row(RowKind::Le, 1.0, &[(0, 1.0)]);
        lp.add_row(RowKind::Le, 1.0, &[(0, 1.0), (1, 0.0)]);
        lp.add_row(RowKind::Le, 1.0, &[(1, 1.0)]);
        lp.add_row(RowKind::Le, 2.0, &[(0, 1.0), (1, 1.0)]);
        let s = lp.solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, -2.0);
    }

    #[test]
    fn transportation_lp_matches_known_optimum() {
        // 2 supplies (1,1) → 2 demands (1,1); costs: c00=1,c01=5,c10=4,c11=2.
        // Optimal: x00=1, x11=1, cost 3.
        let mut lp = LpProblem::minimize(vec![1.0, 5.0, 4.0, 2.0]);
        lp.add_row(RowKind::Eq, 1.0, &[(0, 1.0), (1, 1.0)]);
        lp.add_row(RowKind::Eq, 1.0, &[(2, 1.0), (3, 1.0)]);
        lp.add_row(RowKind::Le, 1.0, &[(0, 1.0), (2, 1.0)]);
        lp.add_row(RowKind::Le, 1.0, &[(1, 1.0), (3, 1.0)]);
        let s = lp.solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, 3.0);
    }

    #[test]
    fn min_max_assignment_relaxation() {
        // Two items, two bins, each item's cheap bin distinct:
        // integral optimum puts each item in its cheap bin, max load 1.
        let mut lp = LpProblem::minimize(vec![0.0, 0.0, 0.0, 0.0, 1.0]);
        lp.add_row(RowKind::Eq, 1.0, &[(0, 1.0), (1, 1.0)]);
        lp.add_row(RowKind::Eq, 1.0, &[(2, 1.0), (3, 1.0)]);
        lp.add_row(RowKind::Le, 0.0, &[(0, 3.0), (2, 1.0), (4, -1.0)]);
        lp.add_row(RowKind::Le, 0.0, &[(1, 1.0), (3, 3.0), (4, -1.0)]);
        let s = lp.solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, 1.0);
    }

    #[test]
    fn min_max_relaxation_fractional_beats_integral() {
        // One item, two bins of load 2: LP splits 50/50 ⇒ t* = 1, while any
        // integral assignment gives 2 — the integrality gap of Section VI.
        let mut lp = LpProblem::minimize(vec![0.0, 0.0, 1.0]);
        lp.add_row(RowKind::Eq, 1.0, &[(0, 1.0), (1, 1.0)]);
        lp.add_row(RowKind::Le, 0.0, &[(0, 2.0), (2, -1.0)]);
        lp.add_row(RowKind::Le, 0.0, &[(1, 2.0), (2, -1.0)]);
        let s = lp.solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, 1.0);
        assert_close(s.x[0], 0.5);
    }

    #[test]
    fn no_constraints_zero_or_unbounded() {
        let lp = LpProblem::minimize(vec![1.0, 0.0]);
        assert_eq!(lp.solve().status, LpStatus::Optimal);
        let lp2 = LpProblem::minimize(vec![-1.0]);
        assert_eq!(lp2.solve().status, LpStatus::Unbounded);
    }

    #[test]
    fn iteration_limit_is_honored() {
        // A non-trivial LP with an absurdly low iteration cap reports
        // IterationLimit instead of looping.
        let n = 30;
        let mut lp = LpProblem::minimize(vec![-1.0; n]);
        for i in 0..n {
            let row: Vec<_> = (0..n).map(|j| (j, if i == j { 2.0 } else { 1.0 })).collect();
            lp.add_row(RowKind::Le, 10.0, &row);
        }
        lp.set_iteration_limit(3);
        let s = lp.solve();
        assert_eq!(s.status, LpStatus::IterationLimit);
        assert!(s.iterations <= 3);
    }

    #[test]
    fn solution_reports_iteration_count() {
        let mut lp = LpProblem::minimize(vec![-1.0]);
        lp.add_row(RowKind::Le, 5.0, &[(0, 1.0)]);
        let s = lp.solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert!(s.iterations >= 1);
    }

    #[test]
    fn duplicate_coefficients_accumulate_rowwise() {
        // add_row with the same variable twice keeps both entries; the
        // constraint behaves as their sum (x + x ≤ 4 ⇒ x ≤ 2).
        let mut lp = LpProblem::minimize(vec![-1.0]);
        lp.add_row(RowKind::Le, 4.0, &[(0, 1.0), (0, 1.0)]);
        let s = lp.solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.x[0], 2.0);
    }

    #[test]
    fn larger_random_lp_agrees_with_feasibility() {
        // A diagonally dominant feasible system: x_i ≥ i, minimize Σ x_i.
        let n = 40;
        let mut lp = LpProblem::minimize(vec![1.0; n]);
        for i in 0..n {
            lp.add_row(RowKind::Ge, i as f64, &[(i, 1.0)]);
        }
        let s = lp.solve();
        assert_eq!(s.status, LpStatus::Optimal);
        let expect: f64 = (0..n).map(|i| i as f64).sum();
        assert_close(s.objective, expect);
    }

    /// A pseudo-random min-max assignment instance shared by the pricing /
    /// warm-start tests below.
    fn assignment_instance(items: usize, bins: usize, seed: u64, bump: f64) -> LpProblem {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 100.0 + 1.0
        };
        let t = items * bins;
        let mut obj = vec![0.0; t + 1];
        obj[t] = 1.0;
        let mut loads = vec![vec![0.0; bins]; items];
        for row in loads.iter_mut() {
            for l in row.iter_mut() {
                *l = next() + bump;
            }
        }
        let mut lp = LpProblem::minimize(obj);
        for (i, _) in loads.iter().enumerate() {
            let row: Vec<_> = (0..bins).map(|j| (i * bins + j, 1.0)).collect();
            lp.add_row(RowKind::Eq, 1.0, &row);
        }
        for j in 0..bins {
            let mut row: Vec<_> =
                loads.iter().enumerate().map(|(i, l)| (i * bins + j, l[j])).collect();
            row.push((t, -1.0));
            lp.add_row(RowKind::Le, 0.0, &row);
        }
        lp
    }

    #[test]
    fn devex_partial_matches_dantzig_optimum() {
        for seed in 0..6 {
            let mut a = assignment_instance(12, 4, seed, 0.0);
            a.set_pricing(Pricing::Dantzig);
            let mut b = assignment_instance(12, 4, seed, 0.0);
            b.set_pricing(Pricing::DevexPartial);
            let (sa, sb) = (a.solve(), b.solve());
            assert_eq!(sa.status, LpStatus::Optimal);
            assert_eq!(sb.status, LpStatus::Optimal);
            assert!(
                (sa.objective - sb.objective).abs() < 1e-6,
                "seed {seed}: {} vs {}",
                sa.objective,
                sb.objective
            );
        }
    }

    #[test]
    fn warm_start_resolves_perturbed_problem() {
        let cold = assignment_instance(15, 5, 7, 0.0);
        let (s0, basis) = cold.solve_with_basis(None);
        assert_eq!(s0.status, LpStatus::Optimal);
        let basis = basis.expect("basis returned");
        assert_eq!(basis.num_rows(), cold.num_rows());

        // Same structure, slightly moved loads: the warm solve must agree
        // with a cold solve of the perturbed problem and converge at least
        // as fast.
        let warm_problem = assignment_instance(15, 5, 7, 0.05);
        let (warm, _) = warm_problem.solve_with_basis(Some(&basis));
        let (coldp, _) = warm_problem.solve_with_basis(None);
        assert_eq!(warm.status, LpStatus::Optimal);
        assert!(
            (warm.objective - coldp.objective).abs() < 1e-6,
            "{} vs {}",
            warm.objective,
            coldp.objective
        );
        assert!(
            warm.iterations <= coldp.iterations,
            "warm {} > cold {}",
            warm.iterations,
            coldp.iterations
        );
    }

    #[test]
    fn warm_start_identical_problem_is_bit_exact_and_instant() {
        let lp = assignment_instance(10, 4, 3, 0.0);
        let (s0, basis) = lp.solve_with_basis(None);
        let (s1, _) = lp.solve_with_basis(basis.as_ref());
        assert_eq!(s0.status, LpStatus::Optimal);
        assert_eq!(s1.status, LpStatus::Optimal);
        assert_eq!(s0.x, s1.x, "canonical extraction must be path-independent");
        assert!(s1.iterations <= 2, "re-solve from the optimal basis took {}", s1.iterations);
    }

    #[test]
    fn incompatible_warm_basis_falls_back_to_cold() {
        let small = assignment_instance(4, 2, 1, 0.0);
        let (_, basis) = small.solve_with_basis(None);
        let big = assignment_instance(9, 3, 2, 0.0);
        let (s, _) = big.solve_with_basis(basis.as_ref());
        assert_eq!(s.status, LpStatus::Optimal);
        let (s_cold, _) = big.solve_with_basis(None);
        assert_eq!(s.x, s_cold.x);
    }

    #[test]
    fn parallel_pricing_scan_is_deterministic() {
        // Force the fan-out path with a tiny threshold and compare against
        // the sequential default — selections must be bit-identical.
        let mut seq = assignment_instance(20, 6, 11, 0.0);
        seq.set_par_config(ParConfig { min_parallel: usize::MAX, max_threads: 1 });
        let mut par = assignment_instance(20, 6, 11, 0.0);
        par.set_par_config(ParConfig { min_parallel: 8, max_threads: 4 });
        let (a, b) = (seq.solve(), par.solve());
        assert_eq!(a.status, LpStatus::Optimal);
        assert_eq!(a.x, b.x);
        assert_eq!(a.iterations, b.iterations);
    }
}
