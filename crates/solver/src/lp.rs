//! Revised primal simplex on a sparse LU basis factorization.
//!
//! Design point: the LPs this workspace solves have **few rows**
//! (one per flip-flop plus one per ring, ≈ 1 800 for the largest benchmark)
//! but may have many sparse columns (one per candidate flip-flop/ring arc),
//! and every basis is extremely sparse (slacks, artificials, and assignment
//! columns with a handful of entries). The basis is therefore kept as a
//! [`crate::sparse::BasisFactorization`]: sparse LU with partial pivoting,
//! product-form eta updates per pivot, and periodic refactorization to
//! bound eta-chain length and numerical drift. FTRAN/BTRAN cost tracks the
//! basis nonzero count instead of the `O(m²)` per-pivot work of the dense
//! `m × m` inverse this module used to maintain. Bland's rule remains the
//! anti-cycling fallback when degeneracy stalls progress.
//!
//! Two pricing rules are available ([`Pricing`]): the classic full Dantzig
//! scan (the property-tested reference and the default) and Devex
//! reference weights with a partial, candidate-list scan — a rotating
//! window of columns is priced, improving columns are carried in a
//! candidate list across iterations, and a full rotation of the window
//! certifies optimality exactly like a full scan would. Reduced-cost
//! evaluation over a window fans out over [`crate::par::par_map_with`]
//! chunks, which keeps the scan deterministic regardless of thread count.
//! See the [`Pricing`] docs for the measured trade-off between the two.
//!
//! Warm starts: [`LpProblem::solve_with_basis`] accepts the optimal basis
//! of a previous solve ([`LpBasis`]) and refactorizes it on the new
//! coefficients instead of starting from the all-artificial basis — the
//! flow re-solves the same assignment LP every iteration with slowly
//! moving tapping loads, so most re-solves finish in a handful of pivots.
//! Two warm shapes are supported:
//!
//! * **Structurally identical** problems (same rows, same columns,
//!   coefficients may move): the basis columns are reused by index.
//! * **Keyed** problems ([`LpProblem::set_col_keys`] /
//!   [`LpProblem::set_row_keys`]): every column and row carries a stable
//!   caller-supplied identity, and the basis is stored as keyed *slots*.
//!   Columns may be added, dropped, or reordered between solves — slots
//!   whose key survives are remapped, dropped slots are replaced with
//!   artificials of uncovered rows.
//!
//! Either way, the refactored basis is triaged: if its basic solution is
//! primal feasible, the primal simplex continues from it directly; if it
//! is primal infeasible but **dual feasible** (the common case after a
//! pure cost/rhs drift — reduced costs are untouched by rhs moves), a
//! **dual-simplex repair phase** drives the negative basic values out and
//! hands the restored-feasible basis to the primal loop; if it is neither,
//! the solve falls back to the cold all-artificial start (the primal
//! big-M phase-1 is the repair of last resort). When the problem reports
//! `Optimal`, the returned solution is extracted *canonically*: the final
//! basis is sorted and factored fresh, so the primal values depend only on
//! (problem data, final basis set) and not on the pivot path — a
//! warm-started solve that lands on the same optimal basis as a cold
//! solve reproduces its solution to the bit.
//!
//! Infeasibility/unboundedness are detected via the Big-M composite
//! objective: artificial variables receive cost `M` scaled far above any
//! structural cost.

use crate::par::{par_map_with, ParConfig};
use crate::sparse::{BasisFactorization, CsrMatrix, SparseLu};
use serde::{Deserialize, Serialize};

/// Constraint sense of an LP row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RowKind {
    /// `a·x ≤ b`
    Le,
    /// `a·x = b`
    Eq,
    /// `a·x ≥ b`
    Ge,
}

/// Solver outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LpStatus {
    /// Optimal solution found.
    Optimal,
    /// No feasible point exists.
    Infeasible,
    /// Objective unbounded below.
    Unbounded,
    /// Iteration limit hit before convergence (solution is the incumbent).
    IterationLimit,
    /// The basis went numerically singular and could not be refactorized —
    /// progress is impossible; the solution is the last incumbent. Distinct
    /// from [`LpStatus::IterationLimit`] so callers can tell "ran out of
    /// budget" from "the arithmetic broke down".
    NumericalBreakdown,
}

/// Entering-variable pricing rule of the revised simplex.
///
/// Both rules are exact — they certify the same optima (property-tested in
/// `tests/equivalence.rs`) — and differ only in pivot path and per-iteration
/// cost. The default is [`Pricing::Dantzig`]: on the assignment relaxations
/// this codebase actually solves, columns carry ~2 nonzeros each, so a full
/// pricing scan is nearly free and Dantzig's globally best entering column
/// yields a measurably shorter pivot path than the windowed candidate list
/// (s38417 K=6: 4 065 vs 6 799 pivots). [`Pricing::DevexPartial`] wins on
/// instances whose per-iteration pricing cost is the bottleneck (the
/// block-dense synthetic in `benches/kernels.rs` runs ~1.3× faster under
/// it); select it explicitly via [`LpProblem::set_pricing`] for such shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Pricing {
    /// Full Dantzig scan: every nonbasic column is priced every iteration
    /// and the most negative reduced cost enters. `O(nnz(A))` per
    /// iteration; the property-tested reference rule and the default.
    #[default]
    Dantzig,
    /// Devex reference weights with a partial, candidate-list scan: price
    /// a rotating window of columns, carry the improving ones across
    /// iterations, fall back to scanning further windows only when the
    /// list runs dry. Exact (optimality is only declared after a full
    /// rotation finds no improving column) but prices a small fraction of
    /// the columns on a typical iteration.
    DevexPartial,
}

/// An optimal simplex basis in canonical (sorted) form, as returned by
/// [`LpProblem::solve_with_basis`]. Opaque to callers; feed it back into a
/// later solve to warm-start it. For unkeyed problems the later solve must
/// be *structurally identical* (same rows, same columns, coefficients may
/// move); for keyed problems ([`LpProblem::set_col_keys`]) the basis is
/// carried as stable-key slots and survives added/dropped/reordered
/// columns. A basis that no longer factors, or is neither primal nor dual
/// feasible on the new coefficients, is silently discarded and the solve
/// falls back to a cold start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LpBasis {
    cols: Vec<usize>,
    /// Keyed identity of each basis column, parallel to `cols`; empty for
    /// bases of unkeyed problems.
    slots: Vec<BasisSlot>,
}

impl LpBasis {
    /// Number of rows the basis spans.
    pub fn num_rows(&self) -> usize {
        self.cols.len()
    }

    /// A caller-constructed *crash* basis for a keyed problem: the listed
    /// structural columns (by `(col_key, negated)` identity) plus the
    /// slack columns of the listed rows (by row key). Slots that do not
    /// resolve against the target problem are dropped and filled as
    /// usual; the basis carries no positional information, so it is only
    /// meaningful to solves whose problem is keyed.
    ///
    /// The intended use is seeding a re-solve from a known-feasible
    /// *solution* when the previous optimal basis is too far from the new
    /// optimum to repair cheaply — e.g. assignment after large placement
    /// drift: one column per flip-flop (its incumbent ring), the makespan
    /// column, and the slack of every ring-load row except the tightest
    /// gives a primal-feasible vertex, so the solve skips the big-M
    /// feasibility phase entirely.
    pub fn crash(
        structural: impl IntoIterator<Item = (u64, bool)>,
        slack_rows: impl IntoIterator<Item = u64>,
    ) -> Self {
        let slots: Vec<BasisSlot> = structural
            .into_iter()
            .map(|(key, neg)| BasisSlot::Structural { key, neg })
            .chain(slack_rows.into_iter().map(|row_key| BasisSlot::Slack { row_key }))
            .collect();
        Self { cols: Vec::new(), slots }
    }
}

/// Stable identity of one basis column of a keyed problem, resolvable
/// against a later problem whose column/row sets have changed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum BasisSlot {
    /// A structural column: the caller's column key, plus which half of a
    /// free variable's `±` split it is.
    Structural { key: u64, neg: bool },
    /// The slack/surplus column of the row with this key.
    Slack { row_key: u64 },
    /// The artificial column of the row with this key.
    Artificial { row_key: u64 },
}

/// How a [`LpProblem::solve_with_basis_stats`] call actually started.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WarmMode {
    /// No usable warm basis: the solve ran from the all-artificial start.
    #[default]
    Cold,
    /// The warm basis was primal feasible on the new coefficients; the
    /// primal simplex continued from it directly.
    Primal,
    /// The warm basis was primal infeasible but dual feasible; the
    /// dual-simplex repair phase restored primal feasibility before the
    /// primal loop took over.
    DualRepair,
}

/// Warm-start telemetry of one [`LpProblem::solve_with_basis_stats`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LpWarmStats {
    /// Which start the solve actually used (after triage and fallbacks).
    pub mode: WarmMode,
    /// Warm-basis slots that resolved to a column of this problem (keyed
    /// resolution) or were reused by index (unkeyed).
    pub mapped_columns: usize,
    /// Warm-basis slots whose key no longer exists in this problem; each
    /// was replaced by an artificial column of an uncovered row.
    pub dropped_slots: usize,
    /// Pivots spent inside the dual-simplex repair phase (also counted in
    /// [`LpSolution::iterations`]).
    pub dual_pivots: usize,
}

/// Result of [`LpProblem::solve`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LpSolution {
    /// Outcome status.
    pub status: LpStatus,
    /// Primal values of the structural variables (length = number of
    /// variables of the problem). Meaningful for `Optimal` and
    /// `IterationLimit`.
    pub x: Vec<f64>,
    /// Objective value `c·x`.
    pub objective: f64,
    /// Simplex iterations performed.
    pub iterations: usize,
}

/// A linear program `minimize c·x subject to rows, x ≥ 0 (or free)`.
///
/// Build with [`LpProblem::minimize`], add rows with [`LpProblem::add_row`],
/// mark free variables with [`LpProblem::set_free`], then [`LpProblem::solve`].
///
/// # Examples
///
/// ```
/// use rotary_solver::lp::{LpProblem, LpStatus, RowKind};
///
/// // minimize x + y  s.t.  x + y ≥ 2, x − y = 0
/// let mut lp = LpProblem::minimize(vec![1.0, 1.0]);
/// lp.add_row(RowKind::Ge, 2.0, &[(0, 1.0), (1, 1.0)]);
/// lp.add_row(RowKind::Eq, 0.0, &[(0, 1.0), (1, -1.0)]);
/// let s = lp.solve();
/// assert_eq!(s.status, LpStatus::Optimal);
/// assert!((s.x[0] - 1.0).abs() < 1e-7 && (s.x[1] - 1.0).abs() < 1e-7);
/// ```
#[derive(Debug, Clone)]
pub struct LpProblem {
    obj: Vec<f64>,
    free: Vec<bool>,
    rows: Vec<(RowKind, f64)>,
    /// Column-sparse structural coefficients: `cols[j] = [(row, coeff)]`.
    cols: Vec<Vec<(usize, f64)>>,
    max_iters: usize,
    pricing: Pricing,
    par: ParConfig,
    /// Stable caller-supplied column identities (empty = unkeyed).
    col_keys: Vec<u64>,
    /// Stable caller-supplied row identities (empty = unkeyed).
    row_keys: Vec<u64>,
}

impl LpProblem {
    /// Creates a minimization problem with the given objective vector; all
    /// variables default to `x_j ≥ 0`.
    pub fn minimize(objective: Vec<f64>) -> Self {
        let n = objective.len();
        Self {
            obj: objective,
            free: vec![false; n],
            rows: Vec::new(),
            cols: vec![Vec::new(); n],
            max_iters: 200_000,
            pricing: Pricing::default(),
            par: ParConfig::fine_grained(),
            col_keys: Vec::new(),
            row_keys: Vec::new(),
        }
    }

    /// Number of structural variables.
    pub fn num_vars(&self) -> usize {
        self.obj.len()
    }

    /// Number of constraint rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Declares variable `j` free (unrestricted in sign).
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn set_free(&mut self, j: usize) {
        self.free[j] = true;
    }

    /// Caps the number of simplex iterations (default 200 000).
    pub fn set_iteration_limit(&mut self, limit: usize) {
        self.max_iters = limit;
    }

    /// Selects the pricing rule (default [`Pricing::Dantzig`]).
    pub fn set_pricing(&mut self, pricing: Pricing) {
        self.pricing = pricing;
    }

    /// Overrides the fan-out thresholds of the pricing scan (default
    /// [`ParConfig::fine_grained`] — the per-column work is a short dot
    /// product, so fanning out only pays off for very wide scans).
    pub fn set_par_config(&mut self, par: ParConfig) {
        self.par = par;
    }

    /// Adds a row `Σ coeffs · x {≤,=,≥} rhs` and returns its index.
    ///
    /// # Panics
    ///
    /// Panics if any referenced variable is out of range.
    pub fn add_row(&mut self, kind: RowKind, rhs: f64, coeffs: &[(usize, f64)]) -> usize {
        // Rows added after keying (e.g. branch-and-bound bound cuts on a
        // cloned relaxation) have no caller identity; keying no longer
        // describes the problem, so drop it rather than warm-start wrongly.
        if !self.row_keys.is_empty() {
            self.row_keys.clear();
            self.col_keys.clear();
        }
        let r = self.rows.len();
        self.rows.push((kind, rhs));
        for &(j, a) in coeffs {
            assert!(j < self.cols.len(), "variable {j} out of range");
            if a != 0.0 {
                self.cols[j].push((r, a));
            }
        }
        r
    }

    /// Assigns a stable identity to every column, enabling basis reuse
    /// across problems whose column sets differ ([`LpBasis`]). Keys must be
    /// unique; a basis carrying duplicate keys is discarded at warm-start
    /// resolution.
    ///
    /// # Panics
    ///
    /// Panics if `keys` is not parallel to the variables.
    pub fn set_col_keys(&mut self, keys: Vec<u64>) {
        assert_eq!(keys.len(), self.obj.len(), "one key per variable");
        self.col_keys = keys;
    }

    /// Assigns a stable identity to every row added so far (call after the
    /// last [`LpProblem::add_row`]). Required alongside
    /// [`LpProblem::set_col_keys`] for keyed warm starts.
    ///
    /// # Panics
    ///
    /// Panics if `keys` is not parallel to the rows.
    pub fn set_row_keys(&mut self, keys: Vec<u64>) {
        assert_eq!(keys.len(), self.rows.len(), "one key per row");
        self.row_keys = keys;
    }

    /// Overwrites the objective coefficient of variable `j` in place —
    /// the delta-carrying path of a re-solved problem whose structure is
    /// unchanged (no rebuild, no re-keying).
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn set_objective_coeff(&mut self, j: usize, c: f64) {
        self.obj[j] = c;
    }

    /// Overwrites the existing coefficient of variable `j` in `row` in
    /// place. The entry must already exist with a nonzero value (sparsity
    /// patterns are fixed once added), so a patched problem is
    /// representationally identical to a freshly built one.
    ///
    /// # Panics
    ///
    /// Panics if the entry does not exist or `a` is zero.
    pub fn update_coeff(&mut self, j: usize, row: usize, a: f64) {
        assert!(a != 0.0, "cannot patch an entry to zero");
        let entry = self.cols[j]
            .iter_mut()
            .find(|e| e.0 == row)
            .expect("coefficient to patch must already exist");
        entry.1 = a;
    }

    /// Solves the LP from a cold (all-artificial) start.
    pub fn solve(&self) -> LpSolution {
        self.solve_with_basis(None).0
    }

    /// Solves the LP, optionally warm-starting from the basis of a
    /// previous solve — of a structurally identical problem, or (when the
    /// problem is keyed) of any problem sharing column/row keys. Returns
    /// the solution together with the final basis (in canonical sorted
    /// form when optimal), to be fed into the next re-solve.
    pub fn solve_with_basis(&self, warm: Option<&LpBasis>) -> (LpSolution, Option<LpBasis>) {
        let (sol, basis, _) = self.solve_with_basis_stats(warm);
        (sol, basis)
    }

    /// [`LpProblem::solve_with_basis`] plus warm-start telemetry: how the
    /// basis resolved (mapped/dropped slots) and which repair path the
    /// solve took ([`WarmMode`]).
    pub fn solve_with_basis_stats(
        &self,
        warm: Option<&LpBasis>,
    ) -> (LpSolution, Option<LpBasis>, LpWarmStats) {
        Simplex::new(self).run(warm)
    }
}

/// Internal computational form: all rows normalized to `b ≥ 0`; columns are
/// structural (with free variables split), then slack/surplus, then
/// artificial.
struct Simplex<'a> {
    problem: &'a LpProblem,
    m: usize,
    /// Column-sparse matrix including slacks and artificials.
    cols: Vec<Vec<(usize, f64)>>,
    cost: Vec<f64>,
    /// Map from internal column to (structural var, sign) if structural.
    var_of_col: Vec<Option<(usize, f64)>>,
    /// First slack/surplus column.
    slack_start: usize,
    /// Original row of each slack/surplus column, indexed by
    /// `col - slack_start`.
    slack_rows: Vec<usize>,
    artificial_start: usize,
    rhs: Vec<f64>,
}

const EPS: f64 = 1e-9;
const PIVOT_EPS: f64 = 1e-7;

/// Devex weights are clamped here; runaway reference weights would starve
/// legitimately improving columns of merit.
const WEIGHT_CAP: f64 = 1e12;
/// Lower bound on the rotating pricing-window width.
const SECTION_MIN: usize = 256;
/// Upper bound on the carried candidate list.
const CANDIDATE_CAP: usize = 256;
/// A refill keeps scanning windows until it has at least this many
/// improving columns (or has priced every column). Stopping at the first
/// non-empty window draws entering columns from one narrow slice of the
/// matrix and measurably lengthens the pivot path on the real assignment
/// relaxations.
const REFILL_TARGET: usize = 256;

/// Devex reference weights plus the partial-pricing candidate list.
struct Devex {
    weights: Vec<f64>,
    candidates: Vec<usize>,
    /// Next column the rotating window scan starts from.
    cursor: usize,
}

impl Devex {
    fn new(ncols: usize) -> Self {
        Self { weights: vec![1.0; ncols], candidates: Vec::new(), cursor: 0 }
    }

    /// Picks the entering column: re-price the carried candidates, refill
    /// from the rotating window when the list runs dry, and return the
    /// best Devex merit `d²/w`. `None` ⇔ provably optimal (a full window
    /// rotation found no improving column).
    fn select(&mut self, sx: &Simplex, y: &[f64], in_basis: &[bool]) -> Option<usize> {
        let mut live = std::mem::take(&mut self.candidates);
        live.retain(|&j| !in_basis[j] && sx.reduced_cost(y, j) < -PIVOT_EPS);
        self.candidates = live;
        if self.candidates.is_empty() {
            self.refill(sx, y, in_basis);
        }
        let mut best: Option<(f64, usize)> = None;
        for &j in &self.candidates {
            let d = sx.reduced_cost(y, j);
            let merit = d * d / self.weights[j];
            if best.is_none_or(|(bm, bj)| merit > bm || (merit == bm && j < bj)) {
                best = Some((merit, j));
            }
        }
        best.map(|(_, j)| j)
    }

    /// Scans rotating windows until an improving column appears or every
    /// column has been priced once (⇒ optimality is certified exactly).
    fn refill(&mut self, sx: &Simplex, y: &[f64], in_basis: &[bool]) {
        let n = sx.cols.len();
        let section = (n / 16).max(SECTION_MIN).min(n);
        let mut scanned = 0usize;
        while scanned < n && self.candidates.len() < REFILL_TARGET {
            let len = section.min(n - scanned);
            let lo = self.cursor;
            let part = len.min(n - lo);
            self.scan_range(sx, y, in_basis, lo, lo + part);
            if part < len {
                self.scan_range(sx, y, in_basis, 0, len - part);
            }
            self.cursor = (lo + len) % n;
            scanned += len;
        }
        if self.candidates.len() > CANDIDATE_CAP {
            let mut scored: Vec<(f64, usize)> = self
                .candidates
                .iter()
                .map(|&j| {
                    let d = sx.reduced_cost(y, j);
                    (d * d / self.weights[j], j)
                })
                .collect();
            scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
            scored.truncate(CANDIDATE_CAP);
            self.candidates = scored.into_iter().map(|(_, j)| j).collect();
            self.candidates.sort_unstable();
        }
    }

    fn scan_range(&mut self, sx: &Simplex, y: &[f64], in_basis: &[bool], lo: usize, hi: usize) {
        let ds = sx.reduced_costs_range(y, in_basis, lo, hi);
        for (k, d) in ds.into_iter().enumerate() {
            if d < -PIVOT_EPS {
                self.candidates.push(lo + k);
            }
        }
    }

    /// Forrest–Goldfarb reference-weight update after a pivot (entering
    /// `q`, leaving variable `leaving`, pivot element `α_rq`), restricted
    /// to the candidate list — the only columns whose merit is consulted
    /// before their next full re-pricing. `rho` is `e_rᵀ·B⁻¹` (the pivot
    /// row of the basis inverse, by original row index), so
    /// `α_rj = rho·A_j`. (Sweeping *all* nonbasic weights instead was
    /// measured on the s38417/s35932 relaxations: it shortens the pivot
    /// path by under 10% while doubling per-pivot cost — a net loss.)
    fn pivot_update(&mut self, sx: &Simplex, rho: &[f64], q: usize, leaving: usize, alpha_rq: f64) {
        let wq = self.weights[q];
        let inv = 1.0 / alpha_rq;
        for &j in &self.candidates {
            if j == q {
                continue;
            }
            let mut arj = 0.0;
            for &(r, a) in &sx.cols[j] {
                arj += rho[r] * a;
            }
            let ratio = arj * inv;
            let cand = (ratio * ratio * wq).min(WEIGHT_CAP);
            if cand > self.weights[j] {
                self.weights[j] = cand;
            }
        }
        self.weights[leaving] = (wq * inv * inv).clamp(1.0, WEIGHT_CAP);
    }
}

/// A validated, factored warm basis plus its triage verdict.
struct WarmStart {
    basis: Vec<usize>,
    fact: BasisFactorization,
    xb: Vec<f64>,
    mode: WarmMode,
    mapped: usize,
    dropped: usize,
}

impl<'a> Simplex<'a> {
    fn new(problem: &'a LpProblem) -> Self {
        let m = problem.rows.len();
        // Row sign normalization: multiply rows with negative rhs by −1 and
        // flip the sense.
        let mut row_sign = vec![1.0; m];
        let mut kinds: Vec<RowKind> = Vec::with_capacity(m);
        let mut rhs = Vec::with_capacity(m);
        for (i, &(kind, b)) in problem.rows.iter().enumerate() {
            if b < 0.0 {
                row_sign[i] = -1.0;
                rhs.push(-b);
                kinds.push(match kind {
                    RowKind::Le => RowKind::Ge,
                    RowKind::Ge => RowKind::Le,
                    RowKind::Eq => RowKind::Eq,
                });
            } else {
                rhs.push(b);
                kinds.push(kind);
            }
        }

        let mut cols = Vec::new();
        let mut cost = Vec::new();
        let mut var_of_col = Vec::new();
        let mut max_abs_cost: f64 = 1.0;

        for j in 0..problem.num_vars() {
            let col: Vec<(usize, f64)> =
                problem.cols[j].iter().map(|&(r, a)| (r, a * row_sign[r])).collect();
            max_abs_cost = max_abs_cost.max(problem.obj[j].abs());
            cols.push(col.clone());
            cost.push(problem.obj[j]);
            var_of_col.push(Some((j, 1.0)));
            if problem.free[j] {
                // Negative part x⁻: column −A_j, cost −c_j.
                cols.push(col.iter().map(|&(r, a)| (r, -a)).collect());
                cost.push(-problem.obj[j]);
                var_of_col.push(Some((j, -1.0)));
            }
        }
        // Slacks / surplus.
        let slack_start = cols.len();
        let mut slack_rows = Vec::new();
        for (i, &kind) in kinds.iter().enumerate() {
            match kind {
                RowKind::Le => {
                    cols.push(vec![(i, 1.0)]);
                    cost.push(0.0);
                    var_of_col.push(None);
                    slack_rows.push(i);
                }
                RowKind::Ge => {
                    cols.push(vec![(i, -1.0)]);
                    cost.push(0.0);
                    var_of_col.push(None);
                    slack_rows.push(i);
                }
                RowKind::Eq => {}
            }
        }
        let artificial_start = cols.len();
        let big_m = 1e7 * max_abs_cost;
        for i in 0..m {
            cols.push(vec![(i, 1.0)]);
            cost.push(big_m);
            var_of_col.push(None);
        }

        if !problem.col_keys.is_empty() {
            assert_eq!(
                problem.row_keys.len(),
                m,
                "keyed problems need row keys alongside column keys"
            );
        }

        Self { problem, m, cols, cost, var_of_col, slack_start, slack_rows, artificial_start, rhs }
    }

    /// Reduced cost `d_j = c_j − yᵀA_j` of one column.
    fn reduced_cost(&self, y: &[f64], j: usize) -> f64 {
        let mut d = self.cost[j];
        for &(r, a) in &self.cols[j] {
            d -= y[r] * a;
        }
        d
    }

    /// Reduced costs of columns `lo..hi`, chunk-parallel and deterministic
    /// (basic columns report 0.0, which is never improving).
    fn reduced_costs_range(&self, y: &[f64], in_basis: &[bool], lo: usize, hi: usize) -> Vec<f64> {
        par_map_with(&self.problem.par, hi - lo, |k| {
            let j = lo + k;
            if in_basis[j] {
                0.0
            } else {
                self.reduced_cost(y, j)
            }
        })
    }

    /// Full Dantzig scan: most negative reduced cost below `-thr`,
    /// first-seen on ties.
    fn price_dantzig(&self, y: &[f64], in_basis: &[bool], thr: f64) -> Option<usize> {
        let ds = self.reduced_costs_range(y, in_basis, 0, self.cols.len());
        let mut enter = None;
        let mut best = -thr;
        for (j, &d) in ds.iter().enumerate() {
            if !in_basis[j] && d < best {
                best = d;
                enter = Some(j);
            }
        }
        enter
    }

    /// Bland's rule: lowest-index column pricing below `-thr` (anti-cycling).
    fn price_bland(&self, y: &[f64], in_basis: &[bool], thr: f64) -> Option<usize> {
        (0..self.cols.len()).find(|&j| !in_basis[j] && self.reduced_cost(y, j) < -thr)
    }

    /// Keyed identity of internal column `j` (requires a keyed problem).
    fn slot_of_col(&self, j: usize) -> BasisSlot {
        if let Some((v, sign)) = self.var_of_col[j] {
            BasisSlot::Structural { key: self.problem.col_keys[v], neg: sign < 0.0 }
        } else if j >= self.artificial_start {
            BasisSlot::Artificial { row_key: self.problem.row_keys[j - self.artificial_start] }
        } else {
            BasisSlot::Slack {
                row_key: self.problem.row_keys[self.slack_rows[j - self.slack_start]],
            }
        }
    }

    /// Resolves a keyed warm basis against this problem's key maps:
    /// surviving slots map to their internal column, dropped slots are
    /// replaced by artificial columns — of rows no mapped column touches
    /// first (best odds of a nonsingular basis), then of any row whose
    /// artificial is still unused. Returns `(basis, mapped, dropped)`;
    /// `None` on duplicate keys (caller bug — fall back to cold).
    fn resolve_keyed(&self, wb: &LpBasis) -> Option<(Vec<usize>, usize, usize)> {
        use std::collections::HashMap;
        let mut structural: HashMap<(u64, bool), usize> = HashMap::new();
        for (j, vo) in self.var_of_col.iter().enumerate() {
            if let Some((v, sign)) = *vo {
                let prev = structural.insert((self.problem.col_keys[v], sign < 0.0), j);
                if prev.is_some() {
                    return None;
                }
            }
        }
        let mut slack: HashMap<u64, usize> = HashMap::new();
        for (k, &row) in self.slack_rows.iter().enumerate() {
            if slack.insert(self.problem.row_keys[row], self.slack_start + k).is_some() {
                return None;
            }
        }
        let mut artificial: HashMap<u64, usize> = HashMap::new();
        for row in 0..self.m {
            if artificial.insert(self.problem.row_keys[row], self.artificial_start + row).is_some()
            {
                return None;
            }
        }

        let mut used = vec![false; self.cols.len()];
        let mut basis = Vec::with_capacity(self.m);
        let mut mapped = 0usize;
        let mut mapped_structural = 0usize;
        let mut dropped = 0usize;
        for slot in &wb.slots {
            let col = match *slot {
                BasisSlot::Structural { key, neg } => structural.get(&(key, neg)),
                BasisSlot::Slack { row_key } => slack.get(&row_key),
                BasisSlot::Artificial { row_key } => artificial.get(&row_key),
            };
            match col {
                Some(&j) if basis.len() < self.m && !std::mem::replace(&mut used[j], true) => {
                    basis.push(j);
                    mapped += 1;
                    if matches!(slot, BasisSlot::Structural { .. }) {
                        mapped_structural += 1;
                    }
                }
                _ => dropped += 1,
            }
        }
        // A basis sharing no structural column with this problem carries
        // no reusable information — the fill below would reconstruct the
        // cold slack/artificial start the long way round.
        if mapped_structural == 0 {
            return None;
        }
        // Fill the dropped slots, best nonsingular-and-dual-feasible odds
        // first: rows not touched by any mapped column get their slack
        // column when one exists (cost 0 — keeps the row's dual at zero,
        // so the repair triage can still find the basis dual feasible),
        // else their artificial; leftover slots take any unused
        // artificial.
        let mut slack_of_row = vec![None; self.m];
        for (k, &row) in self.slack_rows.iter().enumerate() {
            slack_of_row[row] = Some(self.slack_start + k);
        }
        let mut covered = vec![false; self.m];
        for &j in &basis {
            for &(r, _) in &self.cols[j] {
                covered[r] = true;
            }
        }
        for row in 0..self.m {
            if basis.len() == self.m {
                break;
            }
            if covered[row] {
                continue;
            }
            let j = match slack_of_row[row] {
                Some(s) if !used[s] => s,
                _ => self.artificial_start + row,
            };
            if !used[j] {
                used[j] = true;
                basis.push(j);
            }
        }
        for row in 0..self.m {
            if basis.len() == self.m {
                break;
            }
            let j = self.artificial_start + row;
            if !used[j] {
                used[j] = true;
                basis.push(j);
            }
        }
        Some((basis, mapped, dropped))
    }

    /// Repairs a rank-deficient mapped basis in place: a deficiency scan
    /// names the dependent basis positions and the rows left unpivoted;
    /// each dependent position is replaced by an unpivoted row's unit
    /// column (its slack when free, else its artificial), which restores
    /// full rank. Dropped columns after drift routinely leave the mapped
    /// basis singular — e.g. the chain coupling fractional flip-flops to
    /// their tight ring rows breaks — and abandoning the whole warm start
    /// over a handful of dependent columns wastes the hundreds that still
    /// map. Returns `None` if the repaired basis still fails to factor.
    fn repair_singular_basis(&self, basis: &mut [usize]) -> Option<BasisFactorization> {
        let (deficient, rows) = SparseLu::deficiency(&self.basis_transpose(basis));
        if deficient.len() != rows.len() {
            return None;
        }
        let mut used = vec![false; self.cols.len()];
        for &b in basis.iter() {
            used[b] = true;
        }
        let mut slack_of_row = vec![None; self.m];
        for (k, &row) in self.slack_rows.iter().enumerate() {
            slack_of_row[row] = Some(self.slack_start + k);
        }
        for (&pos, &row) in deficient.iter().zip(&rows) {
            let j = match slack_of_row[row] {
                Some(s) if !used[s] => s,
                _ => self.artificial_start + row,
            };
            if used[j] {
                return None;
            }
            used[j] = true;
            basis[pos] = j;
        }
        if std::env::var_os("ROTARY_LP_DEBUG").is_some() {
            eprintln!("lp warm: repaired singular basis ({} dependent columns)", deficient.len());
        }
        BasisFactorization::factor(&self.basis_transpose(basis))
    }

    /// Validates and factors a warm basis, then triages it: primal
    /// feasible bases start the primal simplex directly, primal-infeasible
    /// bases are flagged for the dual-simplex repair phase, and bases
    /// that do not resolve against this problem at all (`None`) fall
    /// back to the cold all-artificial start.
    fn try_warm_start(&self, wb: &LpBasis) -> Option<WarmStart> {
        let keyed = !self.problem.col_keys.is_empty() && !wb.slots.is_empty();
        let (basis, mapped, dropped) = if keyed {
            let r = self.resolve_keyed(wb);
            if r.is_none() && std::env::var_os("ROTARY_LP_DEBUG").is_some() {
                eprintln!("lp warm: resolve_keyed None");
            }
            r?
        } else {
            // Unkeyed: reuse by index; requires a structurally identical
            // problem (same column universe, same row count).
            if wb.cols.len() != self.m {
                return None;
            }
            let mut seen = vec![false; self.cols.len()];
            for &b in &wb.cols {
                if b >= self.cols.len() || std::mem::replace(&mut seen[b], true) {
                    return None;
                }
            }
            (wb.cols.clone(), wb.cols.len(), 0)
        };
        let mut basis = basis;
        let fact = match BasisFactorization::factor(&self.basis_transpose(&basis)) {
            Some(f) => f,
            None => self.repair_singular_basis(&mut basis)?,
        };
        let mut xb = vec![0.0; self.m];
        fact.ftran_dense(&self.rhs, &mut xb);
        if xb.iter().all(|&v| v >= -PIVOT_EPS) {
            for v in xb.iter_mut() {
                if *v < 0.0 {
                    *v = 0.0;
                }
            }
            return Some(WarmStart { basis, fact, xb, mode: WarmMode::Primal, mapped, dropped });
        }
        if std::env::var_os("ROTARY_LP_DEBUG").is_some() {
            let neg = xb.iter().filter(|&&v| v < -PIVOT_EPS).count();
            let min = xb.iter().cloned().fold(f64::INFINITY, f64::min);
            eprintln!("lp warm: primal infeasible rows={neg}/{} min={min:.3e}", self.m);
        }
        // Primal infeasible: hand the basis to the dual-simplex repair.
        // Exact dual feasibility is *not* required — real drift perturbs
        // costs and the constraint matrix together, so insisting on it
        // would send every real re-solve cold. The repair's ratio test
        // clamps reduced costs at zero (slightly dual-infeasible columns
        // enter first, at ratio 0), and the primal loop that follows the
        // repair certifies optimality from whatever basis results; the
        // pivot cap bounds a pathological repair before the cold start
        // would have been cheaper.
        Some(WarmStart { basis, fact, xb, mode: WarmMode::DualRepair, mapped, dropped })
    }

    /// Dual-simplex repair: starting from a dual-feasible basis with
    /// negative basic values, pivot the most negative basic variable out
    /// against the entering column of the dual ratio test until the basic
    /// solution is primal feasible. Maintains the same eta-update /
    /// periodic-refactorization discipline as the primal loop.
    /// `Err(pivots)` means the repair was abandoned (pivot cap, numerical
    /// trouble, or a vanishing pivot element) and the caller should
    /// restart cold; `Ok(pivots)` means `xb ≥ 0` now holds.
    fn dual_repair(
        &self,
        basis: &mut [usize],
        fact: &mut BasisFactorization,
        xb: &mut [f64],
        in_basis: &mut [bool],
    ) -> Result<usize, usize> {
        let m = self.m;
        // The repair is expected to need few pivots (that is its point);
        // cap it so a pathological drift can never loop — past the cap the
        // cold big-M start is the faster path anyway.
        let cap = 2 * m + 100;
        let mut pivots = 0usize;
        let mut y = vec![0.0; m];
        let mut cb = vec![0.0; m];
        let mut er = vec![0.0; m];
        let mut rho = vec![0.0; m];
        let mut w = vec![0.0; m];
        loop {
            if fact.wants_refactor() {
                if !fact.refactor(&self.basis_transpose(basis)) {
                    return Err(pivots);
                }
                fact.ftran_dense(&self.rhs, xb);
            }
            // Leaving row: most negative basic value; ties break on the
            // smallest basic column index (deterministic).
            let mut leave: Option<usize> = None;
            let mut most = -PIVOT_EPS;
            for (i, &v) in xb.iter().enumerate() {
                if v < most - EPS
                    || (v < most + EPS
                        && v < -PIVOT_EPS
                        && leave.is_some_and(|l| basis[i] < basis[l]))
                {
                    most = v;
                    leave = Some(i);
                }
            }
            let Some(r) = leave else {
                for v in xb.iter_mut() {
                    if *v < 0.0 {
                        *v = 0.0;
                    }
                }
                return Ok(pivots);
            };
            if pivots >= cap {
                return Err(pivots);
            }
            pivots += 1;

            // y for reduced costs, rho = e_rᵀ·B⁻¹ for the pivot row.
            for (ci, &b) in cb.iter_mut().zip(basis.iter()) {
                *ci = self.cost[b];
            }
            fact.btran_in_place(&mut cb, &mut y);
            er.fill(0.0);
            er[r] = 1.0;
            fact.btran_in_place(&mut er, &mut rho);

            // Dual ratio test: entering column minimizes d_j / (−α_rj)
            // over nonbasic columns with α_rj < 0. The 1e-9 wirelength
            // tiebreak keeps nearly every reduced cost within clamping
            // range of zero, so ratio ties are the common case, not the
            // exception; ties break on the largest pivot magnitude |α_rj|
            // (the numerically safest pivot, and the one that fixes row
            // `r` with the least knock-on to other rows), then on the
            // smallest column index for determinism.
            let alphas = par_map_with(&self.problem.par, self.cols.len(), |j| {
                if in_basis[j] {
                    0.0
                } else {
                    self.cols[j].iter().map(|&(row, a)| rho[row] * a).sum()
                }
            });
            let mut enter: Option<usize> = None;
            let mut best = f64::INFINITY;
            let mut best_alpha = 0.0f64;
            for (j, &alpha) in alphas.iter().enumerate() {
                if in_basis[j] || alpha >= -PIVOT_EPS {
                    continue;
                }
                // Dual feasibility keeps d_j ≥ 0 up to roundoff; clamp so
                // drift cannot produce a negative ratio.
                let d = self.reduced_cost(&y, j).max(0.0);
                let ratio = d / -alpha;
                if ratio < best - EPS
                    || (ratio < best + EPS
                        && (-alpha > best_alpha + EPS
                            || (-alpha > best_alpha - EPS && enter.is_none_or(|e| j < e))))
                {
                    best = ratio;
                    best_alpha = -alpha;
                    enter = Some(j);
                }
            }
            // No eligible column ⇔ the dual is unbounded ⇔ the problem is
            // primal infeasible — impossible with big-M artificials in the
            // column universe, so treat it as numerical trouble.
            let Some(q) = enter else {
                return Err(pivots);
            };

            fact.ftran_sparse(&self.cols[q], &mut w);
            if w[r] >= -PIVOT_EPS {
                // FTRAN disagrees with the BTRAN pivot row — eta drift.
                return Err(pivots);
            }
            let theta = xb[r] / w[r];
            fact.update(r, &w);
            for i in 0..m {
                if i != r {
                    xb[i] -= w[i] * theta;
                    if xb[i] < 0.0 && xb[i] > -1e-7 {
                        xb[i] = 0.0;
                    }
                }
            }
            xb[r] = theta;
            in_basis[basis[r]] = false;
            in_basis[q] = true;
            basis[r] = q;
        }
    }

    fn run(self, warm: Option<&LpBasis>) -> (LpSolution, Option<LpBasis>, LpWarmStats) {
        let m = self.m;
        if m == 0 {
            // No constraints: optimum is 0 for x ≥ 0 with c ≥ 0, else unbounded.
            let unbounded = self
                .problem
                .obj
                .iter()
                .zip(&self.problem.free)
                .any(|(&c, &f)| c < -EPS || (f && c.abs() > EPS));
            let sol = LpSolution {
                status: if unbounded { LpStatus::Unbounded } else { LpStatus::Optimal },
                x: vec![0.0; self.problem.num_vars()],
                objective: 0.0,
                iterations: 0,
            };
            return (sol, None, LpWarmStats::default());
        }

        let cold_start = || {
            let basis: Vec<usize> = (self.artificial_start..self.artificial_start + m).collect();
            let fact = BasisFactorization::factor(&self.basis_transpose(&basis))
                .expect("identity start basis factors");
            (basis, fact, self.rhs.clone())
        };

        // Start basis: the previous optimal basis when a usable warm basis
        // is supplied, otherwise the artificials (an identity matrix,
        // which trivially factors).
        let mut stats = LpWarmStats::default();
        let (mut basis, mut fact, mut xb) = match warm.and_then(|wb| self.try_warm_start(wb)) {
            Some(ws) => {
                stats.mode = ws.mode;
                stats.mapped_columns = ws.mapped;
                stats.dropped_slots = ws.dropped;
                if std::env::var_os("ROTARY_LP_DEBUG").is_some() {
                    eprintln!(
                        "lp warm: triage {:?} mapped={} dropped={}",
                        ws.mode, ws.mapped, ws.dropped
                    );
                }
                (ws.basis, ws.fact, ws.xb)
            }
            None => {
                if std::env::var_os("ROTARY_LP_DEBUG").is_some() && warm.is_some() {
                    eprintln!("lp warm: triage None (cold)");
                }
                cold_start()
            }
        };
        let mut in_basis = vec![false; self.cols.len()];
        for &b in &basis {
            in_basis[b] = true;
        }

        let mut iterations = 0usize;

        // Dual-simplex repair: restore primal feasibility from the
        // dual-feasible warm basis; an abandoned repair restarts cold
        // (its pivots stay counted — they were spent).
        if stats.mode == WarmMode::DualRepair {
            match self.dual_repair(&mut basis, &mut fact, &mut xb, &mut in_basis) {
                Ok(pivots) => {
                    if std::env::var_os("ROTARY_LP_DEBUG").is_some() {
                        eprintln!(
                            "lp warm: repair ok mapped={} dropped={} pivots={}",
                            stats.mapped_columns, stats.dropped_slots, pivots
                        );
                    }
                    stats.dual_pivots = pivots;
                    iterations += pivots;
                }
                Err(pivots) => {
                    if std::env::var_os("ROTARY_LP_DEBUG").is_some() {
                        eprintln!(
                            "lp warm: repair ABANDONED mapped={} dropped={} pivots={}",
                            stats.mapped_columns, stats.dropped_slots, pivots
                        );
                    }
                    stats.mode = WarmMode::Cold;
                    stats.dual_pivots = pivots;
                    iterations += pivots;
                    (basis, fact, xb) = cold_start();
                    in_basis.fill(false);
                    for &b in &basis {
                        in_basis[b] = true;
                    }
                }
            }
        }

        let mut degenerate_streak = 0usize;
        let mut status = LpStatus::Optimal;
        // Tiebreak polish: once no column prices below the classic
        // `PIVOT_EPS` threshold, keep pivoting on columns pricing below
        // `EPS`. The assignment LPs carry a `1e-9`-scaled wirelength
        // tiebreak whose reduced costs sit *inside* the `(−PIVOT_EPS, −EPS)`
        // band, so the classic stop leaves the vertex within the optimal
        // face path-dependent — a warm start would then terminate on a
        // different (equally max-load-optimal) vertex than a cold solve.
        // Dantzig picks the most negative column, so lowering only the
        // termination threshold extends the pivot path without reordering
        // it: the classic path is a prefix, and both cold and warm runs
        // continue to the unique EPS-optimal vertex.
        let mut polishing = false;

        let mut pricing = match self.problem.pricing {
            Pricing::Dantzig => None,
            Pricing::DevexPartial => Some(Devex::new(self.cols.len())),
        };

        let mut y = vec![0.0; m];
        let mut w = vec![0.0; m];
        let mut cb = vec![0.0; m];
        let mut er = vec![0.0; m];
        let mut rho = vec![0.0; m];

        loop {
            if iterations >= self.problem.max_iters {
                status = LpStatus::IterationLimit;
                break;
            }
            iterations += 1;
            if fact.wants_refactor() {
                if !fact.refactor(&self.basis_transpose(&basis)) {
                    // Singular basis due to drift — no way to continue.
                    status = LpStatus::NumericalBreakdown;
                    break;
                }
                fact.ftran_dense(&self.rhs, &mut xb);
            }

            // BTRAN: y solves yᵀB = c_Bᵀ.
            for (ci, &b) in cb.iter_mut().zip(&basis) {
                *ci = self.cost[b];
            }
            fact.btran_in_place(&mut cb, &mut y);

            // Pricing. The polish phase always uses full Dantzig scans:
            // partial (Devex) pricing may under-scan the sub-PIVOT_EPS
            // band, and path-independence of the terminal vertex needs
            // every column checked against the finer threshold.
            let use_bland = degenerate_streak > 2 * m + 20;
            let thr = if polishing { EPS } else { PIVOT_EPS };
            let enter = if use_bland {
                self.price_bland(&y, &in_basis, thr)
            } else if polishing {
                self.price_dantzig(&y, &in_basis, thr)
            } else {
                match pricing.as_mut() {
                    None => self.price_dantzig(&y, &in_basis, thr),
                    Some(devex) => devex.select(&self, &y, &in_basis),
                }
            };
            let Some(q) = enter else {
                // Optimality may only be declared off a fresh
                // factorization: eta-chain duals drift, and a stale `y`
                // passing the threshold gate is exactly how a pivot path
                // terminates one vertex short of the true optimum.
                if !fact.is_fresh() {
                    if !fact.refactor(&self.basis_transpose(&basis)) {
                        status = LpStatus::NumericalBreakdown;
                        break;
                    }
                    fact.ftran_dense(&self.rhs, &mut xb);
                    continue;
                }
                if !polishing {
                    polishing = true;
                    if std::env::var_os("ROTARY_LP_DEBUG").is_some() {
                        eprintln!("lp: polish entered at iter {iterations}");
                    }
                    continue;
                }
                break; // optimal
            };

            // FTRAN: w solves B·w = A_q.
            fact.ftran_sparse(&self.cols[q], &mut w);

            // Ratio test.
            let mut leave: Option<usize> = None;
            let mut theta = f64::INFINITY;
            for i in 0..m {
                if w[i] > PIVOT_EPS {
                    let ratio = xb[i] / w[i];
                    if ratio < theta - EPS
                        || (ratio < theta + EPS && leave.is_none_or(|l| basis[i] < basis[l]))
                    {
                        theta = ratio;
                        leave = Some(i);
                    }
                }
            }
            let Some(r) = leave else {
                // A genuinely unbounded ray can only surface in the
                // classic phase (the polish entering column prices inside
                // (−PIVOT_EPS, −EPS); if no pivot element clears
                // PIVOT_EPS the exchange is numerically meaningless, not
                // an unbounded direction — stop at the current vertex).
                if polishing {
                    break;
                }
                status = LpStatus::Unbounded;
                break;
            };
            if theta < EPS {
                degenerate_streak += 1;
            } else {
                degenerate_streak = 0;
            }

            // Devex weight update needs the pivot row of B⁻¹ (pre-pivot):
            // one extra BTRAN of the unit vector e_r.
            if let Some(devex) = pricing.as_mut() {
                er.fill(0.0);
                er[r] = 1.0;
                fact.btran_in_place(&mut er, &mut rho);
                devex.pivot_update(&self, &rho, q, basis[r], w[r]);
            }

            // Pivot: push the eta update and refresh x_B.
            fact.update(r, &w);
            xb[r] = theta;
            for i in 0..m {
                if i != r {
                    xb[i] -= w[i] * theta;
                    if xb[i] < 0.0 && xb[i] > -1e-7 {
                        xb[i] = 0.0;
                    }
                }
            }
            in_basis[basis[r]] = false;
            in_basis[q] = true;
            basis[r] = q;
        }

        // Canonical extraction at optimality: sort the final basis and
        // recompute x_B from a fresh LU, so the reported solution depends
        // only on (problem data, final basis set) — not on the pivot path
        // or the eta chain that reached it. A warm-started re-solve that
        // converges to the same optimal basis as a cold solve therefore
        // reproduces its solution bit for bit.
        if status == LpStatus::Optimal {
            let mut canonical = basis.clone();
            canonical.sort_unstable();
            if let Some(fresh) = BasisFactorization::factor(&self.basis_transpose(&canonical)) {
                fresh.ftran_dense(&self.rhs, &mut xb);
                for v in xb.iter_mut() {
                    if *v < 0.0 && *v > -1e-7 {
                        *v = 0.0;
                    }
                }
                basis = canonical;
            }
        }

        if std::env::var_os("ROTARY_LP_DEBUG").is_some() {
            if let Some(wb) = warm {
                let mut overlap = 0usize;
                if !wb.slots.is_empty() && !self.problem.col_keys.is_empty() {
                    use std::collections::HashSet;
                    let fin: HashSet<BasisSlot> =
                        basis.iter().map(|&b| self.slot_of_col(b)).collect();
                    overlap = wb.slots.iter().filter(|s| fin.contains(s)).count();
                }
                eprintln!(
                    "lp warm: done iters={iterations} basis-overlap {overlap}/{}",
                    basis.len()
                );
            }
        }
        // Extract solution.
        let mut x = vec![0.0; self.problem.num_vars()];
        let mut artificial_infeasible = false;
        for (i, &b) in basis.iter().enumerate() {
            if xb[i] > 1e-6 && b >= self.artificial_start {
                artificial_infeasible = true;
            }
            if let Some((j, sign)) = self.var_of_col[b] {
                x[j] += sign * xb[i];
            }
        }
        if status == LpStatus::Optimal && artificial_infeasible {
            status = LpStatus::Infeasible;
        }
        let objective = x.iter().zip(&self.problem.obj).map(|(xi, ci)| xi * ci).sum();
        // Keyed problems carry the basis as stable-key slots so it can be
        // resolved against a later problem with a different column set.
        let slots = if self.problem.col_keys.is_empty() {
            Vec::new()
        } else {
            basis.iter().map(|&b| self.slot_of_col(b)).collect()
        };
        (
            LpSolution { status, x, objective, iterations },
            Some(LpBasis { cols: basis, slots }),
            stats,
        )
    }

    /// The current basis as the CSR of `Bᵀ` (row `k` = basis column `k`),
    /// the input form [`BasisFactorization`] factors.
    fn basis_transpose(&self, basis: &[usize]) -> CsrMatrix {
        let rows: Vec<Vec<(usize, f64)>> = basis.iter().map(|&b| self.cols[b].clone()).collect();
        CsrMatrix::from_rows(self.m, &rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} vs {b}");
    }

    #[test]
    fn simple_maximization_as_min() {
        // max x + 2y ⇔ min −x − 2y, x+y ≤ 4, y ≤ 3.
        let mut lp = LpProblem::minimize(vec![-1.0, -2.0]);
        lp.add_row(RowKind::Le, 4.0, &[(0, 1.0), (1, 1.0)]);
        lp.add_row(RowKind::Le, 3.0, &[(1, 1.0)]);
        let s = lp.solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, -7.0);
        assert_close(s.x[0], 1.0);
        assert_close(s.x[1], 3.0);
    }

    #[test]
    fn equality_and_ge_rows() {
        let mut lp = LpProblem::minimize(vec![1.0, 1.0]);
        lp.add_row(RowKind::Ge, 2.0, &[(0, 1.0), (1, 1.0)]);
        lp.add_row(RowKind::Eq, 0.0, &[(0, 1.0), (1, -1.0)]);
        let s = lp.solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.x[0], 1.0);
        assert_close(s.x[1], 1.0);
    }

    #[test]
    fn detects_infeasible() {
        let mut lp = LpProblem::minimize(vec![0.0]);
        lp.add_row(RowKind::Ge, 2.0, &[(0, 1.0)]);
        lp.add_row(RowKind::Le, 1.0, &[(0, 1.0)]);
        assert_eq!(lp.solve().status, LpStatus::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        let mut lp = LpProblem::minimize(vec![-1.0]);
        lp.add_row(RowKind::Ge, 0.0, &[(0, 1.0)]);
        assert_eq!(lp.solve().status, LpStatus::Unbounded);
    }

    #[test]
    fn free_variables() {
        // min |style| problem: min y s.t. y ≥ x − 3, y ≥ 3 − x, x free ⇒ y*=0 at x=3.
        let mut lp = LpProblem::minimize(vec![0.0, 1.0]);
        lp.set_free(0);
        lp.add_row(RowKind::Ge, -3.0, &[(1, 1.0), (0, -1.0)]); // y − x ≥ −3
        lp.add_row(RowKind::Ge, 3.0, &[(1, 1.0), (0, 1.0)]); // y + x ≥ 3
        let s = lp.solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, 0.0);
        assert_close(s.x[0], 3.0);
    }

    #[test]
    fn negative_rhs_normalization() {
        // x ≥ 0, −x ≤ −2 ⇔ x ≥ 2; min x ⇒ 2.
        let mut lp = LpProblem::minimize(vec![1.0]);
        lp.add_row(RowKind::Le, -2.0, &[(0, -1.0)]);
        let s = lp.solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, 2.0);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Multiple redundant constraints through the same vertex.
        let mut lp = LpProblem::minimize(vec![-1.0, -1.0]);
        lp.add_row(RowKind::Le, 1.0, &[(0, 1.0)]);
        lp.add_row(RowKind::Le, 1.0, &[(0, 1.0), (1, 0.0)]);
        lp.add_row(RowKind::Le, 1.0, &[(1, 1.0)]);
        lp.add_row(RowKind::Le, 2.0, &[(0, 1.0), (1, 1.0)]);
        let s = lp.solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, -2.0);
    }

    #[test]
    fn transportation_lp_matches_known_optimum() {
        // 2 supplies (1,1) → 2 demands (1,1); costs: c00=1,c01=5,c10=4,c11=2.
        // Optimal: x00=1, x11=1, cost 3.
        let mut lp = LpProblem::minimize(vec![1.0, 5.0, 4.0, 2.0]);
        lp.add_row(RowKind::Eq, 1.0, &[(0, 1.0), (1, 1.0)]);
        lp.add_row(RowKind::Eq, 1.0, &[(2, 1.0), (3, 1.0)]);
        lp.add_row(RowKind::Le, 1.0, &[(0, 1.0), (2, 1.0)]);
        lp.add_row(RowKind::Le, 1.0, &[(1, 1.0), (3, 1.0)]);
        let s = lp.solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, 3.0);
    }

    #[test]
    fn min_max_assignment_relaxation() {
        // Two items, two bins, each item's cheap bin distinct:
        // integral optimum puts each item in its cheap bin, max load 1.
        let mut lp = LpProblem::minimize(vec![0.0, 0.0, 0.0, 0.0, 1.0]);
        lp.add_row(RowKind::Eq, 1.0, &[(0, 1.0), (1, 1.0)]);
        lp.add_row(RowKind::Eq, 1.0, &[(2, 1.0), (3, 1.0)]);
        lp.add_row(RowKind::Le, 0.0, &[(0, 3.0), (2, 1.0), (4, -1.0)]);
        lp.add_row(RowKind::Le, 0.0, &[(1, 1.0), (3, 3.0), (4, -1.0)]);
        let s = lp.solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, 1.0);
    }

    #[test]
    fn min_max_relaxation_fractional_beats_integral() {
        // One item, two bins of load 2: LP splits 50/50 ⇒ t* = 1, while any
        // integral assignment gives 2 — the integrality gap of Section VI.
        let mut lp = LpProblem::minimize(vec![0.0, 0.0, 1.0]);
        lp.add_row(RowKind::Eq, 1.0, &[(0, 1.0), (1, 1.0)]);
        lp.add_row(RowKind::Le, 0.0, &[(0, 2.0), (2, -1.0)]);
        lp.add_row(RowKind::Le, 0.0, &[(1, 2.0), (2, -1.0)]);
        let s = lp.solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, 1.0);
        assert_close(s.x[0], 0.5);
    }

    #[test]
    fn no_constraints_zero_or_unbounded() {
        let lp = LpProblem::minimize(vec![1.0, 0.0]);
        assert_eq!(lp.solve().status, LpStatus::Optimal);
        let lp2 = LpProblem::minimize(vec![-1.0]);
        assert_eq!(lp2.solve().status, LpStatus::Unbounded);
    }

    #[test]
    fn iteration_limit_is_honored() {
        // A non-trivial LP with an absurdly low iteration cap reports
        // IterationLimit instead of looping.
        let n = 30;
        let mut lp = LpProblem::minimize(vec![-1.0; n]);
        for i in 0..n {
            let row: Vec<_> = (0..n).map(|j| (j, if i == j { 2.0 } else { 1.0 })).collect();
            lp.add_row(RowKind::Le, 10.0, &row);
        }
        lp.set_iteration_limit(3);
        let s = lp.solve();
        assert_eq!(s.status, LpStatus::IterationLimit);
        assert!(s.iterations <= 3);
    }

    #[test]
    fn solution_reports_iteration_count() {
        let mut lp = LpProblem::minimize(vec![-1.0]);
        lp.add_row(RowKind::Le, 5.0, &[(0, 1.0)]);
        let s = lp.solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert!(s.iterations >= 1);
    }

    #[test]
    fn duplicate_coefficients_accumulate_rowwise() {
        // add_row with the same variable twice keeps both entries; the
        // constraint behaves as their sum (x + x ≤ 4 ⇒ x ≤ 2).
        let mut lp = LpProblem::minimize(vec![-1.0]);
        lp.add_row(RowKind::Le, 4.0, &[(0, 1.0), (0, 1.0)]);
        let s = lp.solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.x[0], 2.0);
    }

    #[test]
    fn larger_random_lp_agrees_with_feasibility() {
        // A diagonally dominant feasible system: x_i ≥ i, minimize Σ x_i.
        let n = 40;
        let mut lp = LpProblem::minimize(vec![1.0; n]);
        for i in 0..n {
            lp.add_row(RowKind::Ge, i as f64, &[(i, 1.0)]);
        }
        let s = lp.solve();
        assert_eq!(s.status, LpStatus::Optimal);
        let expect: f64 = (0..n).map(|i| i as f64).sum();
        assert_close(s.objective, expect);
    }

    /// A pseudo-random min-max assignment instance shared by the pricing /
    /// warm-start tests below.
    fn assignment_instance(items: usize, bins: usize, seed: u64, bump: f64) -> LpProblem {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 100.0 + 1.0
        };
        let t = items * bins;
        let mut obj = vec![0.0; t + 1];
        obj[t] = 1.0;
        let mut loads = vec![vec![0.0; bins]; items];
        for row in loads.iter_mut() {
            for l in row.iter_mut() {
                *l = next() + bump;
            }
        }
        let mut lp = LpProblem::minimize(obj);
        for (i, _) in loads.iter().enumerate() {
            let row: Vec<_> = (0..bins).map(|j| (i * bins + j, 1.0)).collect();
            lp.add_row(RowKind::Eq, 1.0, &row);
        }
        for j in 0..bins {
            let mut row: Vec<_> =
                loads.iter().enumerate().map(|(i, l)| (i * bins + j, l[j])).collect();
            row.push((t, -1.0));
            lp.add_row(RowKind::Le, 0.0, &row);
        }
        lp
    }

    #[test]
    fn devex_partial_matches_dantzig_optimum() {
        for seed in 0..6 {
            let mut a = assignment_instance(12, 4, seed, 0.0);
            a.set_pricing(Pricing::Dantzig);
            let mut b = assignment_instance(12, 4, seed, 0.0);
            b.set_pricing(Pricing::DevexPartial);
            let (sa, sb) = (a.solve(), b.solve());
            assert_eq!(sa.status, LpStatus::Optimal);
            assert_eq!(sb.status, LpStatus::Optimal);
            assert!(
                (sa.objective - sb.objective).abs() < 1e-6,
                "seed {seed}: {} vs {}",
                sa.objective,
                sb.objective
            );
        }
    }

    #[test]
    fn warm_start_resolves_perturbed_problem() {
        let cold = assignment_instance(15, 5, 7, 0.0);
        let (s0, basis) = cold.solve_with_basis(None);
        assert_eq!(s0.status, LpStatus::Optimal);
        let basis = basis.expect("basis returned");
        assert_eq!(basis.num_rows(), cold.num_rows());

        // Same structure, slightly moved loads: the warm solve must agree
        // with a cold solve of the perturbed problem and converge at least
        // as fast.
        let warm_problem = assignment_instance(15, 5, 7, 0.05);
        let (warm, _) = warm_problem.solve_with_basis(Some(&basis));
        let (coldp, _) = warm_problem.solve_with_basis(None);
        assert_eq!(warm.status, LpStatus::Optimal);
        assert!(
            (warm.objective - coldp.objective).abs() < 1e-6,
            "{} vs {}",
            warm.objective,
            coldp.objective
        );
        assert!(
            warm.iterations <= coldp.iterations,
            "warm {} > cold {}",
            warm.iterations,
            coldp.iterations
        );
    }

    #[test]
    fn warm_start_identical_problem_is_bit_exact_and_instant() {
        let lp = assignment_instance(10, 4, 3, 0.0);
        let (s0, basis) = lp.solve_with_basis(None);
        let (s1, _) = lp.solve_with_basis(basis.as_ref());
        assert_eq!(s0.status, LpStatus::Optimal);
        assert_eq!(s1.status, LpStatus::Optimal);
        assert_eq!(s0.x, s1.x, "canonical extraction must be path-independent");
        assert!(s1.iterations <= 2, "re-solve from the optimal basis took {}", s1.iterations);
    }

    #[test]
    fn incompatible_warm_basis_falls_back_to_cold() {
        let small = assignment_instance(4, 2, 1, 0.0);
        let (_, basis) = small.solve_with_basis(None);
        let big = assignment_instance(9, 3, 2, 0.0);
        let (s, _) = big.solve_with_basis(basis.as_ref());
        assert_eq!(s.status, LpStatus::Optimal);
        let (s_cold, _) = big.solve_with_basis(None);
        assert_eq!(s.x, s_cold.x);
    }

    /// `assignment_instance` with stable column/row keys and an optional
    /// set of dropped `(item, bin)` candidate columns — the keyed shape the
    /// flow's assignment relaxation uses.
    fn keyed_assignment_instance(
        items: usize,
        bins: usize,
        seed: u64,
        bump: f64,
        drop: &[(usize, usize)],
    ) -> LpProblem {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 100.0 + 1.0
        };
        let keep = |i: usize, j: usize| !drop.contains(&(i, j));
        let mut var_of = vec![vec![usize::MAX; bins]; items];
        let mut col_keys = Vec::new();
        let mut loads = Vec::new();
        for (i, vars) in var_of.iter_mut().enumerate() {
            for (j, var) in vars.iter_mut().enumerate() {
                let load = next() + bump;
                if keep(i, j) {
                    *var = col_keys.len();
                    col_keys.push(((i as u64) << 32) | (j as u64 + 1));
                    loads.push(load);
                }
            }
        }
        let t = col_keys.len();
        col_keys.push(u64::MAX);
        let mut obj = vec![0.0; t + 1];
        obj[t] = 1.0;
        let mut lp = LpProblem::minimize(obj);
        let mut row_keys = Vec::new();
        for vars in var_of.iter() {
            let row: Vec<_> =
                vars.iter().filter(|&&v| v != usize::MAX).map(|&v| (v, 1.0)).collect();
            lp.add_row(RowKind::Eq, 1.0, &row);
            row_keys.push(row_keys.len() as u64);
        }
        for j in 0..bins {
            let mut row: Vec<_> = (0..items)
                .filter(|&i| var_of[i][j] != usize::MAX)
                .map(|i| (var_of[i][j], loads[var_of[i][j]]))
                .collect();
            if row.is_empty() {
                continue;
            }
            row.push((t, -1.0));
            lp.add_row(RowKind::Le, 0.0, &row);
            row_keys.push((1u64 << 32) | j as u64);
        }
        lp.set_col_keys(col_keys);
        lp.set_row_keys(row_keys);
        lp
    }

    #[test]
    fn dual_repair_fires_on_rhs_drift_and_matches_cold_bitwise() {
        // max 2x+y (as min) s.t. x ≤ 2, y ≤ 2, x+y ≤ 3: unique optimum
        // (2,1), basis {x, y, s2}.
        let build = |b1: f64| {
            let mut lp = LpProblem::minimize(vec![-2.0, -1.0]);
            lp.add_row(RowKind::Le, b1, &[(0, 1.0)]);
            lp.add_row(RowKind::Le, 2.0, &[(1, 1.0)]);
            lp.add_row(RowKind::Le, 3.0, &[(0, 1.0), (1, 1.0)]);
            lp
        };
        let (s0, basis) = build(2.0).solve_with_basis(None);
        assert_eq!(s0.status, LpStatus::Optimal);
        assert_close(s0.x[0], 2.0);
        assert_close(s0.x[1], 1.0);

        // Relax x ≤ 2 to x ≤ 4: the carried basis solves to y = −1
        // (primal infeasible) with untouched reduced costs (dual
        // feasible) — exactly the dual-simplex repair case.
        let drifted = build(4.0);
        let (warm, _, stats) = drifted.solve_with_basis_stats(basis.as_ref());
        assert_eq!(stats.mode, WarmMode::DualRepair, "rhs drift must take the dual repair path");
        assert!(stats.dual_pivots >= 1, "repair performs at least one dual pivot");
        assert_eq!(warm.status, LpStatus::Optimal);
        let (cold, _, cold_stats) = drifted.solve_with_basis_stats(None);
        assert_eq!(cold_stats.mode, WarmMode::Cold);
        assert_eq!(warm.x, cold.x, "canonical extraction: warm ≡ cold to the bit");
        assert_close(warm.x[0], 3.0);
        assert_close(warm.x[1], 0.0);
    }

    #[test]
    fn keyed_warm_start_survives_cost_drift_bitwise() {
        let base = keyed_assignment_instance(12, 4, 5, 0.0, &[]);
        let (s0, basis) = base.solve_with_basis(None);
        assert_eq!(s0.status, LpStatus::Optimal);

        let drifted = keyed_assignment_instance(12, 4, 5, 0.25, &[]);
        let (warm, _, stats) = drifted.solve_with_basis_stats(basis.as_ref());
        let (cold, _, _) = drifted.solve_with_basis_stats(None);
        assert_eq!(warm.status, LpStatus::Optimal);
        assert_ne!(stats.mode, WarmMode::Cold, "keyed basis must resolve on pure cost drift");
        assert_eq!(stats.mapped_columns, drifted.num_rows(), "every slot maps: same structure");
        assert_eq!(stats.dropped_slots, 0);
        assert_eq!(warm.x, cold.x);
    }

    #[test]
    fn keyed_warm_start_survives_added_and_dropped_columns() {
        // Basis of the full instance, re-solved on an instance with two
        // *nonbasic* candidate columns dropped (column indices shift —
        // only the keys survive) and drifted loads: every basis slot maps,
        // so the warm start must fire.
        let full = keyed_assignment_instance(12, 4, 9, 0.0, &[]);
        let (s0, basis) = full.solve_with_basis(None);
        assert_eq!(s0.status, LpStatus::Optimal);
        let basis_keys: Vec<u64> = basis
            .as_ref()
            .unwrap()
            .slots
            .iter()
            .filter_map(|s| match s {
                BasisSlot::Structural { key, .. } => Some(*key),
                _ => None,
            })
            .collect();
        let nonbasic: Vec<(usize, usize)> = (0..12)
            .flat_map(|i| (0..4).map(move |j| (i, j)))
            .filter(|&(i, j)| !basis_keys.contains(&(((i as u64) << 32) | (j as u64 + 1))))
            .take(2)
            .collect();
        assert_eq!(nonbasic.len(), 2, "instance leaves at least two candidates nonbasic");

        let dropped = keyed_assignment_instance(12, 4, 9, 0.1, &nonbasic);
        let (warm, dbasis, stats) = dropped.solve_with_basis_stats(basis.as_ref());
        let (cold, _, _) = dropped.solve_with_basis_stats(None);
        assert_eq!(warm.status, LpStatus::Optimal);
        assert_ne!(stats.mode, WarmMode::Cold, "keyed resolution must survive dropped columns");
        assert_eq!(stats.mapped_columns, dropped.num_rows(), "all slots map: drops were nonbasic");
        assert_eq!(stats.dropped_slots, 0);
        assert_eq!(warm.x, cold.x);

        // And back: the dropped-instance basis warm-starts the full
        // instance (columns added relative to the basis problem).
        let full2 = keyed_assignment_instance(12, 4, 9, 0.2, &[]);
        let (warm2, _, stats2) = full2.solve_with_basis_stats(dbasis.as_ref());
        let (cold2, _, _) = full2.solve_with_basis_stats(None);
        assert_eq!(warm2.status, LpStatus::Optimal);
        assert_ne!(stats2.mode, WarmMode::Cold, "keyed resolution must survive added columns");
        assert_eq!(warm2.x, cold2.x);

        // Dropping a *basic* column is allowed to fall back cold (its
        // replacement may break both feasibilities) — but the result must
        // still match the cold solve bit for bit.
        let basic_pair = (0..12)
            .flat_map(|i| (0..4).map(move |j| (i, j)))
            .find(|&(i, j)| basis_keys.contains(&(((i as u64) << 32) | (j as u64 + 1))))
            .expect("some candidate is basic");
        let dropped_basic = keyed_assignment_instance(12, 4, 9, 0.1, &[basic_pair]);
        let (warm3, _, _) = dropped_basic.solve_with_basis_stats(basis.as_ref());
        let (cold3, _, _) = dropped_basic.solve_with_basis_stats(None);
        assert_eq!(warm3.status, LpStatus::Optimal);
        assert_eq!(warm3.x, cold3.x);
    }

    #[test]
    fn keyed_warm_start_across_disjoint_keys_falls_back_cold() {
        // No shared structural keys at all: the resolution maps nothing
        // structural, the artificial-filled basis is the cold start in
        // disguise — and the solve must still be correct.
        let a = keyed_assignment_instance(6, 3, 2, 0.0, &[]);
        let (_, basis) = a.solve_with_basis(None);
        let mut b = keyed_assignment_instance(6, 3, 4, 0.0, &[]);
        // Shift every key so none survive.
        let shifted: Vec<u64> = (0..b.num_vars()).map(|v| (v as u64) | (1 << 60)).collect();
        b.set_col_keys(shifted);
        let (warm, _, _) = b.solve_with_basis_stats(basis.as_ref());
        let (cold, _, _) = b.solve_with_basis_stats(None);
        assert_eq!(warm.status, LpStatus::Optimal);
        assert_eq!(warm.x, cold.x);
    }

    #[test]
    fn in_place_patch_is_equivalent_to_rebuild() {
        // update_coeff/set_objective_coeff on the structure of seed 5 must
        // produce the exact problem keyed_assignment_instance builds for
        // the drifted loads — same solution to the bit.
        let drifted = keyed_assignment_instance(8, 3, 5, 0.5, &[]);
        let mut patched = keyed_assignment_instance(8, 3, 5, 0.0, &[]);
        for j in 0..patched.num_vars() {
            patched.set_objective_coeff(j, drifted.obj[j]);
            for &(row, a) in &drifted.cols[j] {
                patched.update_coeff(j, row, a);
            }
        }
        let (a, _, _) = drifted.solve_with_basis_stats(None);
        let (b, _, _) = patched.solve_with_basis_stats(None);
        assert_eq!(a.status, LpStatus::Optimal);
        assert_eq!(a.x, b.x);
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn parallel_pricing_scan_is_deterministic() {
        // Force the fan-out path with a tiny threshold and compare against
        // the sequential default — selections must be bit-identical.
        let mut seq = assignment_instance(20, 6, 11, 0.0);
        seq.set_par_config(ParConfig { min_parallel: usize::MAX, max_threads: 1 });
        let mut par = assignment_instance(20, 6, 11, 0.0);
        par.set_par_config(ParConfig { min_parallel: 8, max_threads: 4 });
        let (a, b) = (seq.solve(), par.solve());
        assert_eq!(a.status, LpStatus::Optimal);
        assert_eq!(a.x, b.x);
        assert_eq!(a.iterations, b.iterations);
    }
}
