//! Revised primal simplex on a sparse LU basis factorization.
//!
//! Design point: the LPs this workspace solves have **few rows**
//! (one per flip-flop plus one per ring, ≈ 1 800 for the largest benchmark)
//! but may have many sparse columns (one per candidate flip-flop/ring arc),
//! and every basis is extremely sparse (slacks, artificials, and assignment
//! columns with a handful of entries). The basis is therefore kept as a
//! [`crate::sparse::BasisFactorization`]: sparse LU with partial pivoting,
//! product-form eta updates per pivot, and periodic refactorization to
//! bound eta-chain length and numerical drift. FTRAN/BTRAN cost tracks the
//! basis nonzero count instead of the `O(m²)` per-pivot work of the dense
//! `m × m` inverse this module used to maintain. Bland's rule remains the
//! anti-cycling fallback when degeneracy stalls progress.
//!
//! Infeasibility/unboundedness are detected via the Big-M composite
//! objective: artificial variables receive cost `M` scaled far above any
//! structural cost.

use crate::sparse::{BasisFactorization, CsrMatrix};
use serde::{Deserialize, Serialize};

/// Constraint sense of an LP row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RowKind {
    /// `a·x ≤ b`
    Le,
    /// `a·x = b`
    Eq,
    /// `a·x ≥ b`
    Ge,
}

/// Solver outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LpStatus {
    /// Optimal solution found.
    Optimal,
    /// No feasible point exists.
    Infeasible,
    /// Objective unbounded below.
    Unbounded,
    /// Iteration limit hit before convergence (solution is the incumbent).
    IterationLimit,
}

/// Result of [`LpProblem::solve`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LpSolution {
    /// Outcome status.
    pub status: LpStatus,
    /// Primal values of the structural variables (length = number of
    /// variables of the problem). Meaningful for `Optimal` and
    /// `IterationLimit`.
    pub x: Vec<f64>,
    /// Objective value `c·x`.
    pub objective: f64,
    /// Simplex iterations performed.
    pub iterations: usize,
}

/// A linear program `minimize c·x subject to rows, x ≥ 0 (or free)`.
///
/// Build with [`LpProblem::minimize`], add rows with [`LpProblem::add_row`],
/// mark free variables with [`LpProblem::set_free`], then [`LpProblem::solve`].
///
/// # Examples
///
/// ```
/// use rotary_solver::lp::{LpProblem, LpStatus, RowKind};
///
/// // minimize x + y  s.t.  x + y ≥ 2, x − y = 0
/// let mut lp = LpProblem::minimize(vec![1.0, 1.0]);
/// lp.add_row(RowKind::Ge, 2.0, &[(0, 1.0), (1, 1.0)]);
/// lp.add_row(RowKind::Eq, 0.0, &[(0, 1.0), (1, -1.0)]);
/// let s = lp.solve();
/// assert_eq!(s.status, LpStatus::Optimal);
/// assert!((s.x[0] - 1.0).abs() < 1e-7 && (s.x[1] - 1.0).abs() < 1e-7);
/// ```
#[derive(Debug, Clone)]
pub struct LpProblem {
    obj: Vec<f64>,
    free: Vec<bool>,
    rows: Vec<(RowKind, f64)>,
    /// Column-sparse structural coefficients: `cols[j] = [(row, coeff)]`.
    cols: Vec<Vec<(usize, f64)>>,
    max_iters: usize,
}

impl LpProblem {
    /// Creates a minimization problem with the given objective vector; all
    /// variables default to `x_j ≥ 0`.
    pub fn minimize(objective: Vec<f64>) -> Self {
        let n = objective.len();
        Self {
            obj: objective,
            free: vec![false; n],
            rows: Vec::new(),
            cols: vec![Vec::new(); n],
            max_iters: 200_000,
        }
    }

    /// Number of structural variables.
    pub fn num_vars(&self) -> usize {
        self.obj.len()
    }

    /// Number of constraint rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Declares variable `j` free (unrestricted in sign).
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn set_free(&mut self, j: usize) {
        self.free[j] = true;
    }

    /// Caps the number of simplex iterations (default 200 000).
    pub fn set_iteration_limit(&mut self, limit: usize) {
        self.max_iters = limit;
    }

    /// Adds a row `Σ coeffs · x {≤,=,≥} rhs` and returns its index.
    ///
    /// # Panics
    ///
    /// Panics if any referenced variable is out of range.
    pub fn add_row(&mut self, kind: RowKind, rhs: f64, coeffs: &[(usize, f64)]) -> usize {
        let r = self.rows.len();
        self.rows.push((kind, rhs));
        for &(j, a) in coeffs {
            assert!(j < self.cols.len(), "variable {j} out of range");
            if a != 0.0 {
                self.cols[j].push((r, a));
            }
        }
        r
    }

    /// Solves the LP.
    pub fn solve(&self) -> LpSolution {
        Simplex::new(self).run()
    }
}

/// Internal computational form: all rows normalized to `b ≥ 0`; columns are
/// structural (with free variables split), then slack/surplus, then
/// artificial.
struct Simplex<'a> {
    problem: &'a LpProblem,
    m: usize,
    /// Column-sparse matrix including slacks and artificials.
    cols: Vec<Vec<(usize, f64)>>,
    cost: Vec<f64>,
    /// Map from internal column to (structural var, sign) if structural.
    var_of_col: Vec<Option<(usize, f64)>>,
    artificial_start: usize,
    rhs: Vec<f64>,
}

const EPS: f64 = 1e-9;
const PIVOT_EPS: f64 = 1e-7;

impl<'a> Simplex<'a> {
    fn new(problem: &'a LpProblem) -> Self {
        let m = problem.rows.len();
        // Row sign normalization: multiply rows with negative rhs by −1 and
        // flip the sense.
        let mut row_sign = vec![1.0; m];
        let mut kinds: Vec<RowKind> = Vec::with_capacity(m);
        let mut rhs = Vec::with_capacity(m);
        for (i, &(kind, b)) in problem.rows.iter().enumerate() {
            if b < 0.0 {
                row_sign[i] = -1.0;
                rhs.push(-b);
                kinds.push(match kind {
                    RowKind::Le => RowKind::Ge,
                    RowKind::Ge => RowKind::Le,
                    RowKind::Eq => RowKind::Eq,
                });
            } else {
                rhs.push(b);
                kinds.push(kind);
            }
        }

        let mut cols = Vec::new();
        let mut cost = Vec::new();
        let mut var_of_col = Vec::new();
        let mut max_abs_cost: f64 = 1.0;

        for j in 0..problem.num_vars() {
            let col: Vec<(usize, f64)> =
                problem.cols[j].iter().map(|&(r, a)| (r, a * row_sign[r])).collect();
            max_abs_cost = max_abs_cost.max(problem.obj[j].abs());
            cols.push(col.clone());
            cost.push(problem.obj[j]);
            var_of_col.push(Some((j, 1.0)));
            if problem.free[j] {
                // Negative part x⁻: column −A_j, cost −c_j.
                cols.push(col.iter().map(|&(r, a)| (r, -a)).collect());
                cost.push(-problem.obj[j]);
                var_of_col.push(Some((j, -1.0)));
            }
        }
        // Slacks / surplus.
        for (i, &kind) in kinds.iter().enumerate() {
            match kind {
                RowKind::Le => {
                    cols.push(vec![(i, 1.0)]);
                    cost.push(0.0);
                    var_of_col.push(None);
                }
                RowKind::Ge => {
                    cols.push(vec![(i, -1.0)]);
                    cost.push(0.0);
                    var_of_col.push(None);
                }
                RowKind::Eq => {}
            }
        }
        let artificial_start = cols.len();
        let big_m = 1e7 * max_abs_cost;
        for i in 0..m {
            cols.push(vec![(i, 1.0)]);
            cost.push(big_m);
            var_of_col.push(None);
        }

        Self { problem, m, cols, cost, var_of_col, artificial_start, rhs }
    }

    fn run(self) -> LpSolution {
        let m = self.m;
        if m == 0 {
            // No constraints: optimum is 0 for x ≥ 0 with c ≥ 0, else unbounded.
            let unbounded = self
                .problem
                .obj
                .iter()
                .zip(&self.problem.free)
                .any(|(&c, &f)| c < -EPS || (f && c.abs() > EPS));
            return LpSolution {
                status: if unbounded { LpStatus::Unbounded } else { LpStatus::Optimal },
                x: vec![0.0; self.problem.num_vars()],
                objective: 0.0,
                iterations: 0,
            };
        }

        // Basis: artificials (an identity matrix, which trivially factors).
        let mut basis: Vec<usize> = (self.artificial_start..self.artificial_start + m).collect();
        let mut in_basis = vec![false; self.cols.len()];
        for &b in &basis {
            in_basis[b] = true;
        }
        let mut fact = BasisFactorization::factor(&self.basis_transpose(&basis))
            .expect("identity start basis factors");
        let mut xb: Vec<f64> = self.rhs.clone();

        let mut iterations = 0usize;
        let mut degenerate_streak = 0usize;
        let mut status = LpStatus::Optimal;

        let mut y = vec![0.0; m];
        let mut w = vec![0.0; m];
        let mut cb = vec![0.0; m];

        loop {
            if iterations >= self.problem.max_iters {
                status = LpStatus::IterationLimit;
                break;
            }
            iterations += 1;
            if fact.wants_refactor() {
                if !fact.refactor(&self.basis_transpose(&basis)) {
                    // Singular basis due to drift — give up with incumbent.
                    status = LpStatus::IterationLimit;
                    break;
                }
                fact.ftran_dense(&self.rhs, &mut xb);
            }

            // BTRAN: y solves yᵀB = c_Bᵀ.
            for (ci, &b) in cb.iter_mut().zip(&basis) {
                *ci = self.cost[b];
            }
            fact.btran(&cb, &mut y);

            // Pricing.
            let use_bland = degenerate_streak > 2 * m + 20;
            let mut enter: Option<usize> = None;
            let mut best = -PIVOT_EPS;
            for (j, &basic) in in_basis.iter().enumerate().take(self.cols.len()) {
                if basic {
                    continue;
                }
                let mut d = self.cost[j];
                for &(r, a) in &self.cols[j] {
                    d -= y[r] * a;
                }
                if use_bland {
                    if d < -PIVOT_EPS {
                        enter = Some(j);
                        break;
                    }
                } else if d < best {
                    best = d;
                    enter = Some(j);
                }
            }
            let Some(q) = enter else {
                break; // optimal
            };

            // FTRAN: w solves B·w = A_q.
            fact.ftran_sparse(&self.cols[q], &mut w);

            // Ratio test.
            let mut leave: Option<usize> = None;
            let mut theta = f64::INFINITY;
            for i in 0..m {
                if w[i] > PIVOT_EPS {
                    let ratio = xb[i] / w[i];
                    if ratio < theta - EPS
                        || (ratio < theta + EPS && leave.is_none_or(|l| basis[i] < basis[l]))
                    {
                        theta = ratio;
                        leave = Some(i);
                    }
                }
            }
            let Some(r) = leave else {
                status = LpStatus::Unbounded;
                break;
            };
            if theta < EPS {
                degenerate_streak += 1;
            } else {
                degenerate_streak = 0;
            }

            // Pivot: push the eta update and refresh x_B.
            fact.update(r, &w);
            xb[r] = theta;
            for i in 0..m {
                if i != r {
                    xb[i] -= w[i] * theta;
                    if xb[i] < 0.0 && xb[i] > -1e-7 {
                        xb[i] = 0.0;
                    }
                }
            }
            in_basis[basis[r]] = false;
            in_basis[q] = true;
            basis[r] = q;
        }

        // Extract solution.
        let mut x = vec![0.0; self.problem.num_vars()];
        let mut artificial_infeasible = false;
        for (i, &b) in basis.iter().enumerate() {
            if xb[i] > 1e-6 && b >= self.artificial_start {
                artificial_infeasible = true;
            }
            if let Some((j, sign)) = self.var_of_col[b] {
                x[j] += sign * xb[i];
            }
        }
        if status == LpStatus::Optimal && artificial_infeasible {
            status = LpStatus::Infeasible;
        }
        let objective = x.iter().zip(&self.problem.obj).map(|(xi, ci)| xi * ci).sum();
        LpSolution { status, x, objective, iterations }
    }

    /// The current basis as the CSR of `Bᵀ` (row `k` = basis column `k`),
    /// the input form [`BasisFactorization`] factors.
    fn basis_transpose(&self, basis: &[usize]) -> CsrMatrix {
        let rows: Vec<Vec<(usize, f64)>> = basis.iter().map(|&b| self.cols[b].clone()).collect();
        CsrMatrix::from_rows(self.m, &rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} vs {b}");
    }

    #[test]
    fn simple_maximization_as_min() {
        // max x + 2y ⇔ min −x − 2y, x+y ≤ 4, y ≤ 3.
        let mut lp = LpProblem::minimize(vec![-1.0, -2.0]);
        lp.add_row(RowKind::Le, 4.0, &[(0, 1.0), (1, 1.0)]);
        lp.add_row(RowKind::Le, 3.0, &[(1, 1.0)]);
        let s = lp.solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, -7.0);
        assert_close(s.x[0], 1.0);
        assert_close(s.x[1], 3.0);
    }

    #[test]
    fn equality_and_ge_rows() {
        let mut lp = LpProblem::minimize(vec![1.0, 1.0]);
        lp.add_row(RowKind::Ge, 2.0, &[(0, 1.0), (1, 1.0)]);
        lp.add_row(RowKind::Eq, 0.0, &[(0, 1.0), (1, -1.0)]);
        let s = lp.solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.x[0], 1.0);
        assert_close(s.x[1], 1.0);
    }

    #[test]
    fn detects_infeasible() {
        let mut lp = LpProblem::minimize(vec![0.0]);
        lp.add_row(RowKind::Ge, 2.0, &[(0, 1.0)]);
        lp.add_row(RowKind::Le, 1.0, &[(0, 1.0)]);
        assert_eq!(lp.solve().status, LpStatus::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        let mut lp = LpProblem::minimize(vec![-1.0]);
        lp.add_row(RowKind::Ge, 0.0, &[(0, 1.0)]);
        assert_eq!(lp.solve().status, LpStatus::Unbounded);
    }

    #[test]
    fn free_variables() {
        // min |style| problem: min y s.t. y ≥ x − 3, y ≥ 3 − x, x free ⇒ y*=0 at x=3.
        let mut lp = LpProblem::minimize(vec![0.0, 1.0]);
        lp.set_free(0);
        lp.add_row(RowKind::Ge, -3.0, &[(1, 1.0), (0, -1.0)]); // y − x ≥ −3
        lp.add_row(RowKind::Ge, 3.0, &[(1, 1.0), (0, 1.0)]); // y + x ≥ 3
        let s = lp.solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, 0.0);
        assert_close(s.x[0], 3.0);
    }

    #[test]
    fn negative_rhs_normalization() {
        // x ≥ 0, −x ≤ −2 ⇔ x ≥ 2; min x ⇒ 2.
        let mut lp = LpProblem::minimize(vec![1.0]);
        lp.add_row(RowKind::Le, -2.0, &[(0, -1.0)]);
        let s = lp.solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, 2.0);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Multiple redundant constraints through the same vertex.
        let mut lp = LpProblem::minimize(vec![-1.0, -1.0]);
        lp.add_row(RowKind::Le, 1.0, &[(0, 1.0)]);
        lp.add_row(RowKind::Le, 1.0, &[(0, 1.0), (1, 0.0)]);
        lp.add_row(RowKind::Le, 1.0, &[(1, 1.0)]);
        lp.add_row(RowKind::Le, 2.0, &[(0, 1.0), (1, 1.0)]);
        let s = lp.solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, -2.0);
    }

    #[test]
    fn transportation_lp_matches_known_optimum() {
        // 2 supplies (1,1) → 2 demands (1,1); costs: c00=1,c01=5,c10=4,c11=2.
        // Optimal: x00=1, x11=1, cost 3.
        let mut lp = LpProblem::minimize(vec![1.0, 5.0, 4.0, 2.0]);
        lp.add_row(RowKind::Eq, 1.0, &[(0, 1.0), (1, 1.0)]);
        lp.add_row(RowKind::Eq, 1.0, &[(2, 1.0), (3, 1.0)]);
        lp.add_row(RowKind::Le, 1.0, &[(0, 1.0), (2, 1.0)]);
        lp.add_row(RowKind::Le, 1.0, &[(1, 1.0), (3, 1.0)]);
        let s = lp.solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, 3.0);
    }

    #[test]
    fn min_max_assignment_relaxation() {
        // Two items, two bins, each item's cheap bin distinct:
        // integral optimum puts each item in its cheap bin, max load 1.
        let mut lp = LpProblem::minimize(vec![0.0, 0.0, 0.0, 0.0, 1.0]);
        lp.add_row(RowKind::Eq, 1.0, &[(0, 1.0), (1, 1.0)]);
        lp.add_row(RowKind::Eq, 1.0, &[(2, 1.0), (3, 1.0)]);
        lp.add_row(RowKind::Le, 0.0, &[(0, 3.0), (2, 1.0), (4, -1.0)]);
        lp.add_row(RowKind::Le, 0.0, &[(1, 1.0), (3, 3.0), (4, -1.0)]);
        let s = lp.solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, 1.0);
    }

    #[test]
    fn min_max_relaxation_fractional_beats_integral() {
        // One item, two bins of load 2: LP splits 50/50 ⇒ t* = 1, while any
        // integral assignment gives 2 — the integrality gap of Section VI.
        let mut lp = LpProblem::minimize(vec![0.0, 0.0, 1.0]);
        lp.add_row(RowKind::Eq, 1.0, &[(0, 1.0), (1, 1.0)]);
        lp.add_row(RowKind::Le, 0.0, &[(0, 2.0), (2, -1.0)]);
        lp.add_row(RowKind::Le, 0.0, &[(1, 2.0), (2, -1.0)]);
        let s = lp.solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, 1.0);
        assert_close(s.x[0], 0.5);
    }

    #[test]
    fn no_constraints_zero_or_unbounded() {
        let lp = LpProblem::minimize(vec![1.0, 0.0]);
        assert_eq!(lp.solve().status, LpStatus::Optimal);
        let lp2 = LpProblem::minimize(vec![-1.0]);
        assert_eq!(lp2.solve().status, LpStatus::Unbounded);
    }

    #[test]
    fn iteration_limit_is_honored() {
        // A non-trivial LP with an absurdly low iteration cap reports
        // IterationLimit instead of looping.
        let n = 30;
        let mut lp = LpProblem::minimize(vec![-1.0; n]);
        for i in 0..n {
            let row: Vec<_> = (0..n).map(|j| (j, if i == j { 2.0 } else { 1.0 })).collect();
            lp.add_row(RowKind::Le, 10.0, &row);
        }
        lp.set_iteration_limit(3);
        let s = lp.solve();
        assert_eq!(s.status, LpStatus::IterationLimit);
        assert!(s.iterations <= 3);
    }

    #[test]
    fn solution_reports_iteration_count() {
        let mut lp = LpProblem::minimize(vec![-1.0]);
        lp.add_row(RowKind::Le, 5.0, &[(0, 1.0)]);
        let s = lp.solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert!(s.iterations >= 1);
    }

    #[test]
    fn duplicate_coefficients_accumulate_rowwise() {
        // add_row with the same variable twice keeps both entries; the
        // constraint behaves as their sum (x + x ≤ 4 ⇒ x ≤ 2).
        let mut lp = LpProblem::minimize(vec![-1.0]);
        lp.add_row(RowKind::Le, 4.0, &[(0, 1.0), (0, 1.0)]);
        let s = lp.solve();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.x[0], 2.0);
    }

    #[test]
    fn larger_random_lp_agrees_with_feasibility() {
        // A diagonally dominant feasible system: x_i ≥ i, minimize Σ x_i.
        let n = 40;
        let mut lp = LpProblem::minimize(vec![1.0; n]);
        for i in 0..n {
            lp.add_row(RowKind::Ge, i as f64, &[(i, 1.0)]);
        }
        let s = lp.solve();
        assert_eq!(s.status, LpStatus::Optimal);
        let expect: f64 = (0..n).map(|i| i as f64).sum();
        assert_close(s.objective, expect);
    }
}
